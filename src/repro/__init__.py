"""LaminarIR: compile-time queues for structured streams.

A from-scratch Python reproduction of Ko, Burgstaller & Scholz,
"LaminarIR: compile-time queues for structured streams" (PLDI 2015):
a StreamIt-subset frontend, SDF scheduler, the LaminarIR lowering with
compile-time FIFO queues and splitter/joiner elimination, a scalar
optimizer, instrumented interpreters for both the FIFO baseline and
LaminarIR, platform cost/energy models, and C backends for native runs.

Entry points: :func:`compile_source` / :func:`compile_file`, returning a
:class:`CompiledStream`.  Pipeline-wide tracing/metrics live in
:mod:`repro.obs` (see ``docs/OBSERVABILITY.md``).
"""

from repro import obs
from repro.api import (CompiledStream, EquivalenceReport, LoweredResult,
                       check_equivalence, compile_file, compile_source)
from repro.frontend.errors import CompileError
from repro.lir import LoweringOptions
from repro.opt import OptOptions

__version__ = "1.0.0"

__all__ = [
    "CompileError", "CompiledStream", "EquivalenceReport",
    "LoweredResult", "LoweringOptions", "OptOptions", "check_equivalence",
    "compile_file", "compile_source", "obs", "__version__",
]
