"""The benchmark suite registry.

Loads the 12 StreamIt-dialect programs shipped under ``programs/`` and
compiles them on demand.  Each benchmark also has a *static-input*
variant (experiment E6): every ``randf()``/``randi(...)`` call in the
source is replaced by a deterministic constant, which makes the whole
program visible to constant folding — the paper's motivation for
converting benchmarks to randomized input in the first place.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

from repro.api import CompiledStream, compile_source

_PROGRAM_DIR = Path(__file__).parent / "programs"


@dataclass(frozen=True)
class BenchmarkInfo:
    name: str
    filename: str
    description: str
    domain: str
    # Extras are not part of the paper's 12-benchmark StreamIt selection;
    # the experiment drivers skip them so the reproduction tables stay
    # faithful, but they ship, test and run like any other benchmark.
    extra: bool = False


BENCHMARKS: dict[str, BenchmarkInfo] = {
    info.name: info for info in [
        BenchmarkInfo("fm_radio", "fm_radio.str",
                      "FM software radio with multi-band equalizer",
                      "software radio"),
        BenchmarkInfo("beamformer", "beamformer.str",
                      "phased-array beam former (8 channels, 4 beams)",
                      "radar"),
        BenchmarkInfo("bitonic_sort", "bitonic_sort.str",
                      "bitonic sorting network over 16-int blocks",
                      "sorting"),
        BenchmarkInfo("dct", "dct.str",
                      "2-D 8x8 discrete cosine transform",
                      "image coding"),
        BenchmarkInfo("fft", "fft.str",
                      "radix-2 FFT over 16 complex points",
                      "spectral"),
        BenchmarkInfo("filterbank", "filterbank.str",
                      "8-channel analysis/synthesis filter bank",
                      "audio"),
        BenchmarkInfo("matrixmult", "matrixmult.str",
                      "blocked matrix multiply with transpose routing",
                      "linear algebra"),
        BenchmarkInfo("tde", "tde.str",
                      "time-delay equalization (FFT/IFFT radar kernel)",
                      "radar"),
        BenchmarkInfo("tea_cipher", "tea_cipher.str",
                      "TEA block cipher round-trip (DES/Serpent stand-in)",
                      "cryptography", extra=True),
        BenchmarkInfo("histogram", "histogram.str",
                      "windowed histogram with data-dependent binning",
                      "analytics", extra=True),
        BenchmarkInfo("channel_vocoder", "channel_vocoder.str",
                      "channel vocoder with pitch detector",
                      "speech"),
        BenchmarkInfo("autocor", "autocor.str",
                      "autocorrelation over 8 lags",
                      "signal processing"),
        BenchmarkInfo("lattice", "lattice.str",
                      "10-stage lattice filter",
                      "signal processing"),
        BenchmarkInfo("rate_convert", "rate_convert.str",
                      "3:2 audio sample-rate converter",
                      "audio"),
    ]
}

_RANDF = re.compile(r"randf\(\)")
_RANDI = re.compile(r"randi\(([^)]*)\)")

# Size knobs per benchmark: (source text at scale 1, template with {s}).
# `scale` multiplies the problem size; 1 is the paper-style default used
# by every experiment, larger scales feed the compile-cost study (E11).
_SCALE_SUBSTITUTIONS: dict[str, list[tuple[str, str]]] = {
    "fft": [("int N = 16;", "int N = {n};")],
    "tde": [("int N = 16;", "int N = {n};")],
    "dct": [("int N = 8;", "int N = {n8};")],
    "bitonic_sort": [("int N = 16;", "int N = {n};")],
    "autocor": [("int N = 32;", "int N = {n32};")],
    "filterbank": [("int taps = 32;", "int taps = {n32};")],
    "matrixmult": [("int N = 6;", "int N = {n6};")],
    "lattice": [("int stages = 10;", "int stages = {n10};")],
    "fm_radio": [("add Equalizer(rate, 8);", "add Equalizer(rate, {n8});")],
    "beamformer": [("int channels = 8;", "int channels = {n8};")],
    "channel_vocoder": [("int bands = 8;", "int bands = {n8};")],
    "rate_convert": [("add LowPass(32, pi / 3);",
                      "add LowPass({n32}, pi / 3);")],
    "tea_cipher": [("join roundrobin(2, 2);",
                    "join roundrobin({n2}, {n2});")],
    "histogram": [("int window = 64;", "int window = {n64};")],
}


def benchmark_names(include_extras: bool = False) -> list[str]:
    """The paper's 12 benchmarks, plus the extras when requested."""
    return sorted(name for name, info in BENCHMARKS.items()
                  if include_extras or not info.extra)


def benchmark_source(name: str, static_input: bool = False,
                     scale: int = 1) -> str:
    """The program text.

    ``static_input`` replaces every RNG call with a constant (E6);
    ``scale`` multiplies the benchmark's problem size (powers of two
    only, so FFT/bitonic stay well-formed).
    """
    info = BENCHMARKS[name]
    source = (_PROGRAM_DIR / info.filename).read_text()
    if scale != 1:
        if scale not in (2, 4, 8):
            raise ValueError("scale must be 1, 2, 4 or 8")
        for original, template in _SCALE_SUBSTITUTIONS[name]:
            replacement = template.format(
                n=16 * scale, n2=2 * scale, n6=6 * scale, n8=8 * scale,
                n10=10 * scale, n32=32 * scale, n64=64 * scale)
            if original not in source:  # pragma: no cover - template rot
                raise AssertionError(
                    f"scale template out of date for {name}: {original!r}")
            source = source.replace(original, replacement)
    if static_input:
        source = _RANDF.sub("0.5", source)
        source = _RANDI.sub(r"((\1) / 2)", source)
    return source


def load_benchmark(name: str, static_input: bool = False,
                   scale: int = 1) -> CompiledStream:
    """Compile one suite benchmark end to end."""
    info = BENCHMARKS[name]
    return compile_source(benchmark_source(name, static_input, scale),
                          filename=info.filename)
