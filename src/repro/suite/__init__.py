"""The 12-program StreamIt benchmark suite used by the paper."""

from repro.suite.registry import (BENCHMARKS, BenchmarkInfo,
                                  benchmark_names, benchmark_source,
                                  load_benchmark)

__all__ = ["BENCHMARKS", "BenchmarkInfo", "benchmark_names",
           "benchmark_source", "load_benchmark"]
