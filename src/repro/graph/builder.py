"""Elaboration: AST → hierarchical stream graph.

Elaboration binds concrete values to stream parameters, executes composite
bodies (``add`` under ``for``/``if``), resolves data rates and array sizes,
and checks that channel types line up.  The result is a tree of
:class:`~repro.graph.nodes.StreamNode` instances ready for flattening.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ElaborationError, SourceLocation
from repro.frontend.intrinsics import INTRINSICS
from repro.frontend.types import (ArrayType, BOOLEAN, FLOAT, INT, ScalarType,
                                  Type, VOID)
from repro.graph.nodes import (FeedbackLoopNode, FilterNode, PipelineNode,
                               Rates, SplitJoinNode, StreamNode)

_MAX_CHILDREN = 10_000  # guard against runaway composite loops


class ConstEvaluator:
    """Evaluates compile-time expressions during elaboration.

    Only pure constructs are legal here: literals, bound parameters and
    composite-body locals, arithmetic, and pure intrinsics.
    """

    def __init__(self, source: str):
        self.source = source

    def eval(self, expr: ast.Expr, env: dict[str, object]) -> object:
        value = self._eval(expr, env)
        return value

    def eval_int(self, expr: ast.Expr, env: dict[str, object],
                 what: str) -> int:
        value = self._eval(expr, env)
        if isinstance(value, bool) or not isinstance(value, int):
            raise ElaborationError(f"{what} must be a compile-time int, "
                                   f"got {value!r}", expr.loc, self.source)
        return value

    def _eval(self, expr: ast.Expr, env: dict[str, object]) -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            if expr.name not in env:
                raise ElaborationError(
                    f"{expr.name!r} is not a compile-time constant",
                    expr.loc, self.source)
            return env[expr.name]
        if isinstance(expr, ast.UnaryOp):
            assert expr.operand is not None
            value = self._eval(expr.operand, env)
            if expr.op == "-":
                return -value  # type: ignore[operator]
            if expr.op == "!":
                return not value
            if expr.op == "~":
                return ~value  # type: ignore[operator]
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.TernaryOp):
            assert expr.cond and expr.then and expr.otherwise
            cond = self._eval(expr.cond, env)
            return self._eval(expr.then if cond else expr.otherwise, env)
        if isinstance(expr, ast.Cast):
            assert expr.target is not None and expr.operand is not None
            value = self._eval(expr.operand, env)
            if expr.target == INT:
                return int(value)  # type: ignore[arg-type]
            if expr.target == FLOAT:
                return float(value)  # type: ignore[arg-type]
        if isinstance(expr, ast.Call):
            intrinsic = INTRINSICS.get(expr.name)
            if intrinsic is None or not intrinsic.pure:
                raise ElaborationError(
                    f"{expr.name!r} cannot be evaluated at elaboration time",
                    expr.loc, self.source)
            args = [self._eval(arg, env) for arg in expr.args]
            assert intrinsic.impl is not None
            return intrinsic.impl(*args)
        raise ElaborationError(
            f"{type(expr).__name__} is not a compile-time constant",
            expr.loc, self.source)

    def _eval_binary(self, expr: ast.BinaryOp,
                     env: dict[str, object]) -> object:
        assert expr.left is not None and expr.right is not None
        op = expr.op
        if op == "&&":
            return bool(self._eval(expr.left, env)) \
                and bool(self._eval(expr.right, env))
        if op == "||":
            return bool(self._eval(expr.left, env)) \
                or bool(self._eval(expr.right, env))
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return apply_binary(op, left, right, expr.loc, self.source)


def apply_binary(op: str, left: object, right: object,
                 loc: SourceLocation, source: str) -> object:
    """Evaluate one binary operator with StreamIt/C semantics.

    Shared by elaboration, constant folding and the interpreters so all
    stages agree on arithmetic (notably: int division truncates toward
    zero, as in C, not Python floor division).
    """
    try:
        if op == "+":
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            if isinstance(left, int) and isinstance(right, int) \
                    and not isinstance(left, bool) \
                    and not isinstance(right, bool):
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            return left / right  # type: ignore[operator]
        if op == "%":
            remainder = abs(left) % abs(right)  # type: ignore[arg-type]
            return remainder if left >= 0 else -remainder  # type: ignore
        if op == "&":
            return left & right  # type: ignore[operator]
        if op == "|":
            return left | right  # type: ignore[operator]
        if op == "^":
            return left ^ right  # type: ignore[operator]
        if op == "<<":
            return left << right  # type: ignore[operator]
        if op == ">>":
            return left >> right  # type: ignore[operator]
        if op == "==":
            return left == right
        if op == "!=":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except ZeroDivisionError:
        raise ElaborationError("division by zero", loc, source) from None
    raise AssertionError(f"unknown operator {op}")


class Elaborator:
    def __init__(self, program: ast.Program):
        self.program = program
        self.source = program.source
        self.evaluator = ConstEvaluator(program.source)
        self._instance_counts: dict[str, int] = {}
        self._total_children = 0

    def elaborate(self) -> StreamNode:
        top = self.program.top
        return self._instantiate(top, [], {}, top.loc)

    # -- instantiation -----------------------------------------------------------

    def _instance_name(self, decl_name: str) -> str:
        count = self._instance_counts.get(decl_name, 0)
        self._instance_counts[decl_name] = count + 1
        return decl_name if count == 0 else f"{decl_name}_{count}"

    def _instantiate(self, decl: ast.StreamDecl, args: list[object],
                     captured: dict[str, object],
                     loc: SourceLocation) -> StreamNode:
        self._total_children += 1
        if self._total_children > _MAX_CHILDREN:
            raise ElaborationError(
                f"stream graph exceeds {_MAX_CHILDREN} instances "
                "(runaway composite loop?)", loc, self.source)
        if len(args) != len(decl.params):
            raise ElaborationError(
                f"{decl.name!r} expects {len(decl.params)} argument(s), "
                f"got {len(args)}", loc, self.source)
        env = dict(captured)
        for param, arg in zip(decl.params, args):
            assert param.ty is not None
            env[param.name] = self._coerce(arg, param.ty, param.loc)
        name = self._instance_name(decl.name)
        if isinstance(decl, ast.FilterDecl):
            return self._elaborate_filter(decl, env, name)
        if isinstance(decl, ast.PipelineDecl):
            return self._elaborate_pipeline(decl, env, name)
        if isinstance(decl, ast.SplitJoinDecl):
            return self._elaborate_splitjoin(decl, env, name)
        if isinstance(decl, ast.FeedbackLoopDecl):
            return self._elaborate_feedbackloop(decl, env, name)
        raise AssertionError(type(decl).__name__)

    def _coerce(self, value: object, ty: Type,
                loc: SourceLocation) -> object:
        if ty == FLOAT and isinstance(value, int) \
                and not isinstance(value, bool):
            return float(value)
        if ty == INT and isinstance(value, bool):
            raise ElaborationError("cannot pass boolean as int", loc,
                                   self.source)
        return value

    # -- filter ---------------------------------------------------------------------

    def _elaborate_filter(self, decl: ast.FilterDecl,
                          env: dict[str, object], name: str) -> FilterNode:
        in_type = decl.in_type or VOID
        out_type = decl.out_type or VOID
        for ty, which in ((in_type, "input"), (out_type, "output")):
            if not isinstance(ty, ScalarType):
                raise ElaborationError(
                    f"filter {decl.name!r} has non-scalar {which} type {ty}",
                    decl.loc, self.source)
        assert decl.work is not None
        work = self._resolve_rates(decl.work, env, decl, in_type, out_type)
        prework = None
        if decl.prework is not None:
            prework = self._resolve_rates(decl.prework, env, decl, in_type,
                                          out_type, is_prework=True)
        field_types = {}
        for fld in decl.fields:
            assert fld.ty is not None
            field_types[fld.name] = self._resolve_array_type(
                fld.ty, fld.dims, env)
        return FilterNode(name=name, in_type=in_type, out_type=out_type,
                          decl=decl, env=env, work=work, prework=prework,
                          field_types=field_types)

    def _resolve_rates(self, work: ast.WorkDecl, env: dict[str, object],
                       decl: ast.FilterDecl, in_type: Type, out_type: Type,
                       is_prework: bool = False) -> Rates:
        def rate(expr: ast.Expr | None, what: str) -> int:
            if expr is None:
                return 0
            value = self.evaluator.eval_int(expr, env, what)
            if value < 0:
                raise ElaborationError(f"{what} must be non-negative",
                                       expr.loc, self.source)
            return value

        push = rate(work.push_rate, "push rate")
        pop = rate(work.pop_rate, "pop rate")
        peek = rate(work.peek_rate, "peek rate")
        if peek and peek < pop:
            raise ElaborationError(
                f"filter {decl.name!r}: peek rate {peek} < pop rate {pop}",
                work.loc, self.source)
        # Zero steady rates on typed ports are legal: they pair with
        # weight-0 splitter/joiner ports (the branch sees no traffic).
        # Genuinely unbalanced programs are rejected later by the balance
        # equations, which see the whole graph.
        return Rates(push=push, pop=pop, peek=peek)

    def _resolve_array_type(self, base: Type, dims: list[ast.Expr],
                            env: dict[str, object]) -> Type:
        ty: Type = base
        for dim in reversed(dims):
            size = self.evaluator.eval_int(dim, env, "array size")
            if size <= 0:
                raise ElaborationError("array size must be positive",
                                       dim.loc, self.source)
            ty = ArrayType(element=ty, size=size)
        return ty

    # -- composites ------------------------------------------------------------------

    def _elaborate_pipeline(self, decl: ast.PipelineDecl,
                            env: dict[str, object],
                            name: str) -> PipelineNode:
        assert decl.body is not None
        children = self._run_composite_body(decl.body.stmts, dict(env))
        if not children:
            raise ElaborationError(f"pipeline {decl.name!r} has no children",
                                   decl.loc, self.source)
        self._check_pipeline_types(decl, children)
        node = PipelineNode(name=name,
                            in_type=children[0].in_type,
                            out_type=children[-1].out_type,
                            children=children)
        self._check_declared_io(decl, node)
        return node

    def _check_pipeline_types(self, decl: ast.PipelineDecl,
                              children: list[StreamNode]) -> None:
        for left, right in zip(children, children[1:]):
            if left.out_type != right.in_type:
                raise ElaborationError(
                    f"pipeline {decl.name!r}: {left.name} produces "
                    f"{left.out_type} but {right.name} consumes "
                    f"{right.in_type}", decl.loc, self.source)

    def _elaborate_splitjoin(self, decl: ast.SplitJoinDecl,
                             env: dict[str, object],
                             name: str) -> SplitJoinNode:
        assert decl.split is not None and decl.join is not None
        assert decl.body is not None
        local_env = dict(env)
        children = self._run_composite_body(decl.body.stmts, local_env)
        if not children:
            raise ElaborationError(
                f"splitjoin {decl.name!r} has no children", decl.loc,
                self.source)
        split_weights = self._resolve_weights(
            decl.split, len(children), local_env, "split")
        join_weights = self._resolve_weights(
            decl.join, len(children), local_env, "join")
        in_type = children[0].in_type
        out_type = children[0].out_type
        for child in children:
            if child.in_type != in_type or child.out_type != out_type:
                raise ElaborationError(
                    f"splitjoin {decl.name!r}: children disagree on types "
                    f"({child.name}: {child.in_type}->{child.out_type} vs "
                    f"{in_type}->{out_type})", decl.loc, self.source)
        node = SplitJoinNode(
            name=name, in_type=in_type, out_type=out_type,
            split_kind=decl.split.kind, split_weights=split_weights,
            join_weights=join_weights, children=children)
        self._check_declared_io(decl, node)
        return node

    def _resolve_weights(self, split: ast.SplitDecl | ast.JoinDecl,
                         n_children: int, env: dict[str, object],
                         which: str) -> list[int]:
        if isinstance(split, ast.SplitDecl) and split.kind == "duplicate":
            return []
        if not split.weights:
            return [1] * n_children  # `roundrobin` with no weights
        weights = [self.evaluator.eval_int(w, env, f"{which} weight")
                   for w in split.weights]
        if len(weights) == 1 and n_children > 1:
            weights = weights * n_children  # `roundrobin(k)` shorthand
        if len(weights) != n_children:
            raise ElaborationError(
                f"{which} roundrobin has {len(weights)} weight(s) for "
                f"{n_children} branch(es)", split.loc, self.source)
        for weight in weights:
            if weight < 0:
                raise ElaborationError(
                    f"{which} roundrobin weights must be non-negative",
                    split.loc, self.source)
        if sum(weights) == 0:
            raise ElaborationError(
                f"{which} roundrobin needs at least one positive weight",
                split.loc, self.source)
        return weights

    def _elaborate_feedbackloop(self, decl: ast.FeedbackLoopDecl,
                                env: dict[str, object],
                                name: str) -> FeedbackLoopNode:
        assert decl.body_add is not None and decl.loop_add is not None
        assert decl.join is not None and decl.split is not None
        local_env = dict(env)
        body = self._add_child(decl.body_add, local_env)
        loop = self._add_child(decl.loop_add, local_env)
        join_weights = self._resolve_weights(decl.join, 2, local_env, "join")
        if decl.split.kind == "duplicate":
            split_weights: list[int] = []
        else:
            split_weights = self._resolve_weights(decl.split, 2, local_env,
                                                  "split")
        enqueued = [self.evaluator.eval(e.value, local_env)
                    for e in decl.enqueues if e.value is not None]
        if body.out_type != loop.in_type and loop.in_type != VOID:
            raise ElaborationError(
                f"feedbackloop {decl.name!r}: body produces {body.out_type} "
                f"but loop consumes {loop.in_type}", decl.loc, self.source)
        node = FeedbackLoopNode(
            name=name, in_type=body.in_type, out_type=body.out_type,
            join_weights=join_weights, split_kind=decl.split.kind,
            split_weights=split_weights, body=body, loop=loop,
            enqueued=enqueued)
        self._check_declared_io(decl, node)
        return node

    def _check_declared_io(self, decl: ast.StreamDecl,
                           node: StreamNode) -> None:
        if decl.in_type is not None and decl.in_type != node.in_type:
            raise ElaborationError(
                f"{decl.name!r} declares input {decl.in_type} but its "
                f"children consume {node.in_type}", decl.loc, self.source)
        if decl.out_type is not None and decl.out_type != node.out_type:
            raise ElaborationError(
                f"{decl.name!r} declares output {decl.out_type} but its "
                f"children produce {node.out_type}", decl.loc, self.source)

    # -- composite body execution -------------------------------------------------

    def _run_composite_body(self, stmts: list[ast.Stmt],
                            env: dict[str, object]) -> list[StreamNode]:
        children: list[StreamNode] = []
        for stmt in stmts:
            self._run_composite_stmt(stmt, env, children)
        return children

    def _run_composite_stmt(self, stmt: ast.Stmt, env: dict[str, object],
                            children: list[StreamNode]) -> None:
        if isinstance(stmt, ast.AddStmt):
            children.append(self._add_child(stmt, env))
        elif isinstance(stmt, ast.VarDecl):
            value = (self.evaluator.eval(stmt.init, env)
                     if stmt.init is not None else 0)
            env[stmt.name] = value
        elif isinstance(stmt, ast.Assign):
            self._run_composite_assign(stmt, env)
        elif isinstance(stmt, ast.Block):
            for inner in stmt.stmts:
                self._run_composite_stmt(inner, env, children)
        elif isinstance(stmt, ast.ForStmt):
            self._run_composite_for(stmt, env, children)
        elif isinstance(stmt, ast.IfStmt):
            assert stmt.cond is not None and stmt.then is not None
            if self.evaluator.eval(stmt.cond, env):
                self._run_composite_stmt(stmt.then, env, children)
            elif stmt.otherwise is not None:
                self._run_composite_stmt(stmt.otherwise, env, children)
        elif isinstance(stmt, ast.ExprStmt):
            pass  # side-effect-free at elaboration time
        else:
            raise ElaborationError(
                f"{type(stmt).__name__} not allowed in a composite body",
                stmt.loc, self.source)

    def _run_composite_assign(self, stmt: ast.Assign,
                              env: dict[str, object]) -> None:
        assert isinstance(stmt.target, ast.Ident) and stmt.value is not None
        name = stmt.target.name
        value = self.evaluator.eval(stmt.value, env)
        if stmt.op == "=":
            env[name] = value
        else:
            env[name] = apply_binary(stmt.op[:-1], env[name], value,
                                     stmt.loc, self.source)

    def _run_composite_for(self, stmt: ast.ForStmt, env: dict[str, object],
                           children: list[StreamNode]) -> None:
        loop_env = dict(env)
        if stmt.init is not None:
            self._run_composite_stmt(stmt.init, loop_env, children)
        iterations = 0
        while stmt.cond is None or self.evaluator.eval(stmt.cond, loop_env):
            assert stmt.body is not None
            self._run_composite_stmt(stmt.body, loop_env, children)
            if stmt.step is not None:
                self._run_composite_stmt(stmt.step, loop_env, children)
            iterations += 1
            if iterations > _MAX_CHILDREN:
                raise ElaborationError(
                    "composite for-loop exceeds iteration limit", stmt.loc,
                    self.source)

    def _add_child(self, stmt: ast.AddStmt,
                   env: dict[str, object]) -> StreamNode:
        if stmt.anonymous is not None:
            return self._instantiate(stmt.anonymous, [], env, stmt.loc)
        decl = self._find_stream(stmt.child, stmt.loc)
        args = [self.evaluator.eval(arg, env) for arg in stmt.args]
        return self._instantiate(decl, args, {}, stmt.loc)

    def _find_stream(self, name: str, loc: SourceLocation) -> ast.StreamDecl:
        for decl in self.program.streams:
            if decl.name == name:
                return decl
        raise ElaborationError(f"unknown stream {name!r}", loc, self.source)


def elaborate(program: ast.Program) -> StreamNode:
    """Elaborate the top-level stream of ``program``."""
    return Elaborator(program).elaborate()
