"""Stream graph data structures.

Two levels:

* the *hierarchical* graph (:class:`FilterNode`, :class:`PipelineNode`,
  :class:`SplitJoinNode`, :class:`FeedbackLoopNode`) produced by elaborating
  the AST with concrete parameter values, and
* the *flat* graph (:class:`FlatGraph`) of filter/splitter/joiner vertices
  connected by :class:`Channel` edges — the form the scheduler and both
  backends consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.frontend.types import ScalarType, Type

# -- hierarchical graph -------------------------------------------------------


@dataclass
class Rates:
    """Static data rates of one firing."""

    push: int = 0
    pop: int = 0
    peek: int = 0

    def __post_init__(self) -> None:
        if self.peek < self.pop:
            self.peek = self.pop


@dataclass
class StreamNode:
    """Base class for elaborated stream instances."""

    name: str  # unique instance path, e.g. "FMRadio.LowPass_2"
    in_type: Type
    out_type: Type


@dataclass
class FilterNode(StreamNode):
    decl: ast.FilterDecl = None  # type: ignore[assignment]
    env: dict[str, object] = field(default_factory=dict)  # bound parameters
    work: Rates = field(default_factory=Rates)
    prework: Rates | None = None
    field_types: dict[str, Type] = field(default_factory=dict)


@dataclass
class PipelineNode(StreamNode):
    children: list[StreamNode] = field(default_factory=list)


@dataclass
class SplitJoinNode(StreamNode):
    split_kind: str = "duplicate"  # "duplicate" | "roundrobin"
    split_weights: list[int] = field(default_factory=list)
    join_weights: list[int] = field(default_factory=list)
    children: list[StreamNode] = field(default_factory=list)


@dataclass
class FeedbackLoopNode(StreamNode):
    join_weights: list[int] = field(default_factory=list)
    split_kind: str = "roundrobin"
    split_weights: list[int] = field(default_factory=list)
    body: StreamNode = None  # type: ignore[assignment]
    loop: StreamNode = None  # type: ignore[assignment]
    enqueued: list[object] = field(default_factory=list)  # initial tokens


# -- flat graph ----------------------------------------------------------------


@dataclass(eq=False)
class Vertex:
    """Base class for flat-graph vertices.

    ``inputs[i]`` / ``outputs[i]`` are :class:`Channel` objects, ordered by
    port index; ``None`` marks a not-yet-connected port during construction.
    """

    uid: int
    name: str
    inputs: list["Channel | None"] = field(default_factory=list)
    outputs: list["Channel | None"] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return type(self).__name__

    def pop_rate(self, port: int) -> int:
        """Tokens consumed from input ``port`` per firing."""
        raise NotImplementedError

    def peek_rate(self, port: int) -> int:
        return self.pop_rate(port)

    def push_rate(self, port: int) -> int:
        """Tokens produced on output ``port`` per firing."""
        raise NotImplementedError

    def __hash__(self) -> int:
        return self.uid

    def __eq__(self, other: object) -> bool:
        return self is other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.name}>"


@dataclass(eq=False)
class FilterVertex(Vertex):
    filter: FilterNode = None  # type: ignore[assignment]

    def pop_rate(self, port: int) -> int:
        assert port == 0
        return self.filter.work.pop

    def peek_rate(self, port: int) -> int:
        assert port == 0
        return self.filter.work.peek

    def push_rate(self, port: int) -> int:
        assert port == 0
        return self.filter.work.push

    @property
    def has_prework(self) -> bool:
        return self.filter.prework is not None


@dataclass(eq=False)
class SplitterVertex(Vertex):
    policy: str = "duplicate"  # "duplicate" | "roundrobin"
    weights: list[int] = field(default_factory=list)

    def pop_rate(self, port: int) -> int:
        assert port == 0
        if self.policy == "duplicate":
            return 1
        return sum(self.weights)

    def push_rate(self, port: int) -> int:
        if self.policy == "duplicate":
            return 1
        return self.weights[port]


@dataclass(eq=False)
class JoinerVertex(Vertex):
    weights: list[int] = field(default_factory=list)

    def pop_rate(self, port: int) -> int:
        return self.weights[port]

    def push_rate(self, port: int) -> int:
        assert port == 0
        return sum(self.weights)


@dataclass(eq=False)
class Channel:
    """A directed FIFO edge between two vertex ports."""

    uid: int
    src: Vertex
    src_port: int
    dst: Vertex
    dst_port: int
    ty: ScalarType
    initial: list[object] = field(default_factory=list)  # enqueued tokens

    @property
    def name(self) -> str:
        return f"ch{self.uid}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Channel {self.name} {self.src.name}[{self.src_port}] -> "
                f"{self.dst.name}[{self.dst_port}]>")

    def __hash__(self) -> int:
        return self.uid


class FlatGraph:
    """The flattened stream graph: vertices plus channels."""

    def __init__(self, name: str):
        self.name = name
        self.vertices: list[Vertex] = []
        self.channels: list[Channel] = []
        self._uid = 0

    def new_uid(self) -> int:
        self._uid += 1
        return self._uid

    def add_vertex(self, vertex: Vertex) -> Vertex:
        self.vertices.append(vertex)
        return vertex

    def connect(self, src: Vertex, src_port: int, dst: Vertex, dst_port: int,
                ty: ScalarType,
                initial: list[object] | None = None) -> Channel:
        channel = Channel(uid=self.new_uid(), src=src, src_port=src_port,
                          dst=dst, dst_port=dst_port, ty=ty,
                          initial=list(initial or []))
        while len(src.outputs) <= src_port:
            src.outputs.append(None)
        while len(dst.inputs) <= dst_port:
            dst.inputs.append(None)
        assert src.outputs[src_port] is None, "output port already connected"
        assert dst.inputs[dst_port] is None, "input port already connected"
        src.outputs[src_port] = channel
        dst.inputs[dst_port] = channel
        self.channels.append(channel)
        return channel

    @property
    def filters(self) -> list[FilterVertex]:
        return [v for v in self.vertices if isinstance(v, FilterVertex)]

    @property
    def splitters(self) -> list[SplitterVertex]:
        return [v for v in self.vertices if isinstance(v, SplitterVertex)]

    @property
    def joiners(self) -> list[JoinerVertex]:
        return [v for v in self.vertices if isinstance(v, JoinerVertex)]

    def topological_order(self) -> list[Vertex]:
        """Vertices in topological order, ignoring back edges.

        Back edges are the feedback channels of feedback loops — the edges
        carrying ``initial`` tokens.  With those removed the graph must be
        acyclic.
        """
        indegree: dict[Vertex, int] = {v: 0 for v in self.vertices}
        forward: dict[Vertex, list[Vertex]] = {v: [] for v in self.vertices}
        for channel in self.channels:
            if channel.initial:
                continue  # feedback edge
            indegree[channel.dst] += 1
            forward[channel.src].append(channel.dst)
        ready = [v for v in self.vertices if indegree[v] == 0]
        order: list[Vertex] = []
        while ready:
            vertex = ready.pop(0)
            order.append(vertex)
            for succ in forward[vertex]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.vertices):
            cyclic = [v.name for v in self.vertices if v not in set(order)]
            raise ValueError(
                "stream graph has a cycle without initial tokens: "
                + ", ".join(cyclic))
        return order
