"""Graphviz DOT export of flat stream graphs.

Purely textual (no graphviz dependency): the output renders with any
standard ``dot`` binary or online viewer.  Filter vertices are boxes
annotated with their rates and repetition counts, splitters/joiners are
small shapes, and feedback edges (those carrying initial tokens) are
drawn dashed.
"""

from __future__ import annotations

from repro.graph.nodes import (FilterVertex, FlatGraph, JoinerVertex,
                               SplitterVertex, Vertex)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def _vertex_line(vertex: Vertex, reps: dict[Vertex, int] | None) -> str:
    rep = f"\\nx{reps[vertex]}" if reps else ""
    if isinstance(vertex, FilterVertex):
        rates = vertex.filter.work
        label = (f"{vertex.name}\\npush {rates.push} pop {rates.pop} "
                 f"peek {rates.peek}{rep}")
        return (f'  v{vertex.uid} [shape=box, label="{_escape(label)}"];')
    if isinstance(vertex, SplitterVertex):
        policy = vertex.policy if vertex.policy == "duplicate" \
            else f"roundrobin{tuple(vertex.weights)}"
        return (f'  v{vertex.uid} [shape=triangle, '
                f'label="{_escape(policy + rep)}"];')
    assert isinstance(vertex, JoinerVertex)
    label = f"roundrobin{tuple(vertex.weights)}{rep}"
    return (f'  v{vertex.uid} [shape=invtriangle, '
            f'label="{_escape(label)}"];')


def to_dot(graph: FlatGraph,
           reps: "dict[Vertex, int] | None" = None) -> str:
    """Render ``graph`` as a DOT digraph."""
    lines = [f'digraph "{_escape(graph.name)}" {{',
             "  rankdir=TB;",
             '  node [fontname="monospace", fontsize=10];']
    for vertex in graph.vertices:
        lines.append(_vertex_line(vertex, reps))
    for channel in graph.channels:
        style = ', style=dashed' if channel.initial else ""
        label = channel.ty.name
        if channel.initial:
            label += f" ({len(channel.initial)} init)"
        lines.append(
            f'  v{channel.src.uid} -> v{channel.dst.uid} '
            f'[label="{_escape(label)}"{style}];')
    lines.append("}")
    return "\n".join(lines)
