"""Flattening: hierarchical stream graph → flat vertex/channel graph.

The flat graph makes splitters and joiners explicit vertices.  In the FIFO
baseline they become run-time copy actors (exactly as the StreamIt compiler
emits them); the LaminarIR lowering later eliminates them entirely by
rerouting token names at compile time.
"""

from __future__ import annotations

from repro.frontend.errors import ElaborationError
from repro.frontend.types import ScalarType, VOID
from repro.graph.nodes import (Channel, FeedbackLoopNode, FilterNode,
                               FilterVertex, FlatGraph, JoinerVertex,
                               PipelineNode, SplitJoinNode, SplitterVertex,
                               StreamNode, Vertex)

# (vertex, port) endpoints of a flattened subgraph; None for void ends.
_End = "tuple[Vertex, int] | None"


class Flattener:
    def __init__(self, root: StreamNode):
        self.root = root
        self.graph = FlatGraph(root.name)

    def flatten(self) -> FlatGraph:
        entry, exit_ = self._flatten(self.root)
        if entry is not None or exit_ is not None:
            raise ElaborationError(
                f"top-level stream {self.root.name!r} must be void->void")
        self.graph.topological_order()  # raises on malformed cycles
        return self.graph

    def _flatten(self, node: StreamNode) -> tuple[_End, _End]:
        if isinstance(node, FilterNode):
            return self._flatten_filter(node)
        if isinstance(node, PipelineNode):
            return self._flatten_pipeline(node)
        if isinstance(node, SplitJoinNode):
            return self._flatten_splitjoin(node)
        if isinstance(node, FeedbackLoopNode):
            return self._flatten_feedbackloop(node)
        raise AssertionError(type(node).__name__)

    def _flatten_filter(self, node: FilterNode) -> tuple[_End, _End]:
        vertex = FilterVertex(uid=self.graph.new_uid(), name=node.name,
                              filter=node)
        self.graph.add_vertex(vertex)
        entry = (vertex, 0) if node.in_type != VOID else None
        exit_ = (vertex, 0) if node.out_type != VOID else None
        return entry, exit_

    def _flatten_pipeline(self, node: PipelineNode) -> tuple[_End, _End]:
        entry: _End = None
        prev_exit: _End = None
        for index, child in enumerate(node.children):
            child_entry, child_exit = self._flatten(child)
            if index == 0:
                entry = child_entry
            else:
                if prev_exit is None or child_entry is None:
                    raise ElaborationError(
                        f"pipeline {node.name!r}: cannot connect "
                        f"{node.children[index - 1].name} to {child.name}")
                src, src_port = prev_exit
                dst, dst_port = child_entry
                ty = node.children[index - 1].out_type
                assert isinstance(ty, ScalarType)
                self.graph.connect(src, src_port, dst, dst_port, ty)
            prev_exit = child_exit
        return entry, prev_exit

    def _flatten_splitjoin(self, node: SplitJoinNode) -> tuple[_End, _End]:
        assert isinstance(node.in_type, ScalarType)
        assert isinstance(node.out_type, ScalarType)
        splitter = SplitterVertex(
            uid=self.graph.new_uid(), name=f"{node.name}.split",
            policy=node.split_kind, weights=list(node.split_weights))
        joiner = JoinerVertex(
            uid=self.graph.new_uid(), name=f"{node.name}.join",
            weights=list(node.join_weights))
        self.graph.add_vertex(splitter)
        self.graph.add_vertex(joiner)
        if splitter.policy == "duplicate":
            splitter.weights = [1] * len(node.children)
        for index, child in enumerate(node.children):
            child_entry, child_exit = self._flatten(child)
            if child_entry is None or child_exit is None:
                raise ElaborationError(
                    f"splitjoin {node.name!r}: branch {child.name} must "
                    "consume and produce data")
            self.graph.connect(splitter, index, child_entry[0],
                               child_entry[1], node.in_type)
            self.graph.connect(child_exit[0], child_exit[1], joiner, index,
                               node.out_type)
        return (splitter, 0), (joiner, 0)

    def _flatten_feedbackloop(self,
                              node: FeedbackLoopNode) -> tuple[_End, _End]:
        assert isinstance(node.in_type, ScalarType)
        assert isinstance(node.out_type, ScalarType)
        joiner = JoinerVertex(uid=self.graph.new_uid(),
                              name=f"{node.name}.join",
                              weights=list(node.join_weights))
        splitter = SplitterVertex(
            uid=self.graph.new_uid(), name=f"{node.name}.split",
            policy=node.split_kind, weights=list(node.split_weights))
        if splitter.policy == "duplicate":
            splitter.weights = [1, 1]
        self.graph.add_vertex(joiner)
        self.graph.add_vertex(splitter)

        body_entry, body_exit = self._flatten(node.body)
        loop_entry, loop_exit = self._flatten(node.loop)
        if body_entry is None or body_exit is None:
            raise ElaborationError(
                f"feedbackloop {node.name!r}: body must consume and produce")
        if loop_entry is None or loop_exit is None:
            raise ElaborationError(
                f"feedbackloop {node.name!r}: loop must consume and produce")

        # joiner -> body -> splitter
        self.graph.connect(joiner, 0, body_entry[0], body_entry[1],
                           node.in_type)
        self.graph.connect(body_exit[0], body_exit[1], splitter, 0,
                           node.out_type)
        # splitter[1] -> loop -> joiner[1]; the loop->joiner channel carries
        # the enqueued initial tokens (and marks the back edge).
        self.graph.connect(splitter, 1, loop_entry[0], loop_entry[1],
                           node.out_type)
        if not node.enqueued:
            raise ElaborationError(
                f"feedbackloop {node.name!r} has no enqueued initial "
                "tokens; the loop would deadlock")
        self.graph.connect(loop_exit[0], loop_exit[1], joiner, 1,
                           node.in_type, initial=list(node.enqueued))
        return (joiner, 0), (splitter, 0)


def flatten(root: StreamNode) -> FlatGraph:
    """Flatten an elaborated stream graph."""
    return Flattener(root).flatten()


def graph_stats(graph: FlatGraph) -> dict[str, int]:
    """Structural statistics used by the Table-1 benchmark."""
    return {
        "filters": len(graph.filters),
        "splitters": len(graph.splitters),
        "joiners": len(graph.joiners),
        "channels": len(graph.channels),
        "peeking_filters": sum(
            1 for f in graph.filters
            if f.filter.work.peek > f.filter.work.pop),
    }
