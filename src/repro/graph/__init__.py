"""Stream graph construction: elaboration and flattening."""

from repro.graph.builder import elaborate
from repro.graph.dot import to_dot
from repro.graph.flatten import flatten, graph_stats
from repro.graph.nodes import (Channel, FeedbackLoopNode, FilterNode,
                               FilterVertex, FlatGraph, JoinerVertex,
                               PipelineNode, Rates, SplitJoinNode,
                               SplitterVertex, StreamNode, Vertex)

__all__ = [
    "Channel", "FeedbackLoopNode", "FilterNode", "FilterVertex", "FlatGraph",
    "JoinerVertex", "PipelineNode", "Rates", "SplitJoinNode",
    "SplitterVertex", "StreamNode", "Vertex", "elaborate", "flatten",
    "graph_stats", "to_dot",
]
