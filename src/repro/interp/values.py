"""Concrete run-time value semantics shared by both interpreters.

ints are 32-bit two's complement, floats are doubles, matching the C
backends (compiled with ``-fwrapv``) so every execution route produces the
same output stream.
"""

from __future__ import annotations

from repro.frontend.errors import InterpError
from repro.frontend.types import BOOLEAN, FLOAT, INT, ScalarType
from repro.lir.ops import wrap_i32

_INT_OPS = ("%", "&", "|", "^", "<<", ">>")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def runtime_binary(op: str, left: object, right: object) -> object:
    """Apply one binary operator with C-like semantics."""
    try:
        if op == "+":
            result = left + right  # type: ignore[operator]
        elif op == "-":
            result = left - right  # type: ignore[operator]
        elif op == "*":
            result = left * right  # type: ignore[operator]
        elif op == "/":
            if isinstance(left, int) and isinstance(right, int) \
                    and not isinstance(left, bool) \
                    and not isinstance(right, bool):
                quotient = abs(left) // abs(right)
                result = quotient if (left >= 0) == (right >= 0) \
                    else -quotient
            else:
                result = left / right  # type: ignore[operator]
        elif op == "%":
            magnitude = abs(left) % abs(right)  # type: ignore[arg-type]
            result = magnitude if left >= 0 else -magnitude  # type: ignore
        elif op == "&":
            result = left & right  # type: ignore[operator]
        elif op == "|":
            result = left | right  # type: ignore[operator]
        elif op == "^":
            result = left ^ right  # type: ignore[operator]
        elif op == "<<":
            # Shift counts must be in [0, 31] (larger is UB in C; the
            # compile-time evaluator uses the same plain-shift semantics).
            result = left << right  # type: ignore[operator]
        elif op == ">>":
            result = left >> right  # type: ignore[operator]
        elif op == "==":
            return left == right
        elif op == "!=":
            return left != right
        elif op == "<":
            return left < right  # type: ignore[operator]
        elif op == "<=":
            return left <= right  # type: ignore[operator]
        elif op == ">":
            return left > right  # type: ignore[operator]
        elif op == ">=":
            return left >= right  # type: ignore[operator]
        else:
            raise AssertionError(f"unknown operator {op}")
    except ZeroDivisionError:
        raise InterpError(f"division by zero in {op!r}") from None
    if isinstance(result, bool):
        return result
    if isinstance(result, int):
        return wrap_i32(result)
    return result


def runtime_unary(op: str, value: object) -> object:
    if op == "-":
        result = -value  # type: ignore[operator]
        return wrap_i32(result) if isinstance(result, int) \
            and not isinstance(result, bool) else result
    if op == "!":
        return not value
    if op == "~":
        return wrap_i32(~value)  # type: ignore[operator]
    raise AssertionError(f"unknown unary operator {op}")


def coerce_runtime(value: object, ty: ScalarType) -> object:
    if ty == INT:
        if isinstance(value, bool):
            return int(value)
        return wrap_i32(int(value))  # type: ignore[arg-type]
    if ty == FLOAT:
        return float(value)  # type: ignore[arg-type]
    if ty == BOOLEAN:
        return bool(value)
    raise AssertionError(f"cannot coerce to {ty}")


def default_value(ty: ScalarType) -> object:
    if ty == INT:
        return 0
    if ty == FLOAT:
        return 0.0
    if ty == BOOLEAN:
        return False
    raise AssertionError(f"no default for {ty}")
