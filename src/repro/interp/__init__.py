"""Instrumented interpreters: the FIFO baseline and LaminarIR execution."""

from repro.interp.counters import Counters, RunResult
from repro.interp.fifo import FifoInterpreter
from repro.interp.laminar import LaminarInterpreter

__all__ = ["Counters", "FifoInterpreter", "LaminarInterpreter", "RunResult"]
