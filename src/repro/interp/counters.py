"""Instrumentation counters shared by both interpreters.

The paper's metrics map onto these counters as follows:

* **memory accesses** = ``loads + stores`` — every FIFO buffer access,
  read/write-pointer access, filter-field access and stack-array access in
  the baseline; only the remaining state-slot accesses in LaminarIR.
* **data communication** = ``token_transfers`` — tokens written into a
  channel (each producer→consumer hop counts once; splitter/joiner hops
  are the traffic LaminarIR eliminates).
* the compute-op mix (``alu``/``mul``/``div``/``intrinsic``/…) feeds the
  platform cycle and energy models in :mod:`repro.machine`.

The counting conventions for the FIFO baseline follow the code the
StreamIt compiler emits (circular buffer with read/write indices kept in
memory):

=============  ====================================================
operation      counted as
=============  ====================================================
push           1 store (token) + 1 load + 1 store (write index)
               + 2 alu (increment, wrap)
pop            1 load (token) + 1 load + 1 store (read index)
               + 2 alu
peek(i)        1 load (token) + 1 load (read index) + 2 alu
=============  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class Counters:
    loads: int = 0
    stores: int = 0
    alu: int = 0          # int/float add/sub, bit ops, moves, index math
    mul: int = 0
    div: int = 0          # div and mod
    compare: int = 0
    select: int = 0
    intrinsic: int = 0    # transcendental / RNG calls
    branch: int = 0       # control-flow decisions taken (baseline only)
    token_transfers: int = 0
    prints: int = 0

    @property
    def memory_accesses(self) -> int:
        return self.loads + self.stores

    @property
    def total_ops(self) -> int:
        return (self.loads + self.stores + self.alu + self.mul + self.div
                + self.compare + self.select + self.intrinsic + self.branch)

    def snapshot(self) -> "Counters":
        return Counters(**{f.name: getattr(self, f.name)
                           for f in fields(self)})

    def delta_since(self, earlier: "Counters") -> "Counters":
        return Counters(**{f.name: getattr(self, f.name)
                           - getattr(earlier, f.name)
                           for f in fields(self)})

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    # -- FIFO access conventions (see module docstring) ---------------------

    def count_fifo_push(self) -> None:
        self.stores += 2
        self.loads += 1
        self.alu += 2
        self.token_transfers += 1

    def count_fifo_pop(self) -> None:
        self.loads += 2
        self.stores += 1
        self.alu += 2

    def count_fifo_peek(self) -> None:
        self.loads += 2
        self.alu += 2

    def count_binary(self, op: str) -> None:
        if op in ("*",):
            self.mul += 1
        elif op in ("/", "%"):
            self.div += 1
        elif op in ("==", "!=", "<", "<=", ">", ">="):
            self.compare += 1
        else:
            self.alu += 1


@dataclass
class RunResult:
    """Outputs and counters of one interpreter run."""

    outputs: list[object] = field(default_factory=list)
    counters: Counters = field(default_factory=Counters)
    # Counters restricted to the steady phase (what the paper reports
    # per-iteration numbers from).
    steady_counters: Counters = field(default_factory=Counters)
    iterations: int = 0
    # Per-vertex steady-phase totals over the whole run, keyed by the
    # flat-graph vertex name: tokens pushed into channels, and firings.
    # The FIFO interpreter counts these at run time; the laminar route
    # derives them statically from the program's lowering-recorded
    # per-iteration counts — the fuzz property tests assert they agree.
    filter_tokens: dict[str, int] = field(default_factory=dict)
    filter_firings: dict[str, int] = field(default_factory=dict)

    def per_iteration(self, name: str) -> float:
        if self.iterations == 0:
            return 0.0
        return getattr(self.steady_counters, name) / self.iterations
