"""The FIFO baseline interpreter — our stand-in for the StreamIt compiler.

Executes the flat stream graph exactly the way StreamIt-generated C does:

* every channel is a circular buffer accessed through read/write indices
  kept in memory (each access costs pointer loads/stores — see
  :mod:`repro.interp.counters` for the accounting),
* splitters and joiners run as real copy actors,
* filter work bodies execute their loops and branches at run time.

This gives the baseline side of every experiment: its outputs define
correctness for the LaminarIR route, and its counters define the baseline
data-communication / memory-access / cycle numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import InterpError, RateError, SourceLocation
from repro.frontend.intrinsics import INTRINSICS, XorShift32
from repro.frontend.types import (ArrayType, BOOLEAN, FLOAT, INT, ScalarType,
                                  VOID)
from repro.graph.nodes import (FilterVertex, FlatGraph, JoinerVertex,
                               SplitterVertex, Vertex)
from repro.interp.counters import Counters, RunResult
from repro.interp.values import (coerce_runtime, default_value,
                                 runtime_binary, runtime_unary)
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.scheduling.schedule import Firing, Schedule


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: object):
        self.value = value


def _runtime_type(value: object) -> ScalarType:
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    raise InterpError(f"unexpected runtime value {value!r}")


def _round_up_pow2(value: int) -> int:
    size = 1
    while size < value:
        size <<= 1
    return size


class RingBuffer:
    """A StreamIt-style circular buffer with masked indices."""

    def __init__(self, capacity: int, counters: Counters):
        self.capacity = _round_up_pow2(max(capacity, 1))
        self.mask = self.capacity - 1
        self.data: list[object] = [0] * self.capacity
        self.read = 0
        self.write = 0
        self.counters = counters

    def __len__(self) -> int:
        return self.write - self.read

    def push(self, value: object) -> None:
        if len(self) >= self.capacity:  # pragma: no cover - sized statically
            raise InterpError("FIFO overflow (buffer sized too small)")
        self.data[self.write & self.mask] = value
        self.write += 1
        self.counters.count_fifo_push()

    def pop(self) -> object:
        if not len(self):
            raise InterpError("FIFO underflow on pop")
        value = self.data[self.read & self.mask]
        self.read += 1
        self.counters.count_fifo_pop()
        return value

    def peek(self, offset: int) -> object:
        if offset < 0 or offset >= len(self):
            raise InterpError(f"FIFO underflow on peek({offset})")
        self.counters.count_fifo_peek()
        return self.data[(self.read + offset) & self.mask]


@dataclass
class _Array:
    """A run-time array value; element accesses are memory accesses."""

    element_ty: ScalarType
    dims: list[int]
    elems: list[object]


class _Scope:
    def __init__(self, parent: "_Scope | None" = None):
        self.parent = parent
        self.vars: dict[str, object] = {}

    def child(self) -> "_Scope":
        return _Scope(self)

    def define(self, name: str, value: object) -> None:
        self.vars[name] = value

    def find(self, name: str) -> "_Scope | None":
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.vars:
                return scope
            scope = scope.parent
        return None


class _FilterState:
    """Per-instance run-time state of one filter."""

    def __init__(self, vertex: FilterVertex):
        self.vertex = vertex
        self.node = vertex.filter
        self.fields: dict[str, object] = {}
        self.helpers = {h.name: h for h in self.node.decl.helpers}

    def base_scope(self) -> _Scope:
        """Scope holding the bound parameters.

        Fields are *not* copied in: identifier lookup falls back to
        ``self.fields`` so that locals can shadow fields and field accesses
        are counted as memory accesses.
        """
        scope = _Scope()
        for name, value in self.node.env.items():
            scope.define(name, value)
        return scope


class FifoInterpreter:
    """Executes a scheduled flat graph with run-time FIFO queues."""

    def __init__(self, schedule: Schedule, source: str = "",
                 rng_seed: int = XorShift32.DEFAULT_SEED):
        self.schedule = schedule
        self.graph: FlatGraph = schedule.graph
        self.source = source
        self.counters = Counters()
        self.rng = XorShift32(rng_seed)
        self.outputs: list[object] = []
        self.buffers: dict[str, RingBuffer] = {}
        self.states: dict[Vertex, _FilterState] = {}
        self._depth = 0
        # Per-vertex token pushes / firings, accumulated across all phases;
        # run() diffs around the steady loop for the RunResult.
        self.vertex_tokens: dict[str, int] = {}
        self.vertex_firings: dict[str, int] = {}

    def _note_tokens(self, name: str, amount: int) -> None:
        self.vertex_tokens[name] = self.vertex_tokens.get(name, 0) + amount

    # -- public API -------------------------------------------------------------

    def run(self, iterations: int) -> RunResult:
        self._setup()
        for firing in self.schedule.init:
            self._fire(firing)
        steady_start = self.counters.snapshot()
        tokens_start = dict(self.vertex_tokens)
        firings_start = dict(self.vertex_firings)
        timing = trace.is_enabled()
        iter_seconds = obs_metrics.histogram("interp.fifo.iter_seconds")
        for _ in range(iterations):
            began = time.perf_counter() if timing else 0.0
            for firing in self.schedule.steady:
                self._fire(firing)
            if timing:
                iter_seconds.observe(time.perf_counter() - began)
        steady = self.counters.delta_since(steady_start)
        filter_tokens = {
            name: total - tokens_start.get(name, 0)
            for name, total in self.vertex_tokens.items()
            if total - tokens_start.get(name, 0)}
        filter_firings = {
            name: total - firings_start.get(name, 0)
            for name, total in self.vertex_firings.items()
            if total - firings_start.get(name, 0)}
        obs_metrics.publish_counters("interp.fifo.steady", steady)
        if trace.is_enabled():
            for name, tokens in filter_tokens.items():
                obs_metrics.gauge(
                    f"interp.fifo.filter.{name}.tokens").set(tokens)
            for name, firings in filter_firings.items():
                obs_metrics.gauge(
                    f"interp.fifo.filter.{name}.firings").set(firings)
        return RunResult(outputs=list(self.outputs),
                         counters=self.counters.snapshot(),
                         steady_counters=steady, iterations=iterations,
                         filter_tokens=filter_tokens,
                         filter_firings=filter_firings)

    # -- setup -------------------------------------------------------------------

    def _setup(self) -> None:
        for channel in self.graph.channels:
            bound = self.schedule.buffer_bounds[channel.name]
            buffer = RingBuffer(bound, self.counters)
            for value in channel.initial:
                buffer.push(coerce_runtime(value, channel.ty))
            self.buffers[channel.name] = buffer
        for vertex in self.graph.filters:
            state = _FilterState(vertex)
            self.states[vertex] = state
            self._init_fields(state)
            if vertex.filter.decl.init is not None:
                scope = state.base_scope().child()
                self._exec_block(vertex.filter.decl.init, scope, state,
                                 hooks=None)

    def _init_fields(self, state: _FilterState) -> None:
        for fld in state.node.decl.fields:
            ty = state.node.field_types[fld.name]
            if isinstance(ty, ArrayType):
                dims = [d for d in ty.dims() if d is not None]
                count = 1
                for d in dims:
                    count *= d
                value: object = _Array(ty.base, dims,
                                       [default_value(ty.base)] * count)
            else:
                assert isinstance(ty, ScalarType)
                value = default_value(ty)
            state.fields[fld.name] = value
        # Field initializers run in declaration order; earlier fields are
        # visible through the state-fallback lookup.
        scope = state.base_scope()
        for fld in state.node.decl.fields:
            if fld.init is None:
                continue
            ty = state.node.field_types[fld.name]
            assert isinstance(ty, ScalarType)
            state.fields[fld.name] = coerce_runtime(
                self._eval(fld.init, scope, state, None), ty)

    # -- firings -------------------------------------------------------------------

    def _fire(self, firing: Firing) -> None:
        vertex = firing.vertex
        self.vertex_firings[vertex.name] = \
            self.vertex_firings.get(vertex.name, 0) + 1
        if isinstance(vertex, FilterVertex):
            self._fire_filter(vertex, firing.prework)
        elif isinstance(vertex, SplitterVertex):
            self._fire_splitter(vertex)
        elif isinstance(vertex, JoinerVertex):
            self._fire_joiner(vertex)
        else:  # pragma: no cover
            raise AssertionError(vertex.kind)

    def _fire_filter(self, vertex: FilterVertex, prework: bool) -> None:
        node = vertex.filter
        rates = node.prework if prework else node.work
        decl = node.decl.prework if prework else node.decl.work
        assert rates is not None and decl is not None
        state = self.states[vertex]
        hooks = _Hooks(self, vertex, rates.peek)
        scope = state.base_scope().child()
        assert decl.body is not None
        self._exec_block(decl.body, scope, state, hooks)
        self._note_tokens(vertex.name, hooks.pushes)
        what = "prework" if prework else "work"
        if hooks.pops != rates.pop:
            raise RateError(
                f"{vertex.name}: {what} popped {hooks.pops} token(s), "
                f"declared pop {rates.pop}")
        if hooks.pushes != rates.push:
            raise RateError(
                f"{vertex.name}: {what} pushed {hooks.pushes} token(s), "
                f"declared push {rates.push}")

    def _fire_splitter(self, vertex: SplitterVertex) -> None:
        in_buffer = self.buffers[vertex.inputs[0].name]  # type: ignore
        if vertex.policy == "duplicate":
            token = in_buffer.pop()
            for channel in vertex.outputs:
                assert channel is not None
                self._note_tokens(vertex.name, 1)
                self.buffers[channel.name].push(token)
            return
        for port, channel in enumerate(vertex.outputs):
            assert channel is not None
            out_buffer = self.buffers[channel.name]
            for _ in range(vertex.weights[port]):
                self._note_tokens(vertex.name, 1)
                out_buffer.push(in_buffer.pop())

    def _fire_joiner(self, vertex: JoinerVertex) -> None:
        out_buffer = self.buffers[vertex.outputs[0].name]  # type: ignore
        for port, channel in enumerate(vertex.inputs):
            assert channel is not None
            in_buffer = self.buffers[channel.name]
            for _ in range(vertex.weights[port]):
                self._note_tokens(vertex.name, 1)
                out_buffer.push(in_buffer.pop())

    # -- statements --------------------------------------------------------------

    def _exec_block(self, block: ast.Block, scope: _Scope,
                    state: _FilterState, hooks: "_Hooks | None") -> None:
        inner = scope.child()
        for stmt in block.stmts:
            self._exec(stmt, inner, state, hooks)

    def _exec(self, stmt: ast.Stmt, scope: _Scope, state: _FilterState,
              hooks: "_Hooks | None") -> None:
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, scope, state, hooks)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_var_decl(stmt, scope, state, hooks)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, scope, state, hooks)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._eval(stmt.expr, scope, state, hooks)
        elif isinstance(stmt, ast.PushStmt):
            assert stmt.value is not None
            if hooks is None:
                raise InterpError("push outside work", stmt.loc, self.source)
            hooks.push(self._eval(stmt.value, scope, state, hooks))
        elif isinstance(stmt, ast.PrintStmt):
            assert stmt.value is not None
            value = self._eval(stmt.value, scope, state, hooks)
            self.outputs.append(value)
            self.counters.prints += 1
        elif isinstance(stmt, ast.IfStmt):
            assert stmt.cond is not None and stmt.then is not None
            self.counters.branch += 1
            if self._eval(stmt.cond, scope, state, hooks):
                self._exec(stmt.then, scope.child(), state, hooks)
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, scope.child(), state, hooks)
        elif isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, scope, state, hooks)
        elif isinstance(stmt, ast.WhileStmt):
            self._exec_while(stmt, scope, state, hooks)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._exec_do_while(stmt, scope, state, hooks)
        elif isinstance(stmt, ast.ReturnStmt):
            value = (self._eval(stmt.value, scope, state, hooks)
                     if stmt.value is not None else None)
            raise _Return(value)
        elif isinstance(stmt, ast.BreakStmt):
            raise _Break()
        elif isinstance(stmt, ast.ContinueStmt):
            raise _Continue()
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}",
                              stmt.loc, self.source)

    def _exec_var_decl(self, stmt: ast.VarDecl, scope: _Scope,
                       state: _FilterState, hooks: "_Hooks | None") -> None:
        base = stmt.var_type
        assert isinstance(base, ScalarType)
        if stmt.dims:
            dims = [int(self._eval(d, scope, state, hooks))  # type: ignore
                    for d in stmt.dims]
            count = 1
            for d in dims:
                if d <= 0:
                    raise InterpError("array size must be positive",
                                      stmt.loc, self.source)
                count *= d
            scope.define(stmt.name,
                         _Array(base, dims, [default_value(base)] * count))
            return
        if stmt.init is not None:
            value = coerce_runtime(
                self._eval(stmt.init, scope, state, hooks), base)
        else:
            value = default_value(base)
        scope.define(stmt.name, value)

    def _exec_assign(self, stmt: ast.Assign, scope: _Scope,
                     state: _FilterState, hooks: "_Hooks | None") -> None:
        assert stmt.target is not None and stmt.value is not None
        value = self._eval(stmt.value, scope, state, hooks)
        if stmt.op != "=":
            current = self._eval(stmt.target, scope, state, hooks)
            value = runtime_binary(stmt.op[:-1], current, value)
            self.counters.count_binary(stmt.op[:-1])
        self._write(stmt.target, value, scope, state, hooks)

    def _write(self, target: ast.Expr, value: object, scope: _Scope,
               state: _FilterState, hooks: "_Hooks | None") -> None:
        if isinstance(target, ast.Ident):
            holder = scope.find(target.name)
            if holder is not None:
                current = holder.vars[target.name]
                if isinstance(current, _Array):
                    raise InterpError("cannot assign a whole array",
                                      target.loc, self.source)
                holder.vars[target.name] = coerce_runtime(
                    value, _runtime_type(current))
                return
            if target.name in state.fields:
                current = state.fields[target.name]
                if isinstance(current, _Array):
                    raise InterpError("cannot assign a whole array",
                                      target.loc, self.source)
                state.fields[target.name] = coerce_runtime(
                    value, _runtime_type(current))
                self.counters.stores += 1
                return
            raise InterpError(f"unknown variable {target.name!r}",
                              target.loc, self.source)
        if isinstance(target, ast.Index):
            array, offset = self._resolve_element(target, scope, state,
                                                  hooks)
            array.elems[offset] = coerce_runtime(value, array.element_ty)
            self.counters.stores += 1
            return
        raise InterpError("invalid assignment target", target.loc,
                          self.source)

    def _resolve_element(self, expr: ast.Index, scope: _Scope,
                         state: _FilterState,
                         hooks: "_Hooks | None") -> tuple[_Array, int]:
        indices: list[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            assert node.index is not None and node.base is not None
            indices.append(node.index)
            node = node.base
        indices.reverse()
        if not isinstance(node, ast.Ident):
            raise InterpError("indexed value is not a variable", expr.loc,
                              self.source)
        holder = scope.find(node.name)
        if holder is not None:
            array = holder.vars[node.name]
        elif node.name in state.fields:
            array = state.fields[node.name]
        else:
            raise InterpError(f"unknown variable {node.name!r}", node.loc,
                              self.source)
        if not isinstance(array, _Array):
            raise InterpError(f"{node.name!r} is not an array", expr.loc,
                              self.source)
        if len(indices) != len(array.dims):
            raise InterpError(
                f"expected {len(array.dims)} indices, got {len(indices)}",
                expr.loc, self.source)
        offset = 0
        for dim, index_expr in zip(array.dims, indices):
            index = self._eval(index_expr, scope, state, hooks)
            assert isinstance(index, int)
            offset = offset * dim + index
            self.counters.alu += 1  # address arithmetic
        total = len(array.elems)
        if not 0 <= offset < total:
            raise InterpError(f"array index {offset} out of bounds "
                              f"[0, {total})", expr.loc, self.source)
        return array, offset

    def _exec_for(self, stmt: ast.ForStmt, scope: _Scope,
                  state: _FilterState, hooks: "_Hooks | None") -> None:
        loop_scope = scope.child()
        if stmt.init is not None:
            self._exec(stmt.init, loop_scope, state, hooks)
        while True:
            if stmt.cond is not None:
                self.counters.branch += 1
                if not self._eval(stmt.cond, loop_scope, state, hooks):
                    return
            assert stmt.body is not None
            try:
                self._exec(stmt.body, loop_scope.child(), state, hooks)
            except _Break:
                return
            except _Continue:
                pass
            if stmt.step is not None:
                self._exec(stmt.step, loop_scope, state, hooks)

    def _exec_while(self, stmt: ast.WhileStmt, scope: _Scope,
                    state: _FilterState, hooks: "_Hooks | None") -> None:
        assert stmt.cond is not None and stmt.body is not None
        while True:
            self.counters.branch += 1
            if not self._eval(stmt.cond, scope, state, hooks):
                return
            try:
                self._exec(stmt.body, scope.child(), state, hooks)
            except _Break:
                return
            except _Continue:
                continue

    def _exec_do_while(self, stmt: ast.DoWhileStmt, scope: _Scope,
                       state: _FilterState,
                       hooks: "_Hooks | None") -> None:
        assert stmt.cond is not None and stmt.body is not None
        while True:
            try:
                self._exec(stmt.body, scope.child(), state, hooks)
            except _Break:
                return
            except _Continue:
                pass
            self.counters.branch += 1
            if not self._eval(stmt.cond, scope, state, hooks):
                return

    # -- expressions ------------------------------------------------------------

    def _eval(self, expr: ast.Expr, scope: _Scope, state: _FilterState,
              hooks: "_Hooks | None") -> object:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.FloatLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.Ident):
            holder = scope.find(expr.name)
            if holder is not None:
                return holder.vars[expr.name]
            if expr.name in state.fields:
                value = state.fields[expr.name]
                if not isinstance(value, _Array):
                    self.counters.loads += 1
                return value
            raise InterpError(f"unknown identifier {expr.name!r}", expr.loc,
                              self.source)
        if isinstance(expr, ast.UnaryOp):
            assert expr.operand is not None
            operand = self._eval(expr.operand, scope, state, hooks)
            self.counters.alu += 1
            return runtime_unary(expr.op, operand)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, scope, state, hooks)
        if isinstance(expr, ast.TernaryOp):
            assert expr.cond and expr.then and expr.otherwise
            self.counters.branch += 1
            if self._eval(expr.cond, scope, state, hooks):
                return self._eval(expr.then, scope, state, hooks)
            return self._eval(expr.otherwise, scope, state, hooks)
        if isinstance(expr, ast.Cast):
            assert expr.target is not None and expr.operand is not None
            assert isinstance(expr.target, ScalarType)
            self.counters.alu += 1
            return coerce_runtime(
                self._eval(expr.operand, scope, state, hooks), expr.target)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, scope, state, hooks)
        if isinstance(expr, ast.Index):
            array, offset = self._resolve_element(expr, scope, state, hooks)
            self.counters.loads += 1
            return array.elems[offset]
        if isinstance(expr, ast.PeekExpr):
            assert expr.offset is not None
            if hooks is None:
                raise InterpError("peek outside work", expr.loc, self.source)
            offset = self._eval(expr.offset, scope, state, hooks)
            assert isinstance(offset, int)
            return hooks.peek(offset, expr.loc)
        if isinstance(expr, ast.PopExpr):
            if hooks is None:
                raise InterpError("pop outside work", expr.loc, self.source)
            return hooks.pop()
        raise InterpError(f"cannot evaluate {type(expr).__name__}", expr.loc,
                          self.source)

    def _eval_binary(self, expr: ast.BinaryOp, scope: _Scope,
                     state: _FilterState, hooks: "_Hooks | None") -> object:
        assert expr.left is not None and expr.right is not None
        if expr.op in ("&&", "||"):
            left = self._eval(expr.left, scope, state, hooks)
            self.counters.branch += 1
            if expr.op == "&&" and not left:
                return False
            if expr.op == "||" and left:
                return True
            return bool(self._eval(expr.right, scope, state, hooks))
        left = self._eval(expr.left, scope, state, hooks)
        right = self._eval(expr.right, scope, state, hooks)
        self.counters.count_binary(expr.op)
        return runtime_binary(expr.op, left, right)

    def _eval_call(self, expr: ast.Call, scope: _Scope, state: _FilterState,
                   hooks: "_Hooks | None") -> object:
        helper = state.helpers.get(expr.name)
        if helper is not None:
            return self._call_helper(helper, expr, scope, state, hooks)
        intrinsic = INTRINSICS.get(expr.name)
        if intrinsic is None:
            raise InterpError(f"unknown function {expr.name!r}", expr.loc,
                              self.source)
        args = [self._eval(a, scope, state, hooks) for a in expr.args]
        self.counters.intrinsic += 1
        if intrinsic.name == "randf":
            return self.rng.randf()
        if intrinsic.name == "randi":
            try:
                return self.rng.randi(int(args[0]))  # type: ignore[arg-type]
            except ValueError as error:
                raise InterpError(str(error), expr.loc, self.source) \
                    from None
        assert intrinsic.impl is not None
        if intrinsic.policy == "float":
            args = [float(a) for a in args]  # type: ignore[arg-type]
        return intrinsic.impl(*args)

    def _call_helper(self, helper: ast.HelperFunc, expr: ast.Call,
                     scope: _Scope, state: _FilterState,
                     hooks: "_Hooks | None") -> object:
        if self._depth >= 64:
            raise InterpError("helper call depth exceeded", expr.loc,
                              self.source)
        call_scope = state.base_scope().child()
        for param, arg in zip(helper.params, expr.args):
            assert isinstance(param.ty, ScalarType)
            value = coerce_runtime(self._eval(arg, scope, state, hooks),
                                   param.ty)
            call_scope.define(param.name, value)
        self._depth += 1
        try:
            assert helper.body is not None
            self._exec_block(helper.body, call_scope, state, hooks)
        except _Return as ret:
            if ret.value is None:
                return 0
            assert isinstance(helper.return_type, ScalarType)
            return coerce_runtime(ret.value, helper.return_type)
        finally:
            self._depth -= 1
        if helper.return_type in (None, VOID):
            return 0
        raise InterpError(f"helper {helper.name!r} returned no value",
                          expr.loc, self.source)


class _Hooks:
    """Run-time token operations of one filter firing."""

    def __init__(self, interp: FifoInterpreter, vertex: FilterVertex,
                 peek_rate: int):
        self.interp = interp
        self.vertex = vertex
        self.peek_rate = peek_rate
        self.in_buffer = (interp.buffers[vertex.inputs[0].name]
                          if vertex.inputs else None)  # type: ignore
        self.out_buffer = (interp.buffers[vertex.outputs[0].name]
                           if vertex.outputs else None)  # type: ignore
        self.out_ty = (vertex.outputs[0].ty if vertex.outputs  # type: ignore
                       else None)
        self.pops = 0
        self.pushes = 0

    def peek(self, offset: int, loc: SourceLocation) -> object:
        if self.in_buffer is None:
            raise InterpError(f"{self.vertex.name}: peek without input", loc)
        if self.pops + offset + 1 > self.peek_rate:
            raise InterpError(
                f"{self.vertex.name}: peek({offset}) after {self.pops} "
                f"pop(s) exceeds declared peek rate {self.peek_rate}", loc)
        return self.in_buffer.peek(offset)

    def pop(self) -> object:
        assert self.in_buffer is not None
        self.pops += 1
        return self.in_buffer.pop()

    def push(self, value: object) -> None:
        assert self.out_buffer is not None and self.out_ty is not None
        self.pushes += 1
        self.out_buffer.push(coerce_runtime(value, self.out_ty))
