"""Interpreter for lowered LaminarIR programs.

Executes the three straight-line sections with exact operation counting.
Tokens and intermediate values live in a register file (a dict keyed by
temp id) — only ``load``/``store`` ops touch the memory counters, which is
precisely the paper's point: after lowering, the steady state's memory
traffic is whatever state could not be promoted to registers.

Outputs must match :class:`repro.interp.fifo.FifoInterpreter` exactly for
the same program and iteration count (the equivalence experiment E8 and a
large part of the test suite rely on this).
"""

from __future__ import annotations

import time

from repro.frontend.errors import InterpError
from repro.frontend.intrinsics import INTRINSICS, XorShift32
from repro.interp.counters import Counters, RunResult
from repro.interp.values import coerce_runtime, default_value, \
    runtime_binary, runtime_unary
from repro.lir.attribution import attribute_program
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, LoopRegion,
                           MoveOp, Op, PrintOp, SelectOp, StoreOp, Temp,
                           UnOp, Value)
from repro.lir.program import Program
from repro.obs import metrics as obs_metrics
from repro.obs import trace


class LaminarInterpreter:
    def __init__(self, program: Program,
                 rng_seed: int = XorShift32.DEFAULT_SEED):
        self.program = program
        self.counters = Counters()
        self.rng = XorShift32(rng_seed)
        self.outputs: list[object] = []
        self.registers: dict[int, object] = {}
        self.state: dict[str, object] = {}
        for slot in program.state_slots:
            if slot.is_array:
                assert slot.size is not None
                self.state[slot.name] = [default_value(slot.ty)] * slot.size
            else:
                self.state[slot.name] = default_value(slot.ty)

    # -- public API -----------------------------------------------------------

    def run(self, iterations: int) -> RunResult:
        self._run_ops(self.program.setup)
        self._run_ops(self.program.init)
        carries = [self._value(v) for v in self.program.carry_inits]
        steady_start = self.counters.snapshot()
        params = self.program.carry_params
        timing = trace.is_enabled()
        iter_seconds = obs_metrics.histogram("interp.laminar.iter_seconds")
        for _ in range(iterations):
            began = time.perf_counter() if timing else 0.0
            for param, value in zip(params, carries):
                self.registers[param.id] = value
                self.counters.alu += 1  # loop-carried register move
            self._run_ops(self.program.steady)
            carries = [self._value(v) for v in self.program.carry_nexts]
            if timing:
                iter_seconds.observe(time.perf_counter() - began)
        steady = self.counters.delta_since(steady_start)
        obs_metrics.publish_counters("interp.laminar.steady", steady)
        # The laminar route has no run-time queues, so per-filter totals
        # are derived statically: the lowering's per-iteration counts
        # scaled by the iteration count.  The fuzz property tests assert
        # these agree with the FIFO interpreter's run-time counts.
        filter_tokens = {name: per_iter * iterations
                         for name, per_iter
                         in self.program.filter_tokens.items()}
        filter_firings = {name: per_iter * iterations
                          for name, per_iter
                          in self.program.filter_firings.items()}
        if timing:
            for row in attribute_program(self.program):
                obs_metrics.gauge(
                    f"interp.laminar.filter.{row.name}.ops").set(
                        row.steady_ops)
            for name, tokens in filter_tokens.items():
                obs_metrics.gauge(
                    f"interp.laminar.filter.{name}.tokens").set(tokens)
        return RunResult(outputs=list(self.outputs),
                         counters=self.counters.snapshot(),
                         steady_counters=steady, iterations=iterations,
                         filter_tokens=filter_tokens,
                         filter_firings=filter_firings)

    # -- execution ---------------------------------------------------------------

    def _value(self, value: Value) -> object:
        if isinstance(value, Const):
            return value.value
        assert isinstance(value, Temp)
        try:
            return self.registers[value.id]
        except KeyError:
            raise InterpError(f"use of undefined value {value}") from None

    def _set(self, temp: Temp | None, value: object) -> None:
        assert temp is not None
        self.registers[temp.id] = value

    def _run_ops(self, ops: list[Op]) -> None:
        for op in ops:
            self._run_op(op)

    def _run_op(self, op: Op) -> None:
        if isinstance(op, BinOp):
            result = runtime_binary(op.op, self._value(op.lhs),
                                    self._value(op.rhs))
            self.counters.count_binary(op.op)
            self._set(op.result, result)
        elif isinstance(op, UnOp):
            self.counters.alu += 1
            self._set(op.result, runtime_unary(op.op,
                                               self._value(op.operand)))
        elif isinstance(op, CastOp):
            assert op.result is not None
            self.counters.alu += 1
            self._set(op.result,
                      coerce_runtime(self._value(op.operand), op.result.ty))
        elif isinstance(op, SelectOp):
            self.counters.select += 1
            chosen = op.then if self._value(op.cond) else op.otherwise
            self._set(op.result, self._value(chosen))
        elif isinstance(op, CallOp):
            self._run_call(op)
        elif isinstance(op, LoadOp):
            self._run_load(op)
        elif isinstance(op, StoreOp):
            self._run_store(op)
        elif isinstance(op, MoveOp):
            # Only present when splitter/joiner elimination is disabled:
            # models the routing copy the baseline performs.
            self.counters.alu += 1
            self.counters.token_transfers += 1
            self._set(op.result, self._value(op.src))
        elif isinstance(op, PrintOp):
            self.counters.prints += 1
            self.outputs.append(self._value(op.value))
        elif isinstance(op, LoopRegion):
            self._run_region(op)
        else:  # pragma: no cover
            raise AssertionError(type(op).__name__)

    def _run_region(self, region: LoopRegion) -> None:
        """Execute a re-rolled loop directly: counters accumulate per
        trip, exactly as the unrolled form would have counted."""
        carries = [self._value(v) for v in region.carry_inits]
        params = region.carry_params
        for trip in range(region.trips):
            self.registers[region.index.id] = trip
            for param, value in zip(params, carries):
                self.registers[param.id] = value
                self.counters.alu += 1  # loop-carried register move
            for op in region.body:
                self._run_op(op)
            if params:
                carries = [self._value(v) for v in region.carry_nexts]

    def _run_call(self, op: CallOp) -> None:
        self.counters.intrinsic += 1
        args = [self._value(a) for a in op.args]
        if op.name == "randf":
            self._set(op.result, self.rng.randf())
            return
        if op.name == "randi":
            try:
                self._set(op.result,
                          self.rng.randi(int(args[0])))  # type: ignore
            except ValueError as error:
                raise InterpError(str(error)) from None
            return
        intrinsic = INTRINSICS[op.name]
        assert intrinsic.impl is not None
        if intrinsic.policy == "float":
            args = [float(a) for a in args]  # type: ignore[arg-type]
        self._set(op.result, intrinsic.impl(*args))

    def _element(self, op: LoadOp | StoreOp) -> tuple[list, int]:
        array = self.state[op.slot.name]
        assert isinstance(array, list)
        assert op.index is not None
        index = self._value(op.index)
        assert isinstance(index, int)
        self.counters.alu += 1  # address arithmetic
        if not 0 <= index < len(array):
            raise InterpError(
                f"index {index} out of bounds for slot {op.slot.name}"
                f"[{len(array)}]")
        return array, index

    def _run_load(self, op: LoadOp) -> None:
        self.counters.loads += 1
        if op.index is None:
            self._set(op.result, self.state[op.slot.name])
            return
        array, index = self._element(op)
        self._set(op.result, array[index])

    def _run_store(self, op: StoreOp) -> None:
        self.counters.stores += 1
        value = coerce_runtime(self._value(op.value), op.slot.ty)
        if op.index is None:
            self.state[op.slot.name] = value
            return
        array, index = self._element(op)
        array[index] = value
