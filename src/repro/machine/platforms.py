"""Platform cost models for the paper's four evaluation machines.

The paper measures on Intel i7-2600K, AMD Opteron 6378, Intel Xeon Phi
3120A and ARM Cortex-A15.  We do not have that hardware, so — per the
substitution policy in DESIGN.md — each platform is a cycle/energy cost
model applied to the interpreters' exact per-iteration operation counts.
The constants are order-of-magnitude figures from public
microarchitecture references (Agner Fog's tables, ARM TRMs); they are
*models*, and EXPERIMENTS.md reports them as such.  What the experiments
check is the paper's shape: LaminarIR wins on every platform, most on
wide out-of-order cores and least where memory was already cheap
relative to compute.

A simple linear-scan register-pressure model converts the unrolled steady
body's peak liveness into spill traffic, so very large LaminarIR bodies
do not get an unrealistic "zero memory accesses" score.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.interp.counters import Counters
from repro.lir.ops import Op, Temp
from repro.lir.program import Program


@dataclass(frozen=True)
class CostModel:
    """Per-operation-class cycle and energy costs of one platform."""

    name: str
    frequency_ghz: float
    registers: int           # architecturally usable scalar+FP registers
    # cycles per operation class
    cyc_alu: float
    cyc_mul: float
    cyc_div: float
    cyc_compare: float
    cyc_select: float
    cyc_intrinsic: float
    cyc_load: float
    cyc_store: float
    cyc_branch: float
    cyc_print: float
    # energy per operation class (picojoules)
    pj_alu: float
    pj_mul: float
    pj_div: float
    pj_intrinsic: float
    pj_load: float
    pj_store: float
    pj_branch: float
    # static power burned per cycle (picojoules / cycle)
    pj_static_per_cycle: float

    def cycles(self, counters: Counters, spills: int = 0) -> float:
        """Modeled cycles for one batch of counted operations."""
        spill_loads = spill_stores = spills
        return (counters.alu * self.cyc_alu
                + counters.mul * self.cyc_mul
                + counters.div * self.cyc_div
                + counters.compare * self.cyc_compare
                + counters.select * self.cyc_select
                + counters.intrinsic * self.cyc_intrinsic
                + (counters.loads + spill_loads) * self.cyc_load
                + (counters.stores + spill_stores) * self.cyc_store
                + counters.branch * self.cyc_branch
                + counters.prints * self.cyc_print)

    def energy_pj(self, counters: Counters, spills: int = 0) -> float:
        """Modeled energy (pJ), dynamic + static."""
        dynamic = (counters.alu * self.pj_alu
                   + counters.mul * self.pj_mul
                   + counters.div * self.pj_div
                   + counters.compare * self.pj_alu
                   + counters.select * self.pj_alu
                   + counters.intrinsic * self.pj_intrinsic
                   + (counters.loads + spills) * self.pj_load
                   + (counters.stores + spills) * self.pj_store
                   + counters.branch * self.pj_branch
                   + counters.prints * self.pj_load)
        return dynamic + self.cycles(counters, spills) \
            * self.pj_static_per_cycle

    def seconds(self, counters: Counters, spills: int = 0) -> float:
        return self.cycles(counters, spills) / (self.frequency_ghz * 1e9)


# Desktop out-of-order x86: cheap ALU, moderate L1, big OoO window.
I7_2600K = CostModel(
    name="Intel i7-2600K", frequency_ghz=3.4, registers=32,
    cyc_alu=0.5, cyc_mul=1.0, cyc_div=7.0, cyc_compare=0.5, cyc_select=1.0,
    cyc_intrinsic=25.0, cyc_load=2.0, cyc_store=2.0, cyc_branch=1.0,
    cyc_print=20.0,
    pj_alu=15, pj_mul=40, pj_div=150, pj_intrinsic=500,
    pj_load=120, pj_store=140, pj_branch=20, pj_static_per_cycle=220)

# Server x86 with slower caches and lower clocks.
OPTERON_6378 = CostModel(
    name="AMD Opteron 6378", frequency_ghz=2.4, registers=32,
    cyc_alu=0.5, cyc_mul=1.2, cyc_div=9.0, cyc_compare=0.5, cyc_select=1.2,
    cyc_intrinsic=30.0, cyc_load=3.0, cyc_store=3.0, cyc_branch=1.2,
    cyc_print=20.0,
    pj_alu=18, pj_mul=50, pj_div=180, pj_intrinsic=600,
    pj_load=160, pj_store=180, pj_branch=25, pj_static_per_cycle=320)

# In-order wide-vector accelerator core: everything is relatively slow,
# memory especially.
XEON_PHI_3120A = CostModel(
    name="Intel Xeon Phi 3120A", frequency_ghz=1.1, registers=32,
    cyc_alu=1.0, cyc_mul=2.0, cyc_div=25.0, cyc_compare=1.0, cyc_select=2.0,
    cyc_intrinsic=60.0, cyc_load=4.0, cyc_store=4.0, cyc_branch=3.0,
    cyc_print=30.0,
    pj_alu=10, pj_mul=30, pj_div=120, pj_intrinsic=400,
    pj_load=90, pj_store=100, pj_branch=15, pj_static_per_cycle=150)

# Mobile out-of-order ARM: modest clocks, small caches, few registers.
CORTEX_A15 = CostModel(
    name="ARM Cortex-A15", frequency_ghz=1.7, registers=24,
    cyc_alu=1.0, cyc_mul=2.0, cyc_div=15.0, cyc_compare=1.0, cyc_select=1.5,
    cyc_intrinsic=45.0, cyc_load=3.0, cyc_store=3.0, cyc_branch=1.5,
    cyc_print=25.0,
    pj_alu=5, pj_mul=15, pj_div=60, pj_intrinsic=200,
    pj_load=50, pj_store=60, pj_branch=8, pj_static_per_cycle=60)

PLATFORMS: dict[str, CostModel] = {
    "i7-2600k": I7_2600K,
    "opteron-6378": OPTERON_6378,
    "xeon-phi-3120a": XEON_PHI_3120A,
    "cortex-a15": CORTEX_A15,
}


def peak_live_values(ops: list[Op], live_in: list[Temp],
                     live_out: list[Temp]) -> int:
    """Peak number of simultaneously live temps in a straight-line block."""
    last_use: dict[int, int] = {temp.id: len(ops) for temp in live_out}
    first_def: dict[int, int] = {temp.id: 0 for temp in live_in}
    for position, op in enumerate(ops):
        for operand in op.operands():
            if isinstance(operand, Temp):
                last_use[operand.id] = max(last_use.get(operand.id, -1),
                                           position)
        if op.result is not None and op.result.id not in first_def:
            first_def[op.result.id] = position + 1
    events: list[tuple[int, int]] = []  # (position, +1/-1)
    for temp_id, defined in first_def.items():
        used = last_use.get(temp_id)
        if used is None or used < defined:
            continue
        events.append((defined, 1))
        events.append((used, -1))
    events.sort(key=lambda e: (e[0], -e[1]))
    live = peak = 0
    for _pos, delta in events:
        live += delta
        peak = max(peak, live)
    return peak


def estimate_spills(program: Program, model: CostModel) -> int:
    """Spilled values per steady iteration under ``model``'s register file.

    Linear-scan style estimate: every live value beyond the register count
    costs one store + one reload per iteration.  Deliberately simple — it
    exists so large unrolled bodies don't score an impossible zero memory
    accesses.
    """
    peak = peak_live_values(program.steady, program.carry_params,
                            [v for v in program.carry_nexts
                             if isinstance(v, Temp)])
    return max(0, peak - model.registers)
