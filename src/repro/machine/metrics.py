"""Analytic metrics derived from the schedule: data communication volume.

The paper's Figure on data communication counts the tokens moved between
actors during one steady-state iteration.  In the FIFO baseline every hop
through a splitter or joiner is a real copy, so their traffic adds to the
producer's.  LaminarIR removes those hops: consumers read the producer's
token names directly, so only the original producer→consumer transfers
remain.  Both sides are exact functions of the repetition vector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.nodes import FilterVertex, FlatGraph, Vertex
from repro.scheduling.schedule import Schedule


@dataclass(frozen=True)
class CommunicationReport:
    """Tokens transferred per steady iteration."""

    fifo_tokens: int        # all channel writes (filters + splitters/joiners)
    laminar_tokens: int     # filter channel writes only
    fifo_bytes: int
    laminar_bytes: int

    @property
    def reduction(self) -> float:
        """Fraction of baseline communication LaminarIR eliminates."""
        if self.fifo_tokens == 0:
            return 0.0
        return 1.0 - self.laminar_tokens / self.fifo_tokens


_TOKEN_BYTES = {"int": 4, "float": 8, "boolean": 4}


def _pushes_per_iteration(vertex: Vertex, reps: dict[Vertex, int]) -> list[tuple[int, int]]:
    """[(tokens, bytes)] per output channel for one steady iteration."""
    out = []
    for port, channel in enumerate(vertex.outputs):
        assert channel is not None
        tokens = reps[vertex] * vertex.push_rate(port)
        out.append((tokens, tokens * _TOKEN_BYTES[channel.ty.name]))
    return out


def communication_report(schedule: Schedule) -> CommunicationReport:
    graph: FlatGraph = schedule.graph
    fifo_tokens = fifo_bytes = 0
    laminar_tokens = laminar_bytes = 0
    for vertex in graph.vertices:
        for tokens, nbytes in _pushes_per_iteration(vertex, schedule.reps):
            fifo_tokens += tokens
            fifo_bytes += nbytes
            if isinstance(vertex, FilterVertex):
                laminar_tokens += tokens
                laminar_bytes += nbytes
    return CommunicationReport(fifo_tokens=fifo_tokens,
                               laminar_tokens=laminar_tokens,
                               fifo_bytes=fifo_bytes,
                               laminar_bytes=laminar_bytes)
