"""Platform cost/energy models and analytic metrics."""

from repro.machine.metrics import CommunicationReport, communication_report
from repro.machine.platforms import (CORTEX_A15, CostModel, I7_2600K,
                                     OPTERON_6378, PLATFORMS,
                                     XEON_PHI_3120A, estimate_spills,
                                     peak_live_values)

__all__ = [
    "CORTEX_A15", "CommunicationReport", "CostModel", "I7_2600K",
    "OPTERON_6378", "PLATFORMS", "XEON_PHI_3120A", "communication_report",
    "estimate_spills", "peak_live_values",
]
