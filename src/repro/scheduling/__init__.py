"""SDF scheduling: balance equations plus init/steady schedules."""

from repro.scheduling.balance import (repetition_vector,
                                      steady_state_token_counts)
from repro.scheduling.schedule import Firing, Schedule, build_schedule

__all__ = ["Firing", "Schedule", "build_schedule", "repetition_vector",
           "steady_state_token_counts"]
