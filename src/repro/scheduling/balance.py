"""Balance equations: the steady-state repetition vector of an SDF graph.

For every channel ``src[p] -> dst[q]`` a valid steady state satisfies::

    rep[src] * push(src, p) == rep[dst] * pop(dst, q)

We solve the system exactly with :class:`fractions.Fraction` by propagating
ratios over the (undirected) channel constraints, then scale to the smallest
positive integer vector.  Inconsistent rates raise
:class:`~repro.frontend.errors.RateError`.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd

from repro.faults.limits import ResourceExhausted
from repro.frontend.errors import RateError
from repro.graph.nodes import FlatGraph, Vertex


def repetition_vector(graph: FlatGraph,
                      max_iterations: int | None = None
                      ) -> dict[Vertex, int]:
    """Compute the minimal steady-state repetition vector of ``graph``.

    ``max_iterations`` caps the solver's worklist (the
    ``max_solver_iterations`` resource guardrail).
    """
    if not graph.vertices:
        raise RateError("cannot schedule an empty graph")
    ratio: dict[Vertex, Fraction] = {}
    start = graph.vertices[0]
    ratio[start] = Fraction(1)
    worklist = [start]
    iterations = 0
    while worklist:
        iterations += 1
        if max_iterations is not None and iterations > max_iterations:
            raise ResourceExhausted(
                "max_solver_iterations", max_iterations, iterations,
                where="balance solver (repetition vector)")
        vertex = worklist.pop()
        for channel in list(vertex.outputs) + list(vertex.inputs):
            if channel is None:
                continue
            push = channel.src.push_rate(channel.src_port)
            pop = channel.dst.pop_rate(channel.dst_port)
            if push == 0 and pop == 0:
                # A dead channel (e.g. behind a weight-0 round-robin
                # port): trivially balanced, constrains nothing.
                continue
            if push == 0 or pop == 0:
                raise RateError(
                    f"channel {channel.name} ({channel.src.name} -> "
                    f"{channel.dst.name}) has a one-sided zero rate "
                    f"(push={push}, pop={pop}); no steady state exists")
            if channel.src in ratio:
                implied = ratio[channel.src] * push / pop
                known, other = channel.dst, implied
            elif channel.dst in ratio:
                implied = ratio[channel.dst] * pop / push
                known, other = channel.src, implied
            else:
                continue
            if known in ratio:
                if ratio[known] != other:
                    raise RateError(
                        f"inconsistent rates on channel {channel.name} "
                        f"({channel.src.name} -> {channel.dst.name}): "
                        f"{ratio[known]} vs {other}")
            else:
                ratio[known] = other
                worklist.append(known)

    missing = [v.name for v in graph.vertices if v not in ratio]
    if missing:
        raise RateError(
            "stream graph is disconnected (or attached only through "
            "zero-rate channels); unconstrained vertices: "
            + ", ".join(missing))

    denominator_lcm = 1
    for value in ratio.values():
        denominator_lcm = lcm(denominator_lcm, value.denominator)
    scaled = {v: int(r * denominator_lcm) for v, r in ratio.items()}
    common = 0
    for value in scaled.values():
        common = gcd(common, value)
    return {v: value // common for v, value in scaled.items()}


def lcm(a: int, b: int) -> int:
    return a * b // gcd(a, b)


def steady_state_token_counts(graph: FlatGraph,
                              reps: dict[Vertex, int]) -> dict[str, int]:
    """Tokens crossing each channel during one steady-state iteration."""
    counts: dict[str, int] = {}
    for channel in graph.channels:
        produced = reps[channel.src] * channel.src.push_rate(channel.src_port)
        consumed = reps[channel.dst] * channel.dst.pop_rate(channel.dst_port)
        if produced != consumed:  # pragma: no cover - guarded by solver
            raise RateError(
                f"channel {channel.name} is unbalanced: {produced} produced "
                f"vs {consumed} consumed")
        counts[channel.name] = produced
    return counts
