"""Initialization and steady-state schedules.

The *init schedule* fires vertices enough times that (a) every ``prework``
has run and (b) every peeking filter's input channel holds at least
``peek - pop`` leftover tokens, so that the steady state is truly periodic —
a precondition for LaminarIR's compile-time unrolling of one iteration.

The *steady schedule* is a concrete firing sequence realizing the repetition
vector.  Both schedules are produced by demand-driven simulation, which also
yields exact FIFO buffer bounds for the baseline backend and verifies the
periodicity invariant (post-iteration channel occupancy equals
pre-iteration occupancy).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults import limits as faults_limits
from repro.faults.limits import ResourceExhausted
from repro.frontend.errors import ScheduleError
from repro.graph.nodes import (Channel, FilterVertex, FlatGraph, Vertex)
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.scheduling.balance import repetition_vector

_FIXPOINT_LIMIT = 1000


@dataclass(frozen=True)
class Firing:
    """One execution of a vertex; ``prework`` marks a prework invocation."""

    vertex: Vertex
    prework: bool = False


@dataclass
class Schedule:
    """The complete schedule of a flat graph."""

    graph: FlatGraph
    reps: dict[Vertex, int]
    init: list[Firing]
    steady: list[Firing]
    # Channel occupancy right after the init schedule (= at the start of
    # every steady iteration).
    post_init_tokens: dict[str, int]
    # Peak occupancy per channel over init + steady execution; the FIFO
    # backend sizes its circular buffers from this.
    buffer_bounds: dict[str, int] = field(default_factory=dict)

    @property
    def steady_length(self) -> int:
        return len(self.steady)


def _rates(vertex: Vertex, prework: bool) -> tuple[list[int], list[int], int]:
    """(pop per input port, push per output port, peek extra) of one firing."""
    if isinstance(vertex, FilterVertex) and prework:
        rates = vertex.filter.prework
        assert rates is not None
        pops = [rates.pop] if vertex.inputs else []
        pushes = [rates.push] if vertex.outputs else []
        peek = rates.peek
        return pops, pushes, peek
    if isinstance(vertex, FilterVertex):
        rates = vertex.filter.work
        pops = [rates.pop] if vertex.inputs else []
        pushes = [rates.push] if vertex.outputs else []
        return pops, pushes, rates.peek
    pops = [vertex.pop_rate(i) for i in range(len(vertex.inputs))]
    pushes = [vertex.push_rate(i) for i in range(len(vertex.outputs))]
    return pops, pushes, max(pops) if pops else 0


class _Simulator:
    """Tracks channel occupancy while a schedule is being constructed."""

    def __init__(self, graph: FlatGraph):
        self.graph = graph
        self.tokens: dict[str, int] = {
            ch.name: len(ch.initial) for ch in graph.channels}
        self.peak: dict[str, int] = dict(self.tokens)
        self.fired: dict[Vertex, int] = {v: 0 for v in graph.vertices}

    def can_fire(self, vertex: Vertex, prework: bool) -> bool:
        pops, _pushes, peek = _rates(vertex, prework)
        for port, channel in enumerate(vertex.inputs):
            assert channel is not None
            need = peek if isinstance(vertex, FilterVertex) else pops[port]
            if self.tokens[channel.name] < need:
                return False
        return True

    def fire(self, vertex: Vertex, prework: bool) -> None:
        pops, pushes, _peek = _rates(vertex, prework)
        for port, channel in enumerate(vertex.inputs):
            assert channel is not None
            self.tokens[channel.name] -= pops[port]
            if self.tokens[channel.name] < 0:  # pragma: no cover
                raise ScheduleError(
                    f"negative occupancy on {channel.name} firing "
                    f"{vertex.name}")
        for port, channel in enumerate(vertex.outputs):
            assert channel is not None
            self.tokens[channel.name] += pushes[port]
            if self.tokens[channel.name] > self.peak[channel.name]:
                self.peak[channel.name] = self.tokens[channel.name]
        self.fired[vertex] += 1

    def next_is_prework(self, vertex: Vertex) -> bool:
        return (isinstance(vertex, FilterVertex) and vertex.has_prework
                and self.fired[vertex] == 0)


def _check_steady_tokens(graph: FlatGraph, reps: dict[Vertex, int],
                         cap: int | None) -> None:
    """Enforce ``max_steady_tokens_per_channel`` before any unrolling.

    This is the earliest point where the per-iteration traffic is known
    exactly: LaminarIR names every steady token individually, so a
    channel moving millions of tokens per iteration would explode the
    unroll long before the op limit triggers.
    """
    if cap is None:
        return
    for channel in graph.channels:
        produced = reps[channel.src] * channel.src.push_rate(
            channel.src_port)
        if produced > cap:
            raise ResourceExhausted(
                "max_steady_tokens_per_channel", cap, produced,
                where=f"channel {channel.name} ({channel.src.name} -> "
                      f"{channel.dst.name})")


def _init_counts(graph: FlatGraph, order: list[Vertex],
                 max_passes: int | None = None) -> dict[Vertex, int]:
    """How many times each vertex fires during initialization.

    Demand-driven fixpoint over reverse topological order.  ``extra(v)``
    is the peek surplus a vertex needs on its inputs before every steady
    firing; prework vertices must fire at least once during init so the
    steady state is uniform.
    """
    counts: dict[Vertex, int] = {}
    for vertex in graph.vertices:
        needs_prework = (isinstance(vertex, FilterVertex)
                         and vertex.has_prework)
        counts[vertex] = 1 if needs_prework else 0

    def consumed_by(vertex: Vertex, firings: int, channel: Channel) -> int:
        """Tokens consumed from ``channel`` by the first ``firings`` firings
        of ``vertex`` plus the peek surplus for the following steady firing."""
        port = channel.dst_port
        total = 0
        remaining = firings
        if isinstance(vertex, FilterVertex):
            prework = vertex.filter.prework
            if vertex.has_prework and remaining > 0:
                assert prework is not None
                total += prework.pop
                remaining -= 1
            total += remaining * vertex.filter.work.pop
            total += max(0,
                         vertex.filter.work.peek - vertex.filter.work.pop)
            if vertex.has_prework and firings > 0:
                # The prework firing itself must see its full peek
                # window, which the steady-rate arithmetic above does
                # not account for when prework rates differ from work
                # rates (e.g. `prework peek 3 pop 0`).
                assert prework is not None
                total = max(total, prework.peek)
        else:
            total += remaining * vertex.pop_rate(port)
        return total

    def produced_by(vertex: Vertex, firings: int, channel: Channel) -> int:
        port = channel.src_port
        total = 0
        remaining = firings
        if isinstance(vertex, FilterVertex):
            if vertex.has_prework and remaining > 0:
                assert vertex.filter.prework is not None
                total += vertex.filter.prework.push
                remaining -= 1
            total += remaining * vertex.filter.work.push
        else:
            total += remaining * vertex.push_rate(port)
        return total

    def firings_to_produce(vertex: Vertex, needed: int,
                           channel: Channel) -> int:
        firings = 0
        produced = produced_by(vertex, firings, channel)
        while produced < needed:
            firings += 1
            now = produced_by(vertex, firings, channel)
            if now == produced and firings > 1:
                # Past any prework firing the producer adds nothing per
                # firing (a zero-rate port): the demand can never be met.
                raise ScheduleError(
                    f"init schedule needs {needed} token(s) on "
                    f"{channel.name} but {vertex.name} produces none")
            produced = now
            if firings > 1_000_000:  # pragma: no cover
                raise ScheduleError(
                    f"init demand on {vertex.name} diverges")
        return firings

    limit = max_passes if max_passes is not None else _FIXPOINT_LIMIT
    for _ in range(limit):
        faults_limits.check_deadline("init schedule fixpoint")
        changed = False
        for vertex in reversed(order):
            for channel in vertex.inputs:
                assert channel is not None
                need = consumed_by(vertex, counts[vertex], channel)
                need -= len(channel.initial)
                if need <= 0:
                    continue
                src = channel.src
                required = firings_to_produce(src, need, channel)
                if required > counts[src]:
                    counts[src] = required
                    changed = True
        if not changed:
            return counts
    if max_passes is not None:
        raise ResourceExhausted(
            "max_solver_iterations", limit, limit + 1,
            where="init schedule demand fixpoint")
    raise ScheduleError("initialization demands did not converge "
                        f"after {limit} passes (deadlock?)")


def _sequence(sim: _Simulator, order: list[Vertex],
              remaining: dict[Vertex, int], what: str) -> list[Firing]:
    """Emit a firing sequence realizing ``remaining`` firings per vertex."""
    firings: list[Firing] = []
    total = sum(remaining.values())
    while total > 0:
        faults_limits.check_deadline(f"{what} schedule construction")
        progressed = False
        for vertex in order:
            while remaining[vertex] > 0:
                prework = sim.next_is_prework(vertex)
                if not sim.can_fire(vertex, prework):
                    break
                sim.fire(vertex, prework)
                firings.append(Firing(vertex, prework))
                remaining[vertex] -= 1
                total -= 1
                progressed = True
        if not progressed:
            stuck = [v.name for v, n in remaining.items() if n > 0]
            raise ScheduleError(
                f"{what} schedule deadlocked; blocked vertices: "
                + ", ".join(stuck))
    return firings


def build_schedule(graph: FlatGraph) -> Schedule:
    """Compute the init and steady schedules of ``graph``."""
    limits = faults_limits.active_limits()
    with trace.span("schedule", graph=graph.name) as span:
        with trace.span("schedule.repetition_vector"):
            reps = repetition_vector(
                graph, max_iterations=limits.max_solver_iterations)
        _check_steady_tokens(graph, reps,
                             limits.max_steady_tokens_per_channel)
        order = graph.topological_order()
        sim = _Simulator(graph)

        with trace.span("schedule.init"):
            init_counts = _init_counts(
                graph, order, max_passes=limits.max_solver_iterations)
            init = _sequence(sim, order, dict(init_counts), "init")
        post_init = dict(sim.tokens)

        with trace.span("schedule.steady"):
            steady = _sequence(sim, order, dict(reps), "steady")
            if sim.tokens != post_init:
                raise ScheduleError(
                    "steady iteration did not restore channel occupancy: "
                    f"{post_init} -> {sim.tokens}")

            # One more iteration to capture peak occupancy in the
            # periodic regime.
            _sequence(sim, order, dict(reps), "steady")
        span.annotate(init_firings=len(init), steady_firings=len(steady))

    obs_metrics.gauge("schedule.init_firings").set(len(init))
    obs_metrics.gauge("schedule.steady_firings").set(len(steady))
    obs_metrics.gauge("schedule.reps_total").set(sum(reps.values()))
    obs_metrics.gauge("schedule.vertices").set(len(graph.vertices))
    obs_metrics.gauge("schedule.channels").set(len(graph.channels))
    obs_metrics.gauge("schedule.buffer_bound_total").set(
        sum(sim.peak.values()))
    return Schedule(graph=graph, reps=reps, init=init, steady=steady,
                    post_init_tokens=post_init, buffer_bounds=dict(sim.peak))
