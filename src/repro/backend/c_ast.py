"""AST → C translation for the FIFO baseline backend.

Translates one filter instance's bodies (init, work, prework, helpers) to
C, preserving the run-time control flow — loops stay loops, exactly as the
StreamIt compiler emits them.  Parameters are substituted as literals
(instances are specialized), fields become prefixed statics, and token
operations become calls to the per-channel FIFO accessors supplied by the
graph-level generator.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import LoweringError
from repro.frontend.types import BOOLEAN, FLOAT, INT, ScalarType
from repro.graph.nodes import FilterNode
from repro.backend.common import (INTRINSIC_C_NAMES, c_float_literal,
                                  c_int_literal, c_type)


class CAstPrinter:
    """Prints one filter instance's statements/expressions as C."""

    def __init__(self, node: FilterNode, prefix: str,
                 push_fn: str | None, pop_fn: str | None,
                 peek_fn: str | None, source: str = ""):
        self.node = node
        self.prefix = prefix
        self.push_fn = push_fn
        self.pop_fn = pop_fn
        self.peek_fn = peek_fn
        self.source = source
        self.helpers = {h.name for h in node.decl.helpers}
        self.fields = set(node.field_types)
        self._scopes: list[set[str]] = []

    # -- scope tracking ------------------------------------------------------

    def _push_scope(self) -> None:
        self._scopes.append(set())

    def _pop_scope(self) -> None:
        self._scopes.pop()

    def _define_local(self, name: str) -> None:
        self._scopes[-1].add(name)

    def _is_local(self, name: str) -> bool:
        return any(name in scope for scope in self._scopes)

    # -- naming ---------------------------------------------------------------

    def field_name(self, name: str) -> str:
        return f"{self.prefix}_{name}"

    def _ident(self, name: str, loc) -> str:
        if self._is_local(name):
            return f"l_{name}"
        if name in self.fields:
            return self.field_name(name)
        if name in self.node.env:
            return _value_literal(self.node.env[name])
        raise LoweringError(f"unknown identifier {name!r} in C backend",
                            loc, self.source)

    # -- statements --------------------------------------------------------------

    def block(self, block: ast.Block, indent: int) -> list[str]:
        pad = "    " * indent
        self._push_scope()
        lines = [pad + "{"]
        for stmt in block.stmts:
            lines.extend(self.stmt(stmt, indent + 1))
        lines.append(pad + "}")
        self._pop_scope()
        return lines

    def stmt(self, stmt: ast.Stmt, indent: int) -> list[str]:
        pad = "    " * indent
        if isinstance(stmt, ast.Block):
            if not stmt.stmts:
                return []
            return self.block(stmt, indent)
        if isinstance(stmt, ast.VarDecl):
            return [pad + self._var_decl(stmt)]
        if isinstance(stmt, ast.Assign):
            assert stmt.target is not None and stmt.value is not None
            target = self.expr(stmt.target)
            value = self.expr(stmt.value)
            return [pad + f"{target} {stmt.op} {value};"]
        if isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            return [pad + self.expr(stmt.expr) + ";"]
        if isinstance(stmt, ast.PushStmt):
            assert stmt.value is not None and self.push_fn is not None
            return [pad + f"{self.push_fn}({self.expr(stmt.value)});"]
        if isinstance(stmt, ast.PrintStmt):
            assert stmt.value is not None
            ty = stmt.value.ty or FLOAT
            fn = "repro_print_i32" if ty in (INT, BOOLEAN) \
                else "repro_print_f64"
            return [pad + f"{fn}({self.expr(stmt.value)});"]
        if isinstance(stmt, ast.IfStmt):
            return self._if_stmt(stmt, indent)
        if isinstance(stmt, ast.ForStmt):
            return self._for_stmt(stmt, indent)
        if isinstance(stmt, ast.WhileStmt):
            assert stmt.cond is not None and stmt.body is not None
            lines = [pad + f"while ({self.expr(stmt.cond)})"]
            lines.extend(self._body(stmt.body, indent))
            return lines
        if isinstance(stmt, ast.DoWhileStmt):
            assert stmt.cond is not None and stmt.body is not None
            lines = [pad + "do"]
            lines.extend(self._body(stmt.body, indent))
            lines.append(pad + f"while ({self.expr(stmt.cond)});")
            return lines
        if isinstance(stmt, ast.ReturnStmt):
            if stmt.value is None:
                return [pad + "return;"]
            return [pad + f"return {self.expr(stmt.value)};"]
        if isinstance(stmt, ast.BreakStmt):
            return [pad + "break;"]
        if isinstance(stmt, ast.ContinueStmt):
            return [pad + "continue;"]
        raise LoweringError(f"cannot translate {type(stmt).__name__} to C",
                            stmt.loc, self.source)

    def _body(self, stmt: ast.Stmt, indent: int) -> list[str]:
        """A loop/if body: always print as a braced block."""
        if isinstance(stmt, ast.Block):
            return self.block(stmt, indent)
        self._push_scope()
        pad = "    " * indent
        lines = [pad + "{"] + self.stmt(stmt, indent + 1) + [pad + "}"]
        self._pop_scope()
        return lines

    def _var_decl(self, stmt: ast.VarDecl) -> str:
        assert isinstance(stmt.var_type, ScalarType)
        base = c_type(stmt.var_type)
        self._define_local(stmt.name)
        if stmt.dims:
            dims = "".join(f"[{self.expr(d)}]" for d in stmt.dims)
            return f"{base} l_{stmt.name}{dims} = {{0}};"
        if stmt.init is not None:
            return f"{base} l_{stmt.name} = {self.expr(stmt.init)};"
        return f"{base} l_{stmt.name} = 0;"

    def _if_stmt(self, stmt: ast.IfStmt, indent: int) -> list[str]:
        assert stmt.cond is not None and stmt.then is not None
        pad = "    " * indent
        lines = [pad + f"if ({self.expr(stmt.cond)})"]
        lines.extend(self._body(stmt.then, indent))
        if stmt.otherwise is not None:
            lines.append(pad + "else")
            lines.extend(self._body(stmt.otherwise, indent))
        return lines

    def _for_stmt(self, stmt: ast.ForStmt, indent: int) -> list[str]:
        pad = "    " * indent
        self._push_scope()
        init = ""
        if stmt.init is not None:
            if isinstance(stmt.init, ast.VarDecl):
                init = self._var_decl(stmt.init).rstrip(";")
            elif isinstance(stmt.init, ast.Assign):
                assert stmt.init.target is not None
                assert stmt.init.value is not None
                init = (f"{self.expr(stmt.init.target)} {stmt.init.op} "
                        f"{self.expr(stmt.init.value)}")
            else:
                raise LoweringError("unsupported for-init", stmt.loc,
                                    self.source)
        cond = self.expr(stmt.cond) if stmt.cond is not None else ""
        step = ""
        if stmt.step is not None:
            if isinstance(stmt.step, ast.Assign):
                assert stmt.step.target is not None
                assert stmt.step.value is not None
                step = (f"{self.expr(stmt.step.target)} {stmt.step.op} "
                        f"{self.expr(stmt.step.value)}")
            elif isinstance(stmt.step, ast.ExprStmt):
                assert stmt.step.expr is not None
                step = self.expr(stmt.step.expr)
            else:
                raise LoweringError("unsupported for-step", stmt.loc,
                                    self.source)
        assert stmt.body is not None
        lines = [pad + f"for ({init}; {cond}; {step})"]
        lines.extend(self._body(stmt.body, indent))
        self._pop_scope()
        return lines

    # -- expressions ----------------------------------------------------------------

    def expr(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.IntLit):
            return c_int_literal(expr.value)
        if isinstance(expr, ast.FloatLit):
            return c_float_literal(expr.value)
        if isinstance(expr, ast.BoolLit):
            return "1" if expr.value else "0"
        if isinstance(expr, ast.Ident):
            return self._ident(expr.name, expr.loc)
        if isinstance(expr, ast.UnaryOp):
            assert expr.operand is not None
            return f"({expr.op}{self.expr(expr.operand)})"
        if isinstance(expr, ast.BinaryOp):
            assert expr.left is not None and expr.right is not None
            if expr.op in ("/", "%") and (expr.ty or FLOAT) == INT:
                fn = "repro_div_i32" if expr.op == "/" else "repro_mod_i32"
                return (f"{fn}({self.expr(expr.left)}, "
                        f"{self.expr(expr.right)})")
            return (f"({self.expr(expr.left)} {expr.op} "
                    f"{self.expr(expr.right)})")
        if isinstance(expr, ast.TernaryOp):
            assert expr.cond and expr.then and expr.otherwise
            return (f"({self.expr(expr.cond)} ? {self.expr(expr.then)} : "
                    f"{self.expr(expr.otherwise)})")
        if isinstance(expr, ast.Cast):
            assert expr.target is not None and expr.operand is not None
            assert isinstance(expr.target, ScalarType)
            return f"(({c_type(expr.target)}){self.expr(expr.operand)})"
        if isinstance(expr, ast.Call):
            return self._call(expr)
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            return f"{self.expr(expr.base)}[{self.expr(expr.index)}]"
        if isinstance(expr, ast.PeekExpr):
            assert expr.offset is not None and self.peek_fn is not None
            return f"{self.peek_fn}({self.expr(expr.offset)})"
        if isinstance(expr, ast.PopExpr):
            assert self.pop_fn is not None
            return f"{self.pop_fn}()"
        raise LoweringError(f"cannot translate {type(expr).__name__} to C",
                            expr.loc, self.source)

    def _call(self, expr: ast.Call) -> str:
        args = ", ".join(self.expr(a) for a in expr.args)
        if expr.name in self.helpers:
            return f"{self.prefix}_{expr.name}({args})"
        if expr.name in ("abs", "min", "max"):
            arg_ty = expr.args[0].ty or FLOAT
            suffix = "i32" if arg_ty == INT \
                and all((a.ty or FLOAT) == INT for a in expr.args) \
                else "f64"
            if suffix == "f64":
                args = ", ".join(f"(f64)({self.expr(a)})"
                                 for a in expr.args)
            if expr.name == "abs" and suffix == "f64":
                return f"fabs({args})"
            return f"repro_{expr.name}_{suffix}({args})"
        c_name = INTRINSIC_C_NAMES.get(expr.name)
        if c_name is None:
            raise LoweringError(f"no C intrinsic for {expr.name!r}",
                                expr.loc, self.source)
        if expr.name not in ("randf", "randi"):
            args = ", ".join(f"(f64)({self.expr(a)})" for a in expr.args)
        return f"{c_name}({args})"


def _value_literal(value: object) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return c_int_literal(value)
    if isinstance(value, float):
        return c_float_literal(value)
    raise TypeError(f"unsupported parameter literal {value!r}")


def helper_function(printer: CAstPrinter, helper: ast.HelperFunc) -> str:
    """Emit one helper as a static C function."""
    assert helper.body is not None
    return_ty = "void"
    if helper.return_type is not None \
            and isinstance(helper.return_type, ScalarType) \
            and helper.return_type.name != "void":
        return_ty = c_type(helper.return_type)
    params = []
    printer._push_scope()
    for param in helper.params:
        assert isinstance(param.ty, ScalarType)
        printer._define_local(param.name)
        params.append(f"{c_type(param.ty)} l_{param.name}")
    signature = (f"static {return_ty} {printer.prefix}_{helper.name}"
                 f"({', '.join(params) or 'void'})")
    lines = [signature] + printer.block(helper.body, 0)
    printer._pop_scope()
    return "\n".join(lines)
