"""Shared pieces of both C backends.

Contains the C runtime prelude (deterministic RNG, print/checksum/timing
harness, math helpers) and small utilities for type mapping and naming.

The generated programs take two arguments::

    ./prog <iterations> print   # print every output (correctness mode)
    ./prog <iterations> time    # run silently, print checksum + seconds

``int`` maps to ``int32_t`` and ``float`` to ``double``, and the RNG is
the same xorshift32 as :class:`repro.frontend.intrinsics.XorShift32`, so
native output streams are bit-identical to the Python interpreters.
"""

from __future__ import annotations

import hashlib
import struct

from repro.frontend.types import BOOLEAN, FLOAT, INT, ScalarType


def runtime_digest() -> str:
    """sha256 (truncated) over every shared C runtime snippet.

    Part of each backend's codegen fingerprint (see
    ``codegen_fingerprint`` in :mod:`repro.backend.laminar_c` /
    :mod:`repro.backend.fifo_c`): editing the prelude, the main harness
    or the profile/heartbeat runtime changes the digest and therefore
    invalidates every cached artifact built from the old runtime.
    """
    payload = "\n".join((C_PRELUDE, C_MAIN, C_MAIN_PROFILE,
                         str(C_PROFILE_BUCKETS), C_HEARTBEAT_RUNTIME))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:12]

C_PRELUDE = r"""
#include <stdio.h>
#include <stdlib.h>
#include <stdint.h>
#include <string.h>
#include <math.h>
#include <time.h>

typedef int32_t i32;
typedef double f64;

static uint32_t repro_rng_state = 0x12345678u;

static inline uint32_t repro_rng_next(void) {
    uint32_t x = repro_rng_state;
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    repro_rng_state = x;
    return x;
}

static inline f64 repro_randf(void) {
    return (f64)(repro_rng_next() >> 8) / 16777216.0;
}

static inline void repro_runtime_error(const char *message) {
    fprintf(stderr, "runtime error: %s\n", message);
    exit(4);
}

static inline i32 repro_randi(i32 bound) {
    if (bound == 0) repro_runtime_error("randi bound must be non-zero");
    return (i32)(repro_rng_next() % (uint32_t)bound);
}

/* Truncating i32 division/modulo with the interpreters' wrap-around
   semantics: INT_MIN / -1 wraps instead of trapping (the `idiv`
   overflow that -fwrapv does NOT paper over), and dividing by zero is
   a defined runtime error rather than a SIGFPE. */
static inline i32 repro_div_i32(i32 a, i32 b) {
    if (b == 0) repro_runtime_error("division by zero in '/'");
    if (b == -1) return (i32)(0u - (uint32_t)a);
    return a / b;
}

static inline i32 repro_mod_i32(i32 a, i32 b) {
    if (b == 0) repro_runtime_error("division by zero in '%'");
    if (b == -1) return 0;
    return a % b;
}

static inline f64 repro_round(f64 x) { return floor(x + 0.5); }
static inline f64 repro_min_f64(f64 a, f64 b) { return a < b ? a : b; }
static inline f64 repro_max_f64(f64 a, f64 b) { return a > b ? a : b; }
static inline i32 repro_min_i32(i32 a, i32 b) { return a < b ? a : b; }
static inline i32 repro_max_i32(i32 a, i32 b) { return a > b ? a : b; }
static inline i32 repro_abs_i32(i32 a) { return a < 0 ? -a : a; }

static int repro_print_mode = 0;
static uint64_t repro_checksum = 1469598103934665603ull; /* FNV offset */
static uint64_t repro_output_count = 0;

static inline void repro_hash_u64(uint64_t bits) {
    repro_checksum ^= bits;
    repro_checksum *= 1099511628211ull; /* FNV prime */
}

static inline void repro_print_f64(f64 value) {
    union { f64 d; uint64_t u; } pun;
    pun.d = value;
    repro_hash_u64(pun.u);
    repro_output_count++;
    if (repro_print_mode) {
        printf("%.17g\n", value);
    }
}

static inline void repro_print_i32(i32 value) {
    repro_hash_u64((uint64_t)(uint32_t)value);
    repro_output_count++;
    if (repro_print_mode) {
        printf("%d\n", (int)value);
    }
}

static inline double repro_now(void) {
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}
"""

C_MAIN = r"""
int main(int argc, char **argv) {
    long long iterations = 1;
    if (argc > 1) {
        iterations = atoll(argv[1]);
    }
    if (argc > 2 && strcmp(argv[2], "print") == 0) {
        repro_print_mode = 1;
    }
    repro_setup();
    repro_init_schedule();
    double start = repro_now();
    for (long long it = 0; it < iterations; it++) {
        repro_steady();
    }
    double elapsed = repro_now() - start;
    fprintf(stderr, "checksum %016llx\n",
            (unsigned long long)repro_checksum);
    fprintf(stderr, "outputs %llu\n",
            (unsigned long long)repro_output_count);
    fprintf(stderr, "seconds %.9f\n", elapsed);
    return 0;
}
"""

# The profile-build main: identical protocol, plus the heartbeat side
# channel (dormant unless REPRO_HEARTBEAT_MS is set in the environment).
# A final heartbeat fires after the loop, so REPRO_HEARTBEAT_MS=0 yields
# exactly iterations+1 beats — deterministic for tests.
C_MAIN_PROFILE = r"""
int main(int argc, char **argv) {
    long long iterations = 1;
    if (argc > 1) {
        iterations = atoll(argv[1]);
    }
    if (argc > 2 && strcmp(argv[2], "print") == 0) {
        repro_print_mode = 1;
    }
    repro_hb_init();
    repro_setup();
    repro_init_schedule();
    double start = repro_now();
    repro_hb_last = start;
    for (long long it = 0; it < iterations; it++) {
        repro_steady();
        repro_hb_maybe(it + 1, start);
    }
    if (repro_hb_interval_ms >= 0) {
        repro_hb_emit(iterations, start);
    }
    double elapsed = repro_now() - start;
    fprintf(stderr, "checksum %016llx\n",
            (unsigned long long)repro_checksum);
    fprintf(stderr, "outputs %llu\n",
            (unsigned long long)repro_output_count);
    fprintf(stderr, "seconds %.9f\n", elapsed);
    return 0;
}
"""


def c_main(profile: bool = False) -> str:
    """The main() for a generated program.

    ``profile=False`` returns :data:`C_MAIN` verbatim — uninstrumented
    output stays byte-identical to what the backends always produced.
    ``profile=True`` returns the heartbeat-capable main (the heartbeat
    runtime itself lives in :func:`c_profile_runtime`).
    """
    return C_MAIN_PROFILE if profile else C_MAIN


C_PROFILE_BUCKETS = 64

# Live progress side channel, compiled into profile builds only and
# dormant unless REPRO_HEARTBEAT_MS is set (0 = every iteration, N > 0 =
# at most every N milliseconds).  Each beat is one self-contained stderr
# line: iterations done, outputs produced, elapsed ns, and the per-filter
# ns accumulated so far — enough for the host-side watchdog
# (repro.backend.runner) to publish native.heartbeat.* gauges and to name
# the filter a stalled binary was last spending time in.  Uses the
# repro_prof_* tables declared by c_profile_runtime() above it.
C_HEARTBEAT_RUNTIME = r"""
static long long repro_hb_interval_ms = -1;
static double repro_hb_last;

static void repro_hb_init(void) {
    const char *env = getenv("REPRO_HEARTBEAT_MS");
    if (env && *env) {
        repro_hb_interval_ms = atoll(env);
    }
}

static void repro_hb_emit(long long iter, double start) {
    int i;
    double now = repro_now();
    fprintf(stderr, "heartbeat-json {\"iter\":%lld,\"outputs\":%llu,"
            "\"ns\":%.0f,\"filters\":[",
            iter, (unsigned long long)repro_output_count,
            (now - start) * 1e9);
    for (i = 0; i < REPRO_PROF_FILTERS; i++) {
        fprintf(stderr, "%s{\"name\":\"%s\",\"ns\":%.0f}",
                i ? "," : "", repro_prof_names[i], repro_prof_ns[i]);
    }
    fprintf(stderr, "]}\n");
    fflush(stderr);
    repro_hb_last = now;
}

static void repro_hb_maybe(long long iter, double start) {
    double now;
    if (repro_hb_interval_ms < 0) {
        return;
    }
    now = repro_now();
    if (repro_hb_interval_ms == 0 ||
        (now - repro_hb_last) * 1e3 >= (double)repro_hb_interval_ms) {
        repro_hb_emit(iter, start);
    }
}
"""


def _c_json_string(name: str) -> str:
    """A C string literal whose contents are valid inside a JSON string."""
    out = []
    for ch in name:
        if ch in ('"', "\\"):
            out.append("\\\\" + ("\\\"" if ch == '"' else "\\\\"))
        elif ord(ch) < 0x20 or ord(ch) > 0x7E:
            out.append(f"\\\\u{ord(ch):04x}")
        else:
            out.append(ch)
    return '"' + "".join(out) + '"'


def c_profile_runtime(names: list[str]) -> str:
    """The per-filter profiling runtime, enabled by ``profile=True`` codegen.

    Declares one accumulator row per filter (wall-clock nanoseconds, static
    op count, call count) plus a log2-ns histogram of whole steady
    iterations.  A destructor prints everything as a single ``profile-json``
    line on stderr, which :func:`repro.backend.runner.run_binary` parses
    back into :class:`NativeRun.profile`.  The names are emitted
    JSON-escaped so the dump can print them verbatim.

    Also appends :data:`C_HEARTBEAT_RUNTIME` (the ``heartbeat-json``
    side channel), which reads those same accumulator tables.
    """
    count = max(len(names), 1)
    quoted = ",\n    ".join(_c_json_string(n) for n in names) or '""'
    return f"""
#define REPRO_PROFILE 1
#define REPRO_PROF_FILTERS {count}
#define REPRO_PROF_BUCKETS {C_PROFILE_BUCKETS}

static const char *repro_prof_names[REPRO_PROF_FILTERS] = {{
    {quoted}
}};
static double repro_prof_ns[REPRO_PROF_FILTERS];
static unsigned long long repro_prof_ops[REPRO_PROF_FILTERS];
static unsigned long long repro_prof_calls[REPRO_PROF_FILTERS];
static unsigned long long repro_prof_hist[REPRO_PROF_BUCKETS];
static unsigned long long repro_prof_iters = 0;
static double repro_prof_t0;
static double repro_prof_t_iter;

static void repro_prof_note_iter(double seconds) {{
    double ns = seconds * 1e9;
    int bucket = 0;
    while (bucket < REPRO_PROF_BUCKETS - 1 && ns >= 2.0) {{
        ns *= 0.5;
        bucket++;
    }}
    repro_prof_hist[bucket]++;
    repro_prof_iters++;
}}

__attribute__((destructor))
static void repro_prof_dump(void) {{
    int i;
    fprintf(stderr, "profile-json {{\\"iterations\\":%llu,\\"filters\\":[",
            repro_prof_iters);
    for (i = 0; i < REPRO_PROF_FILTERS; i++) {{
        fprintf(stderr,
                "%s{{\\"name\\":\\"%s\\",\\"ns\\":%.0f,\\"ops\\":%llu,"
                "\\"calls\\":%llu}}",
                i ? "," : "", repro_prof_names[i], repro_prof_ns[i],
                repro_prof_ops[i], repro_prof_calls[i]);
    }}
    fprintf(stderr, "],\\"hist\\":[");
    for (i = 0; i < REPRO_PROF_BUCKETS; i++) {{
        fprintf(stderr, "%s%llu", i ? "," : "", repro_prof_hist[i]);
    }}
    fprintf(stderr, "]}}\\n");
}}
""" + C_HEARTBEAT_RUNTIME


def c_type(ty: ScalarType) -> str:
    if ty == INT or ty == BOOLEAN:
        return "i32"
    if ty == FLOAT:
        return "f64"
    raise ValueError(f"no C mapping for {ty}")


def c_float_literal(value: float) -> str:
    """A C literal that round-trips the exact double value."""
    if value != value:  # NaN
        return "(0.0/0.0)"
    if value == float("inf"):
        return "(1.0/0.0)"
    if value == float("-inf"):
        return "(-1.0/0.0)"
    text = repr(float(value))
    if "e" not in text and "." not in text and "inf" not in text:
        text += ".0"
    return text


def c_int_literal(value: int) -> str:
    # INT_MIN cannot be written as a plain literal in C.
    if value == -2147483648:
        return "(-2147483647 - 1)"
    return str(value)


def sanitize_ident(name: str) -> str:
    out = "".join(ch if ch.isalnum() else "_" for ch in name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


INTRINSIC_C_NAMES = {
    "sin": "sin", "cos": "cos", "tan": "tan", "asin": "asin",
    "acos": "acos", "atan": "atan", "sinh": "sinh", "cosh": "cosh",
    "tanh": "tanh", "exp": "exp", "log": "log", "log10": "log10",
    "sqrt": "sqrt", "floor": "floor", "ceil": "ceil",
    "round": "repro_round", "atan2": "atan2", "pow": "pow", "fmod": "fmod",
    "randf": "repro_randf", "randi": "repro_randi",
}


def checksum_outputs(outputs: list[object]) -> int:
    """The same FNV-style checksum the C runtime computes over its outputs.

    Floats hash their IEEE-754 bit pattern, ints their 32-bit pattern, so
    a Python interpreter run and a native run of the same program agree
    bit-for-bit.
    """
    acc = 1469598103934665603
    for value in outputs:
        if isinstance(value, bool):
            bits = int(value)
        elif isinstance(value, int):
            bits = value & 0xFFFFFFFF
        else:
            bits = struct.unpack("<Q", struct.pack("<d", float(value)))[0]
        acc ^= bits
        acc = (acc * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return acc
