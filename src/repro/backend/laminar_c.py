"""The LaminarIR C backend.

Emits the lowered program as straight-line C: every token is a local
scalar, state slots are statics, and loop-carried tokens are static
variables updated two-phase at the end of each steady iteration.  This is
the code whose dataflow is fully visible to the downstream C compiler —
the paper's "enabling effect" measured natively in experiment E3.

Temps referenced outside their defining section (possible after state
promotion, e.g. a coefficient computed during setup and used every
iteration) are emitted as statics; everything else is a block-local.
"""

from __future__ import annotations

from repro.backend.common import (C_PRELUDE, INTRINSIC_C_NAMES, c_float_literal,
                                  c_int_literal, c_main, c_profile_runtime,
                                  c_type)
from repro.frontend.types import FLOAT, INT
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, MoveOp, Op,
                           PrintOp, SelectOp, StoreOp, Temp, UnOp, Value)
from repro.lir.program import Program

_SECTION_NAMES = ("repro_setup", "repro_init_schedule", "repro_steady")


class LaminarCBackend:
    def __init__(self, program: Program, profile: bool = False):
        self.program = program
        self.profile = profile
        self.cross_section: set[int] = set()
        self.declared: set[int] = set()
        # Filter name -> row index in the profiling accumulator tables,
        # in first-seen steady order (profile mode only).
        self.prof_index: dict[str, int] = {}

    # -- value naming ---------------------------------------------------------

    def _name(self, temp: Temp) -> str:
        return f"t{temp.id}"

    def _value(self, value: Value) -> str:
        if isinstance(value, Const):
            if value.ty == INT:
                return c_int_literal(value.value)  # type: ignore[arg-type]
            if value.ty == FLOAT:
                return c_float_literal(value.value)  # type: ignore
            return "1" if value.value else "0"
        assert isinstance(value, Temp)
        return self._name(value)

    # -- cross-section analysis --------------------------------------------------

    def _analyze(self) -> None:
        defined_in: dict[int, int] = {}
        for param in self.program.carry_params:
            self.cross_section.add(param.id)
        for section, (_title, ops) in enumerate(self.program.sections()):
            for op in ops:
                if op.result is not None:
                    defined_in[op.result.id] = section

        def check_use(value: Value, section: int) -> None:
            if isinstance(value, Temp) \
                    and defined_in.get(value.id, -1) not in (-1, section):
                self.cross_section.add(value.id)

        for section, (_title, ops) in enumerate(self.program.sections()):
            for op in ops:
                for operand in op.operands():
                    check_use(operand, section)
        for value in self.program.carry_inits:
            check_use(value, 1)  # assigned at the end of init
        for value in self.program.carry_nexts:
            check_use(value, 2)

    # -- generation ------------------------------------------------------------------

    def _steady_runs(self) -> list[tuple[str | None, list[Op]]]:
        """Contiguous runs of steady ops sharing a primary filter.

        The key is ``op.prov[0].filter`` (``None`` for unstamped ops,
        e.g. hand-built programs); each run is timed as one unit so the
        instrumentation cost is amortized over the whole run.
        """
        runs: list[tuple[str | None, list[Op]]] = []
        for op in self.program.steady:
            key = op.prov[0].filter if op.prov else None
            if runs and runs[-1][0] == key:
                runs[-1][1].append(op)
            else:
                runs.append((key, [op]))
        return runs

    def generate(self) -> str:
        self._analyze()
        chunks = [C_PRELUDE]

        steady_runs: list[tuple[str | None, list[Op]]] = []
        if self.profile:
            steady_runs = self._steady_runs()
            for key, _run_ops in steady_runs:
                if key is not None and key not in self.prof_index:
                    self.prof_index[key] = len(self.prof_index)
            chunks.append(c_profile_runtime(list(self.prof_index)))

        for slot in self.program.state_slots:
            ty = c_type(slot.ty)
            if slot.is_array:
                chunks.append(f"static {ty} {slot.name}[{slot.size}];")
            else:
                chunks.append(f"static {ty} {slot.name} = 0;")

        statics = sorted(self.cross_section)
        types: dict[int, str] = {}
        for param in self.program.carry_params:
            types[param.id] = c_type(param.ty)
        for _title, ops in self.program.sections():
            for op in ops:
                if op.result is not None:
                    types[op.result.id] = c_type(op.result.ty)
        for temp_id in statics:
            chunks.append(f"static {types[temp_id]} t{temp_id};")

        for section, (title, ops) in enumerate(self.program.sections()):
            lines = [f"static void {_SECTION_NAMES[section]}(void)", "{"]
            if self.profile and section == 2:
                lines.append("    repro_prof_t_iter = repro_now();")
                for key, run_ops in steady_runs:
                    if key is None:
                        lines.extend("    " + self._op(op)
                                     for op in run_ops)
                        continue
                    # No braces around the run: its temps stay visible
                    # to later runs (cross-run uses are the norm).
                    row = self.prof_index[key]
                    lines.append("    repro_prof_t0 = repro_now();")
                    lines.extend("    " + self._op(op) for op in run_ops)
                    lines.append(f"    repro_prof_ns[{row}] += "
                                 f"(repro_now() - repro_prof_t0) * 1e9;")
                    lines.append(
                        f"    repro_prof_ops[{row}] += {len(run_ops)};")
                    lines.append(f"    repro_prof_calls[{row}]++;")
            else:
                for op in ops:
                    lines.append("    " + self._op(op))
            if section == 1:
                for param, value in zip(self.program.carry_params,
                                        self.program.carry_inits):
                    lines.append(
                        f"    {self._name(param)} = {self._value(value)};")
            if section == 2 and self.program.carry_params:
                lines.append("    /* rotate loop-carried tokens */")
                for index, value in enumerate(self.program.carry_nexts):
                    ty = c_type(self.program.carry_params[index].ty)
                    lines.append(
                        f"    {ty} n{index} = {self._value(value)};")
                for index, param in enumerate(self.program.carry_params):
                    lines.append(f"    {self._name(param)} = n{index};")
            if self.profile and section == 2:
                lines.append("    repro_prof_note_iter("
                             "repro_now() - repro_prof_t_iter);")
            lines.append("}")
            chunks.append("\n".join(lines))

        chunks.append(c_main(self.profile))
        return "\n".join(chunks)

    # -- op translation ----------------------------------------------------------------

    def _define(self, temp: Temp, rhs: str) -> str:
        if temp.id in self.cross_section:
            return f"{self._name(temp)} = {rhs};"
        return f"{c_type(temp.ty)} {self._name(temp)} = {rhs};"

    def _op(self, op: Op) -> str:
        if isinstance(op, BinOp):
            assert op.result is not None
            if op.op in ("/", "%") and op.result.ty == INT:
                fn = "repro_div_i32" if op.op == "/" else "repro_mod_i32"
                rhs = f"{fn}({self._value(op.lhs)}, {self._value(op.rhs)})"
            else:
                rhs = f"{self._value(op.lhs)} {op.op} {self._value(op.rhs)}"
            return self._define(op.result, rhs)
        if isinstance(op, UnOp):
            assert op.result is not None
            return self._define(op.result,
                                f"{op.op}{self._value(op.operand)}")
        if isinstance(op, CastOp):
            assert op.result is not None
            rhs = f"({c_type(op.result.ty)}){self._value(op.operand)}"
            return self._define(op.result, rhs)
        if isinstance(op, SelectOp):
            assert op.result is not None
            rhs = (f"{self._value(op.cond)} ? {self._value(op.then)} : "
                   f"{self._value(op.otherwise)}")
            return self._define(op.result, rhs)
        if isinstance(op, CallOp):
            assert op.result is not None
            return self._define(op.result, self._call(op))
        if isinstance(op, LoadOp):
            assert op.result is not None
            if op.index is None:
                return self._define(op.result, op.slot.name)
            return self._define(
                op.result, f"{op.slot.name}[{self._value(op.index)}]")
        if isinstance(op, StoreOp):
            target = op.slot.name
            if op.index is not None:
                target = f"{target}[{self._value(op.index)}]"
            return f"{target} = {self._value(op.value)};"
        if isinstance(op, MoveOp):
            assert op.result is not None
            return self._define(op.result, self._value(op.src))
        if isinstance(op, PrintOp):
            ty = op.value.ty
            fn = "repro_print_f64" if ty == FLOAT else "repro_print_i32"
            return f"{fn}({self._value(op.value)});"
        raise AssertionError(type(op).__name__)

    def _call(self, op: CallOp) -> str:
        if op.name in ("abs", "min", "max"):
            all_int = all(a.ty == INT for a in op.args)
            if all_int:
                args = ", ".join(self._value(a) for a in op.args)
                return f"repro_{op.name}_i32({args})"
            args = ", ".join(f"(f64){self._value(a)}" for a in op.args)
            if op.name == "abs":
                return f"fabs({args})"
            return f"repro_{op.name}_f64({args})"
        c_name = INTRINSIC_C_NAMES[op.name]
        if op.name in ("randf", "randi"):
            args = ", ".join(self._value(a) for a in op.args)
        else:
            args = ", ".join(f"(f64){self._value(a)}" for a in op.args)
        return f"{c_name}({args})"


# Bump whenever this module changes the C it emits for the *same*
# program: the persistent artifact cache keys on codegen_fingerprint().
CODEGEN_VERSION = 1


def codegen_fingerprint() -> str:
    """Deterministic identity of this code generator.

    Combines the backend's explicit :data:`CODEGEN_VERSION` with a
    digest of the shared C runtime, so both an intentional codegen bump
    and an edit to the common prelude/harness invalidate cached
    artifacts built by older generators.
    """
    from repro.backend.common import runtime_digest
    return f"laminar-c/{CODEGEN_VERSION}+{runtime_digest()}"


def generate_laminar_c(program: Program, profile: bool = False) -> str:
    """Generate the complete LaminarIR C program.

    With ``profile=True`` the steady section is instrumented with
    per-filter wall-clock accumulators and an iteration-latency
    histogram, dumped as a ``profile-json`` stderr line at exit.  With
    ``profile=False`` the output is byte-identical to what this module
    always produced — the instrumentation adds zero ops when disabled.
    """
    return LaminarCBackend(program, profile=profile).generate()
