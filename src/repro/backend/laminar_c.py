"""The LaminarIR C backend.

Emits the lowered program as straight-line C: every token is a local
scalar, state slots are statics, and loop-carried tokens are static
variables updated two-phase at the end of each steady iteration.  This is
the code whose dataflow is fully visible to the downstream C compiler —
the paper's "enabling effect" measured natively in experiment E3.

Temps referenced outside their defining section (possible after state
promotion, e.g. a coefficient computed during setup and used every
iteration) are emitted as statics; everything else is a block-local.
"""

from __future__ import annotations

from repro.backend.common import (C_PRELUDE, INTRINSIC_C_NAMES, c_float_literal,
                                  c_int_literal, c_main, c_profile_runtime,
                                  c_type)
from repro.frontend.types import FLOAT, INT
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, LoopRegion,
                           MoveOp, Op, PrintOp, SelectOp, StoreOp, Temp,
                           UnOp, Value)
from repro.lir.program import Program

_SECTION_NAMES = ("repro_setup", "repro_init_schedule", "repro_steady")


def _expanded_count(ops: list[Op]) -> int:
    """Ops as executed: a loop region counts trips × body ops."""
    return sum(op.trips * len(op.body) if isinstance(op, LoopRegion) else 1
               for op in ops)


class LaminarCBackend:
    def __init__(self, program: Program, profile: bool = False):
        self.program = program
        self.profile = profile
        self.cross_section: set[int] = set()
        self.declared: set[int] = set()
        # Filter name -> row index in the profiling accumulator tables,
        # in first-seen steady order (profile mode only).
        self.prof_index: dict[str, int] = {}
        # slot name -> restrict-qualified local alias, active while a
        # loop-region body is being emitted.
        self._slot_alias: dict[str, str] = {}
        # temp id -> inlined C expression for single-use pure body ops
        # (region emission folds them into their one use site).
        self._inline: dict[int, str] = {}

    # -- value naming ---------------------------------------------------------

    def _name(self, temp: Temp) -> str:
        return f"t{temp.id}"

    def _value(self, value: Value) -> str:
        if isinstance(value, Const):
            if value.ty == INT:
                return c_int_literal(value.value)  # type: ignore[arg-type]
            if value.ty == FLOAT:
                return c_float_literal(value.value)  # type: ignore
            return "1" if value.value else "0"
        assert isinstance(value, Temp)
        inlined = self._inline.get(value.id)
        if inlined is not None:
            return inlined
        return self._name(value)

    # -- cross-section analysis --------------------------------------------------

    def _analyze(self) -> None:
        defined_in: dict[int, int] = {}
        for param in self.program.carry_params:
            self.cross_section.add(param.id)
        for section, (_title, ops) in enumerate(self.program.sections()):
            for op in ops:
                if op.result is not None:
                    defined_in[op.result.id] = section

        def check_use(value: Value, section: int) -> None:
            if isinstance(value, Temp) \
                    and defined_in.get(value.id, -1) not in (-1, section):
                self.cross_section.add(value.id)

        for section, (_title, ops) in enumerate(self.program.sections()):
            for op in ops:
                for operand in op.operands():
                    check_use(operand, section)
        for value in self.program.carry_inits:
            check_use(value, 1)  # assigned at the end of init
        for value in self.program.carry_nexts:
            check_use(value, 2)

    # -- generation ------------------------------------------------------------------

    def _steady_runs(self) -> list[tuple[str | None, list[Op]]]:
        """Contiguous runs of steady ops sharing a primary filter.

        The key is ``op.prov[0].filter`` (``None`` for unstamped ops,
        e.g. hand-built programs); each run is timed as one unit so the
        instrumentation cost is amortized over the whole run.
        """
        runs: list[tuple[str | None, list[Op]]] = []
        for op in self.program.steady:
            key = op.prov[0].filter if op.prov else None
            if runs and runs[-1][0] == key:
                runs[-1][1].append(op)
            else:
                runs.append((key, [op]))
        return runs

    def generate(self) -> str:
        self._analyze()
        chunks = [C_PRELUDE]

        steady_runs: list[tuple[str | None, list[Op]]] = []
        if self.profile:
            steady_runs = self._steady_runs()
            for key, _run_ops in steady_runs:
                if key is not None and key not in self.prof_index:
                    self.prof_index[key] = len(self.prof_index)
            chunks.append(c_profile_runtime(list(self.prof_index)))

        for slot in self.program.state_slots:
            ty = c_type(slot.ty)
            if slot.is_array:
                chunks.append(f"static {ty} {slot.name}[{slot.size}];")
            else:
                chunks.append(f"static {ty} {slot.name} = 0;")

        statics = sorted(self.cross_section)
        types: dict[int, str] = {}
        for param in self.program.carry_params:
            types[param.id] = c_type(param.ty)
        for _title, ops in self.program.sections():
            for op in ops:
                if op.result is not None:
                    types[op.result.id] = c_type(op.result.ty)
        for temp_id in statics:
            chunks.append(f"static {types[temp_id]} t{temp_id};")

        for section, (title, ops) in enumerate(self.program.sections()):
            lines = [f"static void {_SECTION_NAMES[section]}(void)", "{"]
            if self.profile and section == 2:
                lines.append("    repro_prof_t_iter = repro_now();")
                for key, run_ops in steady_runs:
                    if key is None:
                        lines.extend(self._emit_ops(run_ops))
                        continue
                    # No braces around the run: its temps stay visible
                    # to later runs (cross-run uses are the norm).
                    row = self.prof_index[key]
                    lines.append("    repro_prof_t0 = repro_now();")
                    lines.extend(self._emit_ops(run_ops))
                    lines.append(f"    repro_prof_ns[{row}] += "
                                 f"(repro_now() - repro_prof_t0) * 1e9;")
                    # Attribute re-rolled runs by *executed* ops (trips ×
                    # body), so per-filter shares stay comparable with
                    # the fully-unrolled build.
                    lines.append(f"    repro_prof_ops[{row}] += "
                                 f"{_expanded_count(run_ops)};")
                    lines.append(f"    repro_prof_calls[{row}]++;")
            else:
                lines.extend(self._emit_ops(ops))
            if section == 1:
                for param, value in zip(self.program.carry_params,
                                        self.program.carry_inits):
                    lines.append(
                        f"    {self._name(param)} = {self._value(value)};")
            if section == 2 and self.program.carry_params:
                lines.append("    /* rotate loop-carried tokens */")
                for index, value in enumerate(self.program.carry_nexts):
                    ty = c_type(self.program.carry_params[index].ty)
                    lines.append(
                        f"    {ty} n{index} = {self._value(value)};")
                for index, param in enumerate(self.program.carry_params):
                    lines.append(f"    {self._name(param)} = n{index};")
            if self.profile and section == 2:
                lines.append("    repro_prof_note_iter("
                             "repro_now() - repro_prof_t_iter);")
            lines.append("}")
            chunks.append("\n".join(lines))

        chunks.append(c_main(self.profile))
        return "\n".join(chunks)

    # -- op translation ----------------------------------------------------------------

    def _emit_ops(self, ops: list[Op], indent: str = "    ") -> list[str]:
        lines: list[str] = []
        for op in ops:
            if isinstance(op, LoopRegion):
                lines.extend(self._region(op, indent))
            else:
                lines.append(indent + self._op(op))
        return lines

    def _region(self, region: LoopRegion, indent: str) -> list[str]:
        """Emit a re-rolled run as a counted ``for`` loop.

        The body's gather/scatter arrays get ``restrict``-qualified local
        aliases (read-only ones also ``const``) so the C compiler can
        prove the per-trip accesses independent; data-parallel bodies get
        ``#pragma omp simd`` (activated by ``-fopenmp-simd``).
        """
        inner = indent + "    "
        lines = [indent + "{"]
        stored = {slot.name for slot in region.body_slot_stores()}
        aliased: list[str] = []
        for slot in list(region.body_slot_loads()) \
                + list(region.body_slot_stores()):
            if slot.name in self._slot_alias or not slot.is_array:
                continue
            alias = f"rr_{slot.name}"
            qual = "" if slot.name in stored else "const "
            lines.append(f"{inner}{qual}{c_type(slot.ty)} *restrict "
                         f"{alias} = {slot.name};")
            self._slot_alias[slot.name] = alias
            aliased.append(slot.name)
        for param, init in zip(region.carry_params, region.carry_inits):
            lines.append(f"{inner}{c_type(param.ty)} {self._name(param)} "
                         f"= {self._value(init)};")
        if region.parallel:
            lines.append(f"{inner}#pragma omp simd")
        counter = self._name(region.index)
        lines.append(f"{inner}for (i32 {counter} = 0; "
                     f"{counter} < {region.trips}; {counter}++) {{")
        body_indent = inner + "    "
        # Tree-style emission: a pure body op whose result has exactly
        # one body use folds into that use site as a parenthesized
        # expression.  The expression tree (and so FP evaluation order)
        # is unchanged — this only removes single-use temp declarations,
        # which dominate emitted bytes for wide peek-window bodies.
        use_counts: dict[int, int] = {}
        for op in region.body:
            for value in op.operands():
                if isinstance(value, Temp):
                    use_counts[value.id] = use_counts.get(value.id, 0) + 1
        pinned = {value.id for value in region.carry_nexts
                  if isinstance(value, Temp)}
        for op in region.body:
            if op.result is not None \
                    and op.result.id not in pinned \
                    and use_counts.get(op.result.id) == 1 \
                    and self._inlinable(op, stored):
                self._inline[op.result.id] = f"({self._rhs(op)})"
                continue
            lines.append(body_indent + self._op(op))
        if region.carry_params:
            lines.append(body_indent + "/* rotate region carries */")
            for position, value in enumerate(region.carry_nexts):
                ty = c_type(region.carry_params[position].ty)
                lines.append(f"{body_indent}{ty} rn{position} = "
                             f"{self._value(value)};")
            for position, param in enumerate(region.carry_params):
                lines.append(
                    f"{body_indent}{self._name(param)} = rn{position};")
        lines.append(inner + "}")
        for name in aliased:
            del self._slot_alias[name]
        self._inline.clear()
        lines.append(indent + "}")
        return lines

    def _inlinable(self, op: Op, stored_slots: set[str]) -> bool:
        """Safe to fold into the use site: pure, and (for loads) reading
        a slot the body never stores — folding moves evaluation later,
        which must not cross a write to the same memory."""
        if isinstance(op, LoadOp):
            return op.slot.name not in stored_slots
        if isinstance(op, (BinOp, UnOp, CastOp, SelectOp, MoveOp)):
            return True
        if isinstance(op, CallOp):
            return not op.has_side_effect
        return False

    def _slot_ref(self, slot) -> str:
        return self._slot_alias.get(slot.name, slot.name)

    def _define(self, temp: Temp, rhs: str) -> str:
        if temp.id in self.cross_section:
            return f"{self._name(temp)} = {rhs};"
        return f"{c_type(temp.ty)} {self._name(temp)} = {rhs};"

    def _rhs(self, op: Op) -> str:
        """The C expression computing ``op``'s result (ops with results)."""
        if isinstance(op, BinOp):
            assert op.result is not None
            if op.op in ("/", "%") and op.result.ty == INT:
                fn = "repro_div_i32" if op.op == "/" else "repro_mod_i32"
                return f"{fn}({self._value(op.lhs)}, {self._value(op.rhs)})"
            return f"{self._value(op.lhs)} {op.op} {self._value(op.rhs)}"
        if isinstance(op, UnOp):
            return f"{op.op}{self._value(op.operand)}"
        if isinstance(op, CastOp):
            assert op.result is not None
            return f"({c_type(op.result.ty)}){self._value(op.operand)}"
        if isinstance(op, SelectOp):
            return (f"{self._value(op.cond)} ? {self._value(op.then)} : "
                    f"{self._value(op.otherwise)}")
        if isinstance(op, CallOp):
            return self._call(op)
        if isinstance(op, LoadOp):
            if op.index is None:
                return self._slot_ref(op.slot)
            return f"{self._slot_ref(op.slot)}[{self._value(op.index)}]"
        if isinstance(op, MoveOp):
            return self._value(op.src)
        raise AssertionError(type(op).__name__)

    def _op(self, op: Op) -> str:
        if isinstance(op, StoreOp):
            target = self._slot_ref(op.slot)
            if op.index is not None:
                target = f"{target}[{self._value(op.index)}]"
            return f"{target} = {self._value(op.value)};"
        if isinstance(op, PrintOp):
            ty = op.value.ty
            fn = "repro_print_f64" if ty == FLOAT else "repro_print_i32"
            return f"{fn}({self._value(op.value)});"
        assert op.result is not None
        return self._define(op.result, self._rhs(op))

    def _call(self, op: CallOp) -> str:
        if op.name in ("abs", "min", "max"):
            all_int = all(a.ty == INT for a in op.args)
            if all_int:
                args = ", ".join(self._value(a) for a in op.args)
                return f"repro_{op.name}_i32({args})"
            args = ", ".join(f"(f64){self._value(a)}" for a in op.args)
            if op.name == "abs":
                return f"fabs({args})"
            return f"repro_{op.name}_f64({args})"
        c_name = INTRINSIC_C_NAMES[op.name]
        if op.name in ("randf", "randi"):
            args = ", ".join(self._value(a) for a in op.args)
        else:
            args = ", ".join(f"(f64){self._value(a)}" for a in op.args)
        return f"{c_name}({args})"


# Bump whenever this module changes the C it emits for the *same*
# program: the persistent artifact cache keys on codegen_fingerprint().
# 2: loop regions emitted as counted for-loops (restrict aliases,
#    optional ``#pragma omp simd``) instead of fully-unrolled bodies.
CODEGEN_VERSION = 2


def codegen_fingerprint() -> str:
    """Deterministic identity of this code generator.

    Combines the backend's explicit :data:`CODEGEN_VERSION` with a
    digest of the shared C runtime, so both an intentional codegen bump
    and an edit to the common prelude/harness invalidate cached
    artifacts built by older generators.
    """
    from repro.backend.common import runtime_digest
    return f"laminar-c/{CODEGEN_VERSION}+{runtime_digest()}"


def generate_laminar_c(program: Program, profile: bool = False) -> str:
    """Generate the complete LaminarIR C program.

    With ``profile=True`` the steady section is instrumented with
    per-filter wall-clock accumulators and an iteration-latency
    histogram, dumped as a ``profile-json`` stderr line at exit.  With
    ``profile=False`` the output is byte-identical to what this module
    always produced — the instrumentation adds zero ops when disabled.
    """
    return LaminarCBackend(program, profile=profile).generate()
