"""Native harness: compile generated C with the host compiler and run it.

Used by the correctness tests (native output == interpreter output) and by
the host-platform column of the speedup experiment (E3).
"""

from __future__ import annotations

import json
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs import trace

DEFAULT_CFLAGS = ("-O3", "-fwrapv", "-std=gnu11")


class NativeToolchainError(RuntimeError):
    pass


def find_compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path is not None:
            return path
    return None


@dataclass
class NativeRun:
    """Result of one native execution."""

    checksum: int
    output_count: int
    seconds: float
    outputs: list[float | int]  # populated only in print mode
    # Parsed ``profile-json`` side channel: present only when the binary
    # was generated with ``profile=True``.  Shape:
    # {"iterations": int, "filters": [{"name","ns","ops","calls"}...],
    #  "hist": [int, ...]} (log2-ns buckets of whole steady iterations).
    profile: dict | None = None


def compile_c(code: str, workdir: Path | None = None,
              cflags: tuple[str, ...] = DEFAULT_CFLAGS,
              name: str = "prog") -> Path:
    """Compile ``code`` and return the binary path."""
    compiler = find_compiler()
    if compiler is None:
        raise NativeToolchainError("no C compiler found on PATH")
    if workdir is None:
        workdir = Path(tempfile.mkdtemp(prefix="repro_native_"))
    workdir.mkdir(parents=True, exist_ok=True)
    src = workdir / f"{name}.c"
    binary = workdir / name
    src.write_text(code)
    with trace.span("native.compile", name=name, compiler=compiler,
                    flags=" ".join(cflags), code_bytes=len(code)):
        result = subprocess.run(
            [compiler, *cflags, str(src), "-o", str(binary), "-lm"],
            capture_output=True, text=True)
    if result.returncode != 0:
        raise NativeToolchainError(
            f"C compilation failed:\n{result.stderr[:4000]}")
    warnings = result.stderr.count("warning:")
    if warnings:
        obs_metrics.counter("native.compile.warnings").inc(warnings)
    return binary


def run_binary(binary: Path, iterations: int,
               print_outputs: bool = False,
               timeout: float = 300.0) -> NativeRun:
    mode = "print" if print_outputs else "time"
    with trace.span("native.run", name=binary.name, iterations=iterations,
                    mode=mode):
        result = subprocess.run(
            [str(binary), str(iterations), mode],
            capture_output=True, text=True, timeout=timeout)
    if result.returncode != 0:
        raise NativeToolchainError(
            f"native run failed (exit {result.returncode}):\n"
            f"{result.stderr[:2000]}")
    checksum = 0
    count = 0
    seconds = 0.0
    profile: dict | None = None
    for line in result.stderr.splitlines():
        if line.startswith("profile-json "):
            profile = json.loads(line[len("profile-json "):])
            continue
        parts = line.split()
        if len(parts) != 2:
            continue
        if parts[0] == "checksum":
            checksum = int(parts[1], 16)
        elif parts[0] == "outputs":
            count = int(parts[1])
        elif parts[0] == "seconds":
            seconds = float(parts[1])
    outputs: list[float | int] = []
    if print_outputs:
        for line in result.stdout.splitlines():
            text = line.strip()
            if not text:
                continue
            outputs.append(int(text) if _is_int(text) else float(text))
    return NativeRun(checksum=checksum, output_count=count, seconds=seconds,
                     outputs=outputs, profile=profile)


def _is_int(text: str) -> bool:
    if text == "-0":
        # %d never prints "-0"; this is %.17g rendering a negative zero,
        # and parsing it as int 0 would lose the sign bit.
        return False
    if text.startswith("-"):
        text = text[1:]
    return text.isdigit()


def compile_and_run(code: str, iterations: int,
                    print_outputs: bool = False,
                    workdir: Path | None = None,
                    name: str = "prog") -> NativeRun:
    with trace.span("native", name=name):
        binary = compile_c(code, workdir=workdir, name=name)
        return run_binary(binary, iterations, print_outputs=print_outputs)
