"""Native harness: compile generated C with the host compiler and run it.

Used by the correctness tests (native output == interpreter output) and by
the host-platform column of the speedup experiment (E3).

Hardened against a hostile toolchain (see ``docs/ROBUSTNESS.md``):

* both the compile step and the binary run have wall-clock timeouts, and
  a timed-out subprocess is killed together with its whole process group
  (``cc`` forks ``cc1``/``ld``; killing only the leader leaves orphans);
* transient compile failures (spawn errors, a compiler killed by a
  signal) are retried a bounded number of times with exponential
  backoff, while real diagnostics (nonzero exit with errors) fail fast;
* the stderr side-channel (``checksum``/``outputs``/``seconds`` lines)
  is parsed strictly — a missing or duplicated field raises
  :class:`NativeProtocolError` instead of silently defaulting to 0,
  which previously made a crashed-but-exit-0 binary look bit-exact;
* auto-created ``repro_native_*`` temp dirs are deleted on success and
  kept (with the path appended to the diagnostic) on real failures;
  ``keep_artifacts`` / ``REPRO_KEEP_ARTIFACTS`` keeps them always.

Every seam consults the ambient :class:`repro.faults.plan.FaultPlan`, so
fault-injection campaigns exercise these paths deterministically without
a hostile machine.
"""

from __future__ import annotations

import contextvars
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults import plan as fault_plan
from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics
from repro.obs import trace

# -fopenmp-simd activates ``#pragma omp simd`` on re-rolled loop bodies
# without pulling in the OpenMP runtime (gcc and clang both honor it; on
# compilers that ignore it the pragma is inert and the code is still
# correct).
DEFAULT_CFLAGS = ("-O3", "-fwrapv", "-std=gnu11", "-fopenmp-simd")

# Wall-clock budgets per subprocess step.  Compiling one generated
# translation unit takes seconds; a minute-plus compile means a wedged
# toolchain, not a slow one.
DEFAULT_COMPILE_TIMEOUT = 120.0
DEFAULT_RUN_TIMEOUT = 300.0

# Bounded retries for *transient* compile failures (spawn errors, the
# compiler killed by a signal).  Scripted to base * 2**attempt seconds;
# tests shrink the base to keep injected-crash campaigns fast.
TRANSIENT_RETRIES = 2
RETRY_BACKOFF_SECONDS = 0.05


class NativeToolchainError(RuntimeError):
    """Base class for every native-harness failure.

    ``stage`` names the seam, ``injected`` marks failures fabricated by
    the ambient fault plan (their artifacts are not worth keeping), and
    ``artifacts`` carries the kept build directory, when any.
    """

    stage = "native"

    def __init__(self, message: str, *, injected: bool = False,
                 artifacts: str | None = None):
        super().__init__(message)
        self.injected = injected
        self.artifacts = artifacts


class NativeCompileError(NativeToolchainError):
    """The toolchain itself failed: compiler missing, crashed, timed out,
    or rejected the generated C.  Degradable — the interpreter can stand
    in for the native backend (see :mod:`repro.faults.degrade`)."""

    stage = "compile"


class NativeRunError(NativeToolchainError):
    """The generated binary failed: nonzero exit or timeout.  Not
    degradable in differential contexts — a crashing binary is a finding,
    not an environment problem."""

    stage = "run"


class NativeProtocolError(NativeRunError):
    """The binary exited 0 but violated the output protocol (missing,
    duplicated or unparseable ``checksum``/``outputs``/``seconds``
    lines).  Raised instead of defaulting fields to 0, which would make
    a crashed-but-exit-0 binary look like a bit-exact match."""

    stage = "protocol"


class NativeStallError(NativeRunError):
    """The heartbeat watchdog killed a binary that stopped making
    progress: no ``heartbeat-json`` line arrived within the stall
    window.  Fires *before* the hard run timeout, and names the filter
    the binary was last spending time in (from the final heartbeat's
    per-filter accumulators)."""

    stage = "stall"


def find_compiler() -> str | None:
    for candidate in ("cc", "gcc", "clang"):
        path = shutil.which(candidate)
        if path is not None:
            return path
    return None


# compiler path -> fingerprint, so hot cache lookups don't re-exec
# ``cc --version`` per request.
_compiler_fingerprints: dict[str, str] = {}


def compiler_fingerprint() -> str | None:
    """Stable identity of the host toolchain, for artifact cache keys.

    ``<compiler path> <first line of --version>`` — enough that a
    compiler upgrade (or switching cc → clang) changes every cache key
    built with it.  ``None`` when no compiler is on PATH.
    """
    compiler = find_compiler()
    if compiler is None:
        return None
    cached = _compiler_fingerprints.get(compiler)
    if cached is not None:
        return cached
    try:
        result = subprocess.run([compiler, "--version"],
                                capture_output=True, text=True, timeout=30)
        version = result.stdout.splitlines()[0].strip() \
            if result.stdout else "unknown-version"
    except (OSError, subprocess.TimeoutExpired, IndexError):
        version = "unknown-version"
    fingerprint = f"{compiler} {version}"
    _compiler_fingerprints[compiler] = fingerprint
    return fingerprint


# -- artifact lifecycle -------------------------------------------------------

# CLI-installed override for keep-on-success; None defers to the
# REPRO_KEEP_ARTIFACTS environment variable.
_keep_artifacts_override: bool | None = None


def set_keep_artifacts(value: bool | None) -> None:
    """Override the keep-on-success policy (the CLI's ``--keep-artifacts``)."""
    global _keep_artifacts_override
    _keep_artifacts_override = value


def default_keep_artifacts() -> bool:
    if _keep_artifacts_override is not None:
        return _keep_artifacts_override
    return os.environ.get("REPRO_KEEP_ARTIFACTS", "").lower() in (
        "1", "true", "yes", "on")


def _finish_workdir(workdir: Path, owned: bool,
                    error: NativeToolchainError | None,
                    keep: bool) -> str | None:
    """Apply the temp-dir policy; returns the path when it was kept.

    Caller-supplied workdirs are never touched.  Auto-created dirs are
    deleted on success (unless ``keep``), kept on *real* failures so the
    generated C and binary stay available for debugging, and deleted on
    injected failures (there is nothing real to debug).
    """
    if not owned:
        return None
    if error is None:
        if keep:
            obs_metrics.counter("native.artifacts.kept").inc()
            return str(workdir)
        shutil.rmtree(workdir, ignore_errors=True)
        return None
    if keep or not error.injected:
        obs_metrics.counter("native.artifacts.kept").inc()
        return str(workdir)
    shutil.rmtree(workdir, ignore_errors=True)
    return None


def _with_artifacts(error: NativeToolchainError,
                    kept: str | None) -> NativeToolchainError:
    """Re-raiseable copy of ``error`` with the kept-artifacts path logged."""
    if kept is None:
        return error
    fresh = type(error)(f"{error}; build artifacts kept at {kept}",
                        injected=error.injected, artifacts=kept)
    fresh.__cause__ = error.__cause__
    return fresh


# -- subprocess plumbing ------------------------------------------------------

def _run_checked(cmd: list[str],
                 timeout: float) -> subprocess.CompletedProcess:
    """Run ``cmd`` in its own process group; on timeout kill the group.

    ``subprocess.run``'s timeout only kills the direct child — a wedged
    ``cc`` leaves ``cc1``/``ld`` orphans holding the workdir open.
    """
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True,
                            start_new_session=True)
    try:
        stdout, stderr = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        _kill_process_group(proc)
        proc.communicate()
        raise
    return subprocess.CompletedProcess(cmd, proc.returncode, stdout,
                                       stderr)


def _kill_process_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        proc.kill()


@dataclass
class NativeRun:
    """Result of one native execution."""

    checksum: int
    output_count: int
    seconds: float
    outputs: list[float | int]  # populated only in print mode
    # Parsed ``profile-json`` side channel: present only when the binary
    # was generated with ``profile=True``.  Shape:
    # {"iterations": int, "filters": [{"name","ns","ops","calls"}...],
    #  "hist": [int, ...]} (log2-ns buckets of whole steady iterations).
    profile: dict | None = None
    # Parsed ``heartbeat-json`` lines, in arrival order (profile builds
    # run with heartbeat_ms set; empty otherwise).
    heartbeats: list[dict] = field(default_factory=list)


# -- heartbeat side channel ---------------------------------------------------

HEARTBEAT_PREFIX = "heartbeat-json "

# How often the watchdog loop wakes to check the clock (seconds).
_WATCH_POLL = 0.01


def parse_heartbeat(line: str) -> dict | None:
    """Parse one ``heartbeat-json`` stderr line; ``None`` if it isn't one.

    Unparseable heartbeat lines are dropped rather than raised: a killed
    binary can tear its final beat mid-line, and losing one progress
    sample must not fail the run.
    """
    if not line.startswith(HEARTBEAT_PREFIX):
        return None
    try:
        beat = json.loads(line[len(HEARTBEAT_PREFIX):])
    except json.JSONDecodeError:
        return None
    return beat if isinstance(beat, dict) else None


def hot_filter(beat: dict | None) -> str | None:
    """The filter with the most accumulated ns in a heartbeat, if any."""
    if not beat:
        return None
    filters = [entry for entry in beat.get("filters", [])
               if isinstance(entry, dict) and "name" in entry]
    if not filters:
        return None
    return max(filters, key=lambda entry: entry.get("ns", 0))["name"]


class _HeartbeatWatch:
    """Host-side heartbeat state shared with the watchdog loop."""

    def __init__(self, on_heartbeat=None):
        self.last_seen = time.monotonic()
        self.beats = 0
        self.latest: dict | None = None
        self._on_heartbeat = on_heartbeat

    def note_line(self, line: str) -> None:
        beat = parse_heartbeat(line)
        if beat is None:
            return
        self.last_seen = time.monotonic()
        self.beats += 1
        self.latest = beat
        obs_metrics.counter("native.heartbeat.count").inc()
        if "iter" in beat:
            obs_metrics.gauge("native.heartbeat.iterations").set(
                beat["iter"])
        if "outputs" in beat:
            obs_metrics.gauge("native.heartbeat.outputs").set(
                beat["outputs"])
        if "ns" in beat:
            obs_metrics.gauge("native.heartbeat.ns").set(beat["ns"])
        for entry in beat.get("filters", []):
            if isinstance(entry, dict) and "name" in entry:
                obs_metrics.gauge(
                    f"native.heartbeat.filter.{entry['name']}.ns").set(
                    entry.get("ns", 0))
        if self._on_heartbeat is not None:
            self._on_heartbeat(beat)


def _run_watched(cmd: list[str], timeout: float,
                 stall_timeout: float | None,
                 env: dict[str, str] | None,
                 watch: _HeartbeatWatch,
                 stalled_name: str,
                 injected: bool) -> subprocess.CompletedProcess:
    """Run ``cmd`` streaming stderr line-by-line under a stall watchdog.

    Raises ``subprocess.TimeoutExpired`` at the hard deadline and
    :class:`NativeStallError` when no heartbeat arrives within
    ``stall_timeout`` seconds — whichever comes first.  Either way the
    whole process group is killed, never just the leader.
    """
    proc = subprocess.Popen(cmd, stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE, text=True,
                            start_new_session=True, env=env)
    stdout_parts: list[str] = []
    stderr_lines: list[str] = []

    def _drain_stdout() -> None:
        stdout_parts.append(proc.stdout.read())

    def _drain_stderr() -> None:
        for line in proc.stderr:
            stderr_lines.append(line)
            watch.note_line(line.rstrip("\n"))

    # New threads do not inherit contextvars: copy the caller's context
    # so heartbeat gauges published by the stderr reader stay attributed
    # to the serve request (if any) that launched this binary.
    readers = [threading.Thread(target=contextvars.copy_context().run,
                                args=(_drain_stdout,), daemon=True),
               threading.Thread(target=contextvars.copy_context().run,
                                args=(_drain_stderr,), daemon=True)]
    for reader in readers:
        reader.start()

    def _finish() -> None:
        for reader in readers:
            reader.join(timeout=5)
        proc.stdout.close()
        proc.stderr.close()

    started = time.monotonic()
    watch.last_seen = started
    while proc.poll() is None:
        time.sleep(_WATCH_POLL)
        now = time.monotonic()
        if now - started > timeout:
            _kill_process_group(proc)
            proc.wait()
            _finish()
            raise subprocess.TimeoutExpired(cmd, timeout)
        if stall_timeout is not None \
                and now - watch.last_seen > stall_timeout:
            _kill_process_group(proc)
            proc.wait()
            _finish()
            beat = watch.latest or {}
            last_filter = hot_filter(watch.latest)
            obs_metrics.counter("native.stall").inc()
            obs_bus.emit_event(
                "native.stall", binary=stalled_name,
                stall_timeout=stall_timeout, beats=watch.beats,
                last_iter=beat.get("iter"), last_filter=last_filter,
                injected=injected)
            where = f" in filter {last_filter!r}" if last_filter else ""
            raise NativeStallError(
                f"no heartbeat within {stall_timeout:g}s "
                f"(last beat: iteration {beat.get('iter', 'none')}"
                f"{where}, {watch.beats} beat(s) total)"
                + (" (injected bin-hang)" if injected else ""),
                injected=injected)
    _finish()
    return subprocess.CompletedProcess(cmd, proc.returncode,
                                       "".join(stdout_parts),
                                       "".join(stderr_lines))


# A stand-in for a wedged binary (the bin-hang fault site): one valid
# heartbeat, then no progress until the watchdog kills it.
_HANG_SCRIPT = (
    "import sys, time\n"
    "sys.stderr.write('heartbeat-json {\"iter\":1,\"outputs\":0,"
    "\"ns\":1000,\"filters\":[{\"name\":\"injected-hang\",\"ns\":1000}]}"
    "\\n')\n"
    "sys.stderr.flush()\n"
    "time.sleep(600)\n")


def compile_c(code: str, workdir: Path | None = None,
              cflags: tuple[str, ...] = DEFAULT_CFLAGS,
              name: str = "prog",
              timeout: float = DEFAULT_COMPILE_TIMEOUT,
              retries: int = TRANSIENT_RETRIES,
              keep_artifacts: bool | None = None) -> Path:
    """Compile ``code`` and return the binary path.

    Raises :class:`NativeCompileError` on any toolchain failure.  When
    no ``workdir`` is given, the auto-created temp dir is kept on real
    failures (path appended to the diagnostic) and deleted on injected
    ones; success leaves it in place for the caller (``compile_and_run``
    owns the delete-on-success policy).
    """
    plan = fault_plan.current_plan()
    if plan.should_fire("cc-missing"):
        raise NativeCompileError(
            "no C compiler found on PATH (injected cc-missing)",
            injected=True)
    compiler = find_compiler()
    if compiler is None:
        raise NativeCompileError("no C compiler found on PATH")
    keep = keep_artifacts if keep_artifacts is not None \
        else default_keep_artifacts()
    owned = workdir is None
    if owned:
        workdir = Path(tempfile.mkdtemp(prefix="repro_native_"))
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        return _compile_into(code, workdir, compiler, cflags, name,
                             timeout, retries, plan)
    except NativeToolchainError as error:
        kept = _finish_workdir(workdir, owned, error, keep)
        raise _with_artifacts(error, kept) from error.__cause__


def _compile_into(code: str, workdir: Path, compiler: str,
                  cflags: tuple[str, ...], name: str, timeout: float,
                  retries: int, plan: fault_plan.FaultPlan) -> Path:
    src = workdir / f"{name}.c"
    binary = workdir / name
    src.write_text(code)
    cmd = [compiler, *cflags, str(src), "-o", str(binary), "-lm"]
    if plan.should_fire("cc-timeout"):
        raise NativeCompileError(
            f"C compilation timed out after {timeout:g}s "
            "(injected cc-timeout)", injected=True)
    attempts = max(0, retries) + 1
    last_error: NativeCompileError | None = None
    with trace.span("native.compile", name=name, compiler=compiler,
                    flags=" ".join(cflags), code_bytes=len(code)) as span:
        for attempt in range(attempts):
            if attempt:
                obs_metrics.counter("native.compile.retries").inc()
                time.sleep(RETRY_BACKOFF_SECONDS * (2 ** (attempt - 1)))
            if plan.should_fire("cc-crash"):
                result = subprocess.CompletedProcess(
                    cmd, -int(signal.SIGSEGV), "",
                    "injected fault: compiler killed by signal")
                injected = True
            else:
                injected = False
                try:
                    result = _run_checked(cmd, timeout)
                except subprocess.TimeoutExpired:
                    raise NativeCompileError(
                        f"C compilation timed out after "
                        f"{timeout:g}s") from None
                except OSError as error:
                    # Spawn failure (EAGAIN, ENOMEM, ...): transient.
                    last_error = NativeCompileError(
                        f"failed to spawn compiler: {error}")
                    continue
            if result.returncode == 0:
                warnings = result.stderr.count("warning:")
                if warnings:
                    obs_metrics.counter("native.compile.warnings").inc(
                        warnings)
                span.annotate(attempts=attempt + 1)
                return binary
            if result.returncode < 0:
                # Killed by a signal: transient (OOM killer, injected
                # crash); retry with backoff.
                last_error = NativeCompileError(
                    f"compiler killed by signal {-result.returncode}:\n"
                    f"{result.stderr[:2000]}", injected=injected)
                continue
            # A real diagnostic (exit > 0): retrying cannot help.
            raise NativeCompileError(
                f"C compilation failed:\n{result.stderr[:4000]}")
    assert last_error is not None
    raise NativeCompileError(
        f"{last_error} (after {attempts} attempt(s))",
        injected=last_error.injected)


def run_binary(binary: Path, iterations: int,
               print_outputs: bool = False,
               timeout: float = DEFAULT_RUN_TIMEOUT,
               heartbeat_ms: int | None = None,
               stall_timeout: float | None = None,
               on_heartbeat=None) -> NativeRun:
    """Run the compiled binary and strictly parse its output protocol.

    ``heartbeat_ms`` sets ``REPRO_HEARTBEAT_MS`` in the child's
    environment (profile builds then emit ``heartbeat-json`` progress
    lines; 0 = every iteration).  ``stall_timeout`` arms the watchdog:
    when no heartbeat arrives within that many seconds the process group
    is killed and :class:`NativeStallError` raised — *before* the hard
    ``timeout``.  ``on_heartbeat`` receives each parsed beat dict live;
    beats are also published as ``native.heartbeat.*`` gauges and
    collected into :attr:`NativeRun.heartbeats`.
    """
    plan = fault_plan.current_plan()
    mode = "print" if print_outputs else "time"
    cmd = [str(binary), str(iterations), mode]
    streaming = (heartbeat_ms is not None or stall_timeout is not None
                 or on_heartbeat is not None)
    injected = False
    with trace.span("native.run", name=binary.name, iterations=iterations,
                    mode=mode):
        if plan.should_fire("bin-timeout"):
            raise NativeRunError(
                f"native run timed out after {timeout:g}s "
                "(injected bin-timeout)", injected=True)
        hang = plan.should_fire("bin-hang")
        if hang and stall_timeout is None:
            # Without a watchdog a hung binary only dies at the hard
            # timeout; don't make injection campaigns wait for that.
            raise NativeStallError(
                "binary stopped making progress and no heartbeat "
                "watchdog was armed (injected bin-hang)", injected=True)
        if plan.should_fire("bin-nonzero"):
            result = subprocess.CompletedProcess(
                cmd, 1, "", "injected fault: binary exited nonzero")
            injected = True
        elif plan.should_fire("bin-garbage"):
            result = subprocess.CompletedProcess(
                cmd, 0, "not-a-number\n",
                "checksum zzzz\nchecksum 0\noutputs many\nseconds soon\n")
            injected = True
        elif plan.should_fire("malformed-stdout"):
            # Exit 0 with the protocol lines missing — exactly what a
            # crashed-after-exec or truncated binary produces.
            result = subprocess.CompletedProcess(
                cmd, 0, "", "checksum 00000000deadbeef\n")
            injected = True
        elif streaming or hang:
            if hang:
                # Swap in a wedge that emits one beat then goes silent,
                # so the real watchdog path runs end to end.
                cmd = [sys.executable, "-c", _HANG_SCRIPT]
                injected = True
            env = None
            if heartbeat_ms is not None:
                env = {**os.environ,
                       "REPRO_HEARTBEAT_MS": str(heartbeat_ms)}
            watch = _HeartbeatWatch(on_heartbeat)
            try:
                result = _run_watched(cmd, timeout, stall_timeout, env,
                                      watch, binary.name,
                                      injected=injected)
            except subprocess.TimeoutExpired:
                raise NativeRunError(
                    f"native run timed out after {timeout:g}s") from None
        else:
            try:
                result = _run_checked(cmd, timeout)
            except subprocess.TimeoutExpired:
                raise NativeRunError(
                    f"native run timed out after {timeout:g}s") from None
    if result.returncode != 0:
        raise NativeRunError(
            f"native run failed (exit {result.returncode}):\n"
            f"{result.stderr[:2000]}", injected=injected)
    return parse_run_output(result.stdout, result.stderr, print_outputs,
                            injected=injected)


def parse_run_output(stdout: str, stderr: str, print_outputs: bool,
                     injected: bool = False) -> NativeRun:
    """Parse the stderr side channel, rejecting protocol violations.

    Every required field (``checksum``, ``outputs``, ``seconds``) must
    appear exactly once; unknown lines are ignored (compilers and libcs
    chat on stderr), but a missing, duplicated or unparseable field
    raises :class:`NativeProtocolError` — never a silent default of 0.
    """
    seen: dict[str, list[str]] = {"checksum": [], "outputs": [],
                                  "seconds": []}
    profile: dict | None = None
    profile_lines = 0
    heartbeats: list[dict] = []
    for line in stderr.splitlines():
        if line.startswith(HEARTBEAT_PREFIX):
            beat = parse_heartbeat(line)
            if beat is not None:
                heartbeats.append(beat)
            continue
        if line.startswith("profile-json "):
            profile_lines += 1
            try:
                profile = json.loads(line[len("profile-json "):])
            except json.JSONDecodeError as error:
                raise NativeProtocolError(
                    f"unparseable profile-json line: {error}",
                    injected=injected) from None
            continue
        parts = line.split()
        if len(parts) == 2 and parts[0] in seen:
            seen[parts[0]].append(parts[1])
    problems = []
    for key in ("checksum", "outputs", "seconds"):
        count = len(seen[key])
        if count == 0:
            problems.append(f"missing '{key}' line")
        elif count > 1:
            problems.append(f"'{key}' line appears {count} times")
    if profile_lines > 1:
        problems.append(f"profile-json line appears {profile_lines} times")
    if problems:
        excerpt = stderr.strip()[:500] or "<empty>"
        raise NativeProtocolError(
            "native output protocol violated: " + "; ".join(problems)
            + f"; stderr was:\n{excerpt}", injected=injected)
    try:
        checksum = int(seen["checksum"][0], 16)
        count = int(seen["outputs"][0])
        seconds = float(seen["seconds"][0])
    except ValueError as error:
        raise NativeProtocolError(
            f"unparseable protocol field: {error}",
            injected=injected) from None
    outputs: list[float | int] = []
    if print_outputs:
        for line in stdout.splitlines():
            text = line.strip()
            if not text:
                continue
            try:
                outputs.append(int(text) if _is_int(text)
                               else float(text))
            except ValueError:
                raise NativeProtocolError(
                    f"unparseable output token {text!r}",
                    injected=injected) from None
    return NativeRun(checksum=checksum, output_count=count,
                     seconds=seconds, outputs=outputs, profile=profile,
                     heartbeats=heartbeats)


def _is_int(text: str) -> bool:
    if text == "-0":
        # %d never prints "-0"; this is %.17g rendering a negative zero,
        # and parsing it as int 0 would lose the sign bit.
        return False
    if text.startswith("-"):
        text = text[1:]
    return text.isdigit()


def compile_and_run(code: str, iterations: int,
                    print_outputs: bool = False,
                    workdir: Path | None = None,
                    name: str = "prog",
                    keep_artifacts: bool | None = None,
                    compile_timeout: float = DEFAULT_COMPILE_TIMEOUT,
                    run_timeout: float = DEFAULT_RUN_TIMEOUT,
                    heartbeat_ms: int | None = None,
                    stall_timeout: float | None = None,
                    on_heartbeat=None) -> NativeRun:
    """Compile and run with full temp-dir lifecycle management.

    Auto-created workdirs are deleted on success, kept on real failures
    (the path is appended to the diagnostic) and deleted on injected
    ones; ``keep_artifacts`` (or ``REPRO_KEEP_ARTIFACTS=1``) keeps them
    unconditionally.  Caller-supplied ``workdir``s are never removed.
    """
    keep = keep_artifacts if keep_artifacts is not None \
        else default_keep_artifacts()
    owned = workdir is None
    with trace.span("native", name=name) as span:
        # compile_c applies the failure policy for the dir it creates.
        binary = compile_c(code, workdir=workdir, name=name,
                           timeout=compile_timeout, keep_artifacts=keep)
        workdir = binary.parent
        try:
            run = run_binary(binary, iterations,
                             print_outputs=print_outputs,
                             timeout=run_timeout,
                             heartbeat_ms=heartbeat_ms,
                             stall_timeout=stall_timeout,
                             on_heartbeat=on_heartbeat)
        except NativeToolchainError as error:
            kept = _finish_workdir(workdir, owned, error, keep)
            raise _with_artifacts(error, kept) from error.__cause__
        kept = _finish_workdir(workdir, owned, None, keep)
        if kept is not None:
            span.annotate(artifacts=kept)
        return run
