"""Native backends: baseline FIFO C, LaminarIR C, and the gcc harness."""

from repro.backend.common import checksum_outputs
from repro.backend.fifo_c import FifoCodegenOptions, generate_fifo_c
from repro.backend.laminar_c import generate_laminar_c
from repro.backend.runner import (NativeCompileError, NativeProtocolError,
                                  NativeRun, NativeRunError,
                                  NativeToolchainError, compile_and_run,
                                  compile_c, find_compiler, run_binary)

__all__ = [
    "FifoCodegenOptions", "NativeCompileError", "NativeProtocolError",
    "NativeRun", "NativeRunError", "NativeToolchainError",
    "checksum_outputs", "compile_and_run", "compile_c", "find_compiler",
    "generate_fifo_c", "generate_laminar_c", "run_binary",
]
