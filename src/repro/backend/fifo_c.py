"""The FIFO baseline C backend — the code shape the StreamIt compiler emits.

Every channel is a static circular buffer with masked read/write indices;
splitters and joiners are generated copy functions; each filter instance
gets specialized work/init (and prework) functions; the schedule is driven
by generated call sequences (runs of the same firing are compressed into
loops).  This is the baseline side of the native speedup experiment (E3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.c_ast import CAstPrinter, helper_function
from repro.backend.common import (C_PRELUDE, c_float_literal, c_int_literal,
                                  c_main, c_profile_runtime, c_type,
                                  sanitize_ident)
from repro.frontend.types import ArrayType, ScalarType
from repro.graph.nodes import (Channel, FilterVertex, FlatGraph,
                               JoinerVertex, SplitterVertex, Vertex)
from repro.scheduling.schedule import Firing, Schedule


def _round_up_pow2(value: int) -> int:
    size = 1
    while size < value:
        size <<= 1
    return size


@dataclass(frozen=True)
class FifoCodegenOptions:
    """Baseline fidelity knobs.

    ``wraparound="modulo"`` reproduces the StreamIt compiler's buffer
    management (index wrap by ``%`` on an exact-size buffer — the code the
    paper's motivating example criticizes).  ``"mask"`` is the stronger
    power-of-two-and-mask baseline, used by the E7 ablation to separate
    "LaminarIR vs StreamIt" from "LaminarIR vs a hand-tuned FIFO".
    """

    wraparound: str = "modulo"  # "modulo" | "mask"


class FifoCBackend:
    def __init__(self, schedule: Schedule, source: str = "",
                 options: FifoCodegenOptions | None = None,
                 profile: bool = False):
        self.schedule = schedule
        self.graph: FlatGraph = schedule.graph
        self.source = source
        self.options = options or FifoCodegenOptions()
        self.profile = profile
        self.chunks: list[str] = []
        self._vertex_prefix: dict[Vertex, str] = {}
        # Vertex name -> profiling row index, first-seen steady order.
        self.prof_index: dict[str, int] = {}

    def generate(self) -> str:
        self.chunks = [C_PRELUDE]
        if self.profile:
            for firing in self.schedule.steady:
                name = firing.vertex.name
                if name not in self.prof_index:
                    self.prof_index[name] = len(self.prof_index)
            self.chunks.append(c_profile_runtime(list(self.prof_index)))
        self._name_vertices()
        for channel in self.graph.channels:
            self._emit_channel(channel)
        for vertex in self.graph.vertices:
            if isinstance(vertex, FilterVertex):
                self._emit_filter(vertex)
            elif isinstance(vertex, SplitterVertex):
                self._emit_splitter(vertex)
            else:
                assert isinstance(vertex, JoinerVertex)
                self._emit_joiner(vertex)
        self._emit_setup()
        self._emit_sequence("repro_init_schedule", self.schedule.init)
        self._emit_sequence("repro_steady", self.schedule.steady,
                            profiled=self.profile)
        self.chunks.append(c_main(self.profile))
        return "\n".join(self.chunks)

    # -- naming -------------------------------------------------------------------

    def _name_vertices(self) -> None:
        used: set[str] = set()
        for vertex in self.graph.vertices:
            base = "V" + sanitize_ident(vertex.name)
            name = base
            suffix = 0
            while name in used:
                suffix += 1
                name = f"{base}_{suffix}"
            used.add(name)
            self._vertex_prefix[vertex] = name

    def _prefix(self, vertex: Vertex) -> str:
        return self._vertex_prefix[vertex]

    # -- channels ------------------------------------------------------------------

    def _emit_channel(self, channel: Channel) -> None:
        name = channel.name
        ty = c_type(channel.ty)
        bound = max(self.schedule.buffer_bounds[name], 1)
        if self.options.wraparound == "mask":
            capacity = _round_up_pow2(bound)
            advance = f"& {capacity - 1}"
            peek_wrap = f"& {capacity - 1}"
        else:
            capacity = bound
            advance = f"% {capacity}"
            peek_wrap = f"% {capacity}"
        self.chunks.append(f"""
/* {channel.src.name}[{channel.src_port}] -> \
{channel.dst.name}[{channel.dst_port}] */
static {ty} {name}_buf[{capacity}];
static int {name}_r = 0, {name}_w = 0;
static inline void {name}_push({ty} v) {{
    {name}_buf[{name}_w] = v;
    {name}_w = ({name}_w + 1) {advance};
}}
static inline {ty} {name}_pop(void) {{
    {ty} v = {name}_buf[{name}_r];
    {name}_r = ({name}_r + 1) {advance};
    return v;
}}
static inline {ty} {name}_peek(int i) {{
    return {name}_buf[({name}_r + i) {peek_wrap}];
}}""")

    # -- filters --------------------------------------------------------------------

    def _printer(self, vertex: FilterVertex) -> CAstPrinter:
        in_channel = vertex.inputs[0] if vertex.inputs else None
        out_channel = vertex.outputs[0] if vertex.outputs else None
        return CAstPrinter(
            vertex.filter, self._prefix(vertex),
            push_fn=f"{out_channel.name}_push" if out_channel else None,
            pop_fn=f"{in_channel.name}_pop" if in_channel else None,
            peek_fn=f"{in_channel.name}_peek" if in_channel else None,
            source=self.source)

    def _emit_filter(self, vertex: FilterVertex) -> None:
        node = vertex.filter
        prefix = self._prefix(vertex)
        printer = self._printer(vertex)

        for name, ty in node.field_types.items():
            if isinstance(ty, ArrayType):
                dims = "".join(f"[{d}]" for d in ty.dims())
                self.chunks.append(
                    f"static {c_type(ty.base)} {prefix}_{name}{dims};")
            else:
                assert isinstance(ty, ScalarType)
                self.chunks.append(
                    f"static {c_type(ty)} {prefix}_{name} = 0;")

        for helper in node.decl.helpers:
            self.chunks.append(helper_function(printer, helper))

        init_lines = [f"static void {prefix}_init(void)", "{"]
        for fld in node.decl.fields:
            if fld.init is not None:
                init_lines.append(
                    f"    {prefix}_{fld.name} = {printer.expr(fld.init)};")
        if node.decl.init is not None:
            init_lines.extend(printer.block(node.decl.init, 1))
        init_lines.append("}")
        self.chunks.append("\n".join(init_lines))

        assert node.decl.work is not None
        assert node.decl.work.body is not None
        work_lines = [f"static void {prefix}_work(void)"]
        work_lines.extend(printer.block(node.decl.work.body, 0))
        self.chunks.append("\n".join(work_lines))

        if node.decl.prework is not None:
            assert node.decl.prework.body is not None
            pre_lines = [f"static void {prefix}_prework(void)"]
            pre_lines.extend(printer.block(node.decl.prework.body, 0))
            self.chunks.append("\n".join(pre_lines))

    # -- splitters / joiners -----------------------------------------------------------

    def _emit_splitter(self, vertex: SplitterVertex) -> None:
        prefix = self._prefix(vertex)
        in_name = vertex.inputs[0].name  # type: ignore[union-attr]
        ty = c_type(vertex.inputs[0].ty)  # type: ignore[union-attr]
        lines = [f"static void {prefix}_work(void)", "{"]
        if vertex.policy == "duplicate":
            lines.append(f"    {ty} v = {in_name}_pop();")
            for channel in vertex.outputs:
                assert channel is not None
                lines.append(f"    {channel.name}_push(v);")
        else:
            for port, channel in enumerate(vertex.outputs):
                assert channel is not None
                weight = vertex.weights[port]
                lines.append(f"    for (int i = 0; i < {weight}; i++)")
                lines.append(
                    f"        {channel.name}_push({in_name}_pop());")
        lines.append("}")
        self.chunks.append("\n".join(lines))

    def _emit_joiner(self, vertex: JoinerVertex) -> None:
        prefix = self._prefix(vertex)
        out_name = vertex.outputs[0].name  # type: ignore[union-attr]
        lines = [f"static void {prefix}_work(void)", "{"]
        for port, channel in enumerate(vertex.inputs):
            assert channel is not None
            weight = vertex.weights[port]
            lines.append(f"    for (int i = 0; i < {weight}; i++)")
            lines.append(f"        {out_name}_push({channel.name}_pop());")
        lines.append("}")
        self.chunks.append("\n".join(lines))

    # -- schedule driving ---------------------------------------------------------------

    def _emit_setup(self) -> None:
        lines = ["static void repro_setup(void)", "{"]
        for channel in self.graph.channels:
            for value in channel.initial:
                literal = (c_int_literal(int(value))  # type: ignore
                           if channel.ty.name in ("int", "boolean")
                           else c_float_literal(float(value)))  # type: ignore
                lines.append(f"    {channel.name}_push({literal});")
        for vertex in self.graph.vertices:
            if isinstance(vertex, FilterVertex):
                lines.append(f"    {self._prefix(vertex)}_init();")
        lines.append("}")
        self.chunks.append("\n".join(lines))

    def _emit_sequence(self, name: str, firings: list[Firing],
                       profiled: bool = False) -> None:
        lines = [f"static void {name}(void)", "{"]
        if profiled:
            lines.append("    repro_prof_t_iter = repro_now();")
        index = 0
        while index < len(firings):
            firing = firings[index]
            run = 1
            while index + run < len(firings) \
                    and firings[index + run] == firing:
                run += 1
            suffix = "prework" if firing.prework else "work"
            call = f"{self._prefix(firing.vertex)}_{suffix}();"
            if profiled:
                lines.append("    repro_prof_t0 = repro_now();")
            if run == 1:
                lines.append(f"    {call}")
            else:
                lines.append(f"    for (int i = 0; i < {run}; i++)")
                lines.append(f"        {call}")
            if profiled:
                # The baseline has no static per-op counts — time and
                # call counts only (a compressed run counts every call).
                row = self.prof_index[firing.vertex.name]
                lines.append(f"    repro_prof_ns[{row}] += "
                             f"(repro_now() - repro_prof_t0) * 1e9;")
                lines.append(f"    repro_prof_calls[{row}] += {run};")
            index += run
        if profiled:
            lines.append("    repro_prof_note_iter("
                         "repro_now() - repro_prof_t_iter);")
        lines.append("}")
        self.chunks.append("\n".join(lines))


# Bump whenever this module changes the C it emits for the *same*
# program: the persistent artifact cache keys on codegen_fingerprint().
CODEGEN_VERSION = 1


def codegen_fingerprint() -> str:
    """Deterministic identity of this code generator (see the laminar
    backend's twin for the rationale)."""
    from repro.backend.common import runtime_digest
    return f"fifo-c/{CODEGEN_VERSION}+{runtime_digest()}"


def generate_fifo_c(schedule: Schedule, source: str = "",
                    options: FifoCodegenOptions | None = None,
                    profile: bool = False) -> str:
    """Generate the complete baseline C program.

    ``profile=True`` times every steady-schedule call site per vertex and
    dumps a ``profile-json`` stderr line at exit (see
    :func:`repro.backend.common.c_profile_runtime`); ``profile=False``
    output is unchanged.
    """
    return FifoCBackend(schedule, source, options,
                        profile=profile).generate()
