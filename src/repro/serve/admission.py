"""Admission control for the serve daemon: shed early, fail fast.

Two independent guards sit in front of the expensive endpoints
(``POST /compile`` and ``POST /run``):

* :class:`AdmissionQueue` — a bounded concurrency gate with a bounded
  wait queue and **deadline-aware load shedding**.  It keeps an EWMA of
  recent service times; when the estimated queue delay already exceeds
  a request's deadline (or the queue itself is full), the request is
  rejected *immediately* with a 429 and a ``Retry-After`` hint instead
  of being accepted into a wait it cannot win.  Shedding at the door
  keeps latency bounded for the requests that are admitted — the
  textbook alternative (queue everything) converts overload into
  timeouts for *every* caller.

* :class:`CircuitBreaker` — a per-cache-key breaker over native builds.
  Repeated build failures for one key open its circuit: further
  requests fail fast with the cached error (503, ``Retry-After``)
  instead of burning a compiler subprocess on a spec that just failed
  N times.  After a cooldown one **half-open probe** is admitted; its
  success closes the circuit, its failure re-opens it for another
  cooldown.  Keys are independent — one poisoned spec cannot starve
  the rest of the service.

Both guards raise exceptions carrying ``retry_after`` so the daemon can
emit honest ``Retry-After`` headers (see ``docs/ROBUSTNESS.md``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics

__all__ = ["AdmissionQueue", "CircuitBreaker", "CircuitOpenError",
           "ShedRequest"]

DEFAULT_CAPACITY = 8
DEFAULT_QUEUE_LIMIT = 64
DEFAULT_DEADLINE = 60.0
# EWMA smoothing for the service-time estimate: ~86% of the weight sits
# on the last 10 observations.
_EWMA_ALPHA = 0.2
# Until the first completion there is nothing to estimate from; assume
# a modest service time so cold-start estimates are not zero.
_INITIAL_SERVICE_SECONDS = 0.05

DEFAULT_BREAKER_THRESHOLD = 3
DEFAULT_BREAKER_COOLDOWN = 5.0


class ShedRequest(Exception):
    """The admission queue refused the request; retry after a delay."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = max(0.0, retry_after)


class CircuitOpenError(Exception):
    """The key's circuit is open; the cached build error fails fast."""

    def __init__(self, key: str, cached_error: str, retry_after: float,
                 failures: int):
        super().__init__(
            f"circuit open for {key[:16]}… after {failures} consecutive "
            f"build failures; last error: {cached_error}")
        self.key = key
        self.cached_error = cached_error
        self.retry_after = max(0.0, retry_after)
        self.failures = failures


class AdmissionQueue:
    """Bounded concurrency + bounded queue + deadline-aware shedding."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 default_deadline: float = DEFAULT_DEADLINE):
        self.capacity = max(1, capacity)
        self.queue_limit = max(0, queue_limit)
        self.default_deadline = default_deadline
        self._active = 0
        self._waiting = 0
        self._ewma = _INITIAL_SERVICE_SECONDS
        self._lock = threading.Lock()
        self._slot_free = threading.Condition(self._lock)
        self.shed_total = 0

    # -- estimates ------------------------------------------------------------

    def service_estimate(self) -> float:
        """The EWMA of recent service times, in seconds."""
        with self._lock:
            return self._ewma

    def _estimated_wait(self) -> float:
        """Expected queue delay for a request arriving *now* (locked).

        With ``capacity`` slots draining one request every ``ewma``
        seconds each, a request behind ``waiting`` others (plus the
        currently-running batch) waits roughly its queue position's
        worth of drain rounds.
        """
        backlog = self._waiting + max(0, self._active - self.capacity + 1)
        return backlog * self._ewma / self.capacity

    # -- admission ------------------------------------------------------------

    @contextmanager
    def admit(self, deadline: float | None = None) -> Iterator[None]:
        """Hold one execution slot; shed instead of waiting hopelessly.

        ``deadline`` is the caller's patience in seconds (the request's
        ``deadline_ms`` field); :class:`ShedRequest` is raised when the
        queue is full, the estimated wait already exceeds the deadline,
        or the deadline expires while queued.
        """
        patience = self.default_deadline if deadline is None else deadline
        started = time.monotonic()
        with self._slot_free:
            if self._active >= self.capacity:
                wait = self._estimated_wait()
                if self._waiting >= self.queue_limit:
                    self._shed("queue-full", wait)
                if wait > patience:
                    self._shed("deadline", wait)
                self._waiting += 1
                try:
                    while self._active >= self.capacity:
                        remaining = patience - (time.monotonic() - started)
                        if remaining <= 0:
                            self._shed("deadline-expired",
                                       self._estimated_wait())
                        self._slot_free.wait(timeout=min(remaining, 0.5))
                finally:
                    self._waiting -= 1
            self._active += 1
        try:
            yield
        finally:
            elapsed = time.monotonic() - started
            with self._slot_free:
                self._active -= 1
                self._ewma += _EWMA_ALPHA * (elapsed - self._ewma)
                self._slot_free.notify()

    def _shed(self, reason: str, estimated_wait: float) -> None:
        self.shed_total += 1
        obs_metrics.counter("serve.shed", reason=reason).inc()
        obs_bus.emit_event("serve.shed", reason=reason,
                           estimated_wait=round(estimated_wait, 3),
                           waiting=self._waiting, active=self._active)
        raise ShedRequest(
            f"overloaded ({reason}): {self._active} running, "
            f"{self._waiting} queued, estimated wait "
            f"{estimated_wait:.2f}s", retry_after=max(estimated_wait,
                                                      self._ewma))

    def stats(self) -> dict:
        with self._lock:
            return {"capacity": self.capacity,
                    "queue_limit": self.queue_limit,
                    "active": self._active, "waiting": self._waiting,
                    "service_estimate_seconds": round(self._ewma, 6),
                    "shed_total": self.shed_total}


class _Circuit:
    __slots__ = ("failures", "opened_at", "probing", "last_error")

    def __init__(self):
        self.failures = 0
        self.opened_at: float | None = None
        self.probing = False
        self.last_error = ""


class CircuitBreaker:
    """Per-key closed → open → half-open breaker over native builds."""

    def __init__(self, threshold: int = DEFAULT_BREAKER_THRESHOLD,
                 cooldown: float = DEFAULT_BREAKER_COOLDOWN):
        self.threshold = max(1, threshold)
        self.cooldown = cooldown
        self._circuits: dict[str, _Circuit] = {}
        self._lock = threading.Lock()

    def check(self, key: str) -> None:
        """Gate one build attempt; raises :class:`CircuitOpenError`.

        While open and cooling, every caller fails fast with the cached
        error.  Once the cooldown elapses, exactly one caller is let
        through as the half-open probe (the others keep failing fast
        until the probe reports back via :meth:`success` /
        :meth:`failure`).
        """
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.opened_at is None:
                return
            elapsed = time.monotonic() - circuit.opened_at
            if elapsed >= self.cooldown and not circuit.probing:
                circuit.probing = True
                obs_metrics.counter("serve.breaker.probe").inc()
                obs_bus.emit_event("serve.breaker.probe", key=key)
                return
            obs_metrics.counter("serve.breaker.fastfail").inc()
            raise CircuitOpenError(
                key, circuit.last_error,
                retry_after=max(self.cooldown - elapsed, 0.05),
                failures=circuit.failures)

    def success(self, key: str) -> None:
        """A build for ``key`` succeeded: close and forget its circuit."""
        with self._lock:
            circuit = self._circuits.pop(key, None)
            if circuit is not None and circuit.opened_at is not None:
                obs_metrics.counter("serve.breaker.close").inc()
                obs_bus.emit_event("serve.breaker.close", key=key)

    def failure(self, key: str, error: str) -> None:
        """A build for ``key`` failed: count it, maybe (re)open."""
        with self._lock:
            circuit = self._circuits.setdefault(key, _Circuit())
            circuit.failures += 1
            circuit.last_error = error[:500]
            was_open = circuit.opened_at is not None
            if circuit.failures >= self.threshold or was_open:
                circuit.opened_at = time.monotonic()
                circuit.probing = False
                if not was_open:
                    obs_metrics.counter("serve.breaker.open").inc()
                    obs_bus.emit_event("serve.breaker.open", key=key,
                                       failures=circuit.failures)

    def state(self, key: str) -> str:
        """``closed`` / ``open`` / ``half-open`` (diagnostics only)."""
        with self._lock:
            circuit = self._circuits.get(key)
            if circuit is None or circuit.opened_at is None:
                return "closed"
            if circuit.probing:
                return "half-open"
            if time.monotonic() - circuit.opened_at >= self.cooldown:
                return "half-open"
            return "open"

    def stats(self) -> dict:
        with self._lock:
            open_keys = sum(1 for c in self._circuits.values()
                            if c.opened_at is not None)
            return {"tracked_keys": len(self._circuits),
                    "open": open_keys, "threshold": self.threshold,
                    "cooldown_seconds": self.cooldown}
