"""A stdlib-only client for the serve daemon (TCP or Unix socket).

Used by the test suite, ``benchmarks/bench_serve.py`` and the CI smoke
job; third parties can talk plain HTTP with anything (the Unix-socket
transport is ordinary HTTP/1.1 over an ``AF_UNIX`` stream, the same
framing ``curl --unix-socket`` speaks).

Every request carries a W3C ``traceparent`` header — a caller-supplied
one (to join an existing trace) or a freshly minted one — so the daemon
continues the client's trace rather than starting its own.  The
response's ``X-Request-Id`` is surfaced as
:attr:`ServeResponse.request_id`, the key for ``GET
/debug/trace/<request-id>``.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from pathlib import Path

from repro.obs import reqctx


class UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` stream socket."""

    def __init__(self, socket_path: "str | Path",
                 timeout: float = 60.0):
        # The "host" only feeds the Host: header; any token works.
        super().__init__("localhost", timeout=timeout)
        self.socket_path = str(socket_path)

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self.socket_path)
        self.sock = sock


class ServeResponse:
    """One decoded response: status code, parsed body, trace identity."""

    def __init__(self, status: int, content_type: str, raw: bytes,
                 headers: dict | None = None,
                 traceparent: str | None = None):
        self.status = status
        self.content_type = content_type
        self.raw = raw
        self.headers = {key.lower(): value
                        for key, value in (headers or {}).items()}
        #: The ``traceparent`` the request was sent with.
        self.traceparent = traceparent

    @property
    def json(self) -> dict:
        return json.loads(self.raw.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.raw.decode("utf-8")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def request_id(self) -> str | None:
        """The daemon-assigned id (``X-Request-Id`` response header)."""
        return self.headers.get("x-request-id")


class ServeClient:
    """Convenience wrapper over the daemon's JSON API."""

    def __init__(self, *, socket_path: "str | Path | None" = None,
                 host: str = "127.0.0.1", port: int | None = None,
                 timeout: float = 120.0):
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path or port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return UnixHTTPConnection(self.socket_path,
                                      timeout=self.timeout)
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)

    def request(self, method: str, path: str,
                payload: dict | None = None, *,
                traceparent: str | None = None) -> ServeResponse:
        body = None
        if traceparent is None:
            traceparent = reqctx.make_traceparent()
        headers = {"traceparent": traceparent}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connection()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return ServeResponse(response.status,
                                 response.getheader("Content-Type", ""),
                                 response.read(),
                                 headers=dict(response.getheaders()),
                                 traceparent=traceparent)
        finally:
            connection.close()

    # -- endpoint helpers -----------------------------------------------------

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        return self.request("GET", "/metrics").text

    def cache_stats(self) -> dict:
        return self.request("GET", "/cache/stats").json

    def debug_requests(self) -> list[dict]:
        return self.request("GET", "/debug/requests").json["requests"]

    def debug_trace(self, request_id: str) -> ServeResponse:
        return self.request("GET", f"/debug/trace/{request_id}")

    def compile(self, *, traceparent: str | None = None,
                **fields) -> ServeResponse:
        return self.request("POST", "/compile", fields,
                            traceparent=traceparent)

    def run(self, *, traceparent: str | None = None,
            **fields) -> ServeResponse:
        return self.request("POST", "/run", fields,
                            traceparent=traceparent)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Poll ``/healthz`` until the daemon answers (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.healthz().ok:
                    return True
            except OSError:
                pass
            time.sleep(0.05)
        return False
