"""A stdlib-only client for the serve daemon (TCP or Unix socket).

Used by the test suite, ``benchmarks/bench_serve.py`` and the CI smoke
job; third parties can talk plain HTTP with anything (the Unix-socket
transport is ordinary HTTP/1.1 over an ``AF_UNIX`` stream, the same
framing ``curl --unix-socket`` speaks).

Every request carries a W3C ``traceparent`` header — a caller-supplied
one (to join an existing trace) or a freshly minted one — so the daemon
continues the client's trace rather than starting its own.  The
response's ``X-Request-Id`` is surfaced as
:attr:`ServeResponse.request_id`, the key for ``GET
/debug/trace/<request-id>``.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from pathlib import Path

from repro.obs import reqctx

DEFAULT_CONNECT_TIMEOUT = 10.0
DEFAULT_READ_TIMEOUT = 120.0
# Base for the single jittered connection-refused retry (the daemon is
# usually mid-startup; one short pause covers the common race).
RETRY_BACKOFF_SECONDS = 0.1


class UnixHTTPConnection(http.client.HTTPConnection):
    """``http.client`` over an ``AF_UNIX`` stream socket."""

    def __init__(self, socket_path: "str | Path",
                 timeout: float = 60.0,
                 connect_timeout: float | None = None):
        # The "host" only feeds the Host: header; any token works.
        super().__init__("localhost", timeout=timeout)
        self.socket_path = str(socket_path)
        self.connect_timeout = connect_timeout \
            if connect_timeout is not None else timeout

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.connect_timeout)
        sock.connect(self.socket_path)
        # Established: switch to the (longer) read timeout for the
        # request/response exchange.
        sock.settimeout(self.timeout)
        self.sock = sock


class ServeResponse:
    """One decoded response: status code, parsed body, trace identity."""

    def __init__(self, status: int, content_type: str, raw: bytes,
                 headers: dict | None = None,
                 traceparent: str | None = None):
        self.status = status
        self.content_type = content_type
        self.raw = raw
        self.headers = {key.lower(): value
                        for key, value in (headers or {}).items()}
        #: The ``traceparent`` the request was sent with.
        self.traceparent = traceparent

    @property
    def json(self) -> dict:
        return json.loads(self.raw.decode("utf-8"))

    @property
    def text(self) -> str:
        return self.raw.decode("utf-8")

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def request_id(self) -> str | None:
        """The daemon-assigned id (``X-Request-Id`` response header)."""
        return self.headers.get("x-request-id")


class _TcpHTTPConnection(http.client.HTTPConnection):
    """TCP ``http.client`` with split connect/read timeouts."""

    def __init__(self, host: str, port: int, timeout: float,
                 connect_timeout: float):
        super().__init__(host, port, timeout=timeout)
        self.connect_timeout = connect_timeout

    def connect(self) -> None:
        self.sock = socket.create_connection(
            (self.host, self.port), self.connect_timeout)
        self.sock.settimeout(self.timeout)


class ServeClient:
    """Convenience wrapper over the daemon's JSON API.

    ``connect_timeout`` bounds establishing the connection,
    ``read_timeout`` the request/response exchange (``timeout`` is the
    legacy spelling of the latter).  A refused connection — typically a
    daemon still binding its socket — is retried **once** after a short
    jittered backoff before the error escapes to the caller.
    """

    def __init__(self, *, socket_path: "str | Path | None" = None,
                 host: str = "127.0.0.1", port: int | None = None,
                 timeout: float = DEFAULT_READ_TIMEOUT,
                 connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
                 read_timeout: float | None = None):
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path or port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = read_timeout if read_timeout is not None \
            else timeout
        self.connect_timeout = connect_timeout

    def _connection(self) -> http.client.HTTPConnection:
        if self.socket_path is not None:
            return UnixHTTPConnection(
                self.socket_path, timeout=self.timeout,
                connect_timeout=self.connect_timeout)
        return _TcpHTTPConnection(self.host, self.port,
                                  timeout=self.timeout,
                                  connect_timeout=self.connect_timeout)

    def request(self, method: str, path: str,
                payload: dict | None = None, *,
                traceparent: str | None = None) -> ServeResponse:
        body = None
        if traceparent is None:
            traceparent = reqctx.make_traceparent()
        headers = {"traceparent": traceparent}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        for attempt in range(2):
            connection = None
            try:
                connection = self._connection()
                connection.request(method, path, body=body,
                                   headers=headers)
                response = connection.getresponse()
                return ServeResponse(
                    response.status,
                    response.getheader("Content-Type", ""),
                    response.read(),
                    headers=dict(response.getheaders()),
                    traceparent=traceparent)
            except (ConnectionRefusedError, FileNotFoundError):
                # The daemon is (re)starting: its socket is not bound
                # yet (TCP refuses; a Unix socket path may not even
                # exist).  One jittered retry covers the startup race.
                if attempt:
                    raise
                time.sleep(RETRY_BACKOFF_SECONDS
                           * (1.0 + random.random()))
            finally:
                if connection is not None:
                    connection.close()
        raise AssertionError("unreachable")  # pragma: no cover

    # -- endpoint helpers -----------------------------------------------------

    def healthz(self) -> ServeResponse:
        return self.request("GET", "/healthz")

    def metrics(self) -> str:
        return self.request("GET", "/metrics").text

    def cache_stats(self) -> dict:
        return self.request("GET", "/cache/stats").json

    def debug_requests(self) -> list[dict]:
        return self.request("GET", "/debug/requests").json["requests"]

    def debug_trace(self, request_id: str) -> ServeResponse:
        return self.request("GET", f"/debug/trace/{request_id}")

    def compile(self, *, traceparent: str | None = None,
                **fields) -> ServeResponse:
        return self.request("POST", "/compile", fields,
                            traceparent=traceparent)

    def run(self, *, traceparent: str | None = None,
            **fields) -> ServeResponse:
        return self.request("POST", "/run", fields,
                            traceparent=traceparent)

    def wait_ready(self, timeout: float = 10.0) -> bool:
        """Poll ``/healthz`` until the daemon answers (or timeout)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                if self.healthz().ok:
                    return True
            except OSError:
                pass
            time.sleep(0.05)
        return False
