"""``python -m repro serve``: the compile-once daemon.

:class:`ServeServer` (in :mod:`repro.serve.daemon`) exposes the
persistent artifact cache over HTTP — TCP or a Unix domain socket —
with single-flight compilation dedup and per-request admission control;
:class:`ServeClient` (in :mod:`repro.serve.client`) is the matching
stdlib-only client used by the tests, the benchmark and CI.
"""

from repro.serve.client import ServeClient, ServeResponse, UnixHTTPConnection
from repro.serve.daemon import (ACCESS_LOG_ENV, ApiError,
                                DEFAULT_ACCESS_LOG, DEFAULT_MAX_ITERATIONS,
                                DEFAULT_PORT, ServeServer)

__all__ = ["ACCESS_LOG_ENV", "ApiError", "DEFAULT_ACCESS_LOG",
           "DEFAULT_MAX_ITERATIONS", "DEFAULT_PORT", "ServeClient",
           "ServeResponse", "ServeServer", "UnixHTTPConnection"]
