"""``python -m repro serve``: the compile-once daemon.

:class:`ServeServer` (in :mod:`repro.serve.daemon`) exposes the
persistent artifact cache over HTTP — TCP or a Unix domain socket —
with single-flight compilation dedup and per-request admission control;
:class:`ServeClient` (in :mod:`repro.serve.client`) is the matching
stdlib-only client used by the tests, the benchmark and CI.

Crash safety lives in three sibling modules: :mod:`repro.serve.pool`
(process-isolated execution workers with respawn + retry-once),
:mod:`repro.serve.admission` (deadline-aware load shedding and per-key
circuit breakers) and :mod:`repro.serve.chaos` (the seeded
``python -m repro chaos`` campaign that proves the whole stack under
injected failure).
"""

from repro.serve.admission import (AdmissionQueue, CircuitBreaker,
                                   CircuitOpenError, ShedRequest)
from repro.serve.chaos import ChaosReport, run_campaign
from repro.serve.client import ServeClient, ServeResponse, UnixHTTPConnection
from repro.serve.daemon import (ACCESS_LOG_ENV, ApiError,
                                DEFAULT_ACCESS_LOG, DEFAULT_DRAIN_TIMEOUT,
                                DEFAULT_MAX_ITERATIONS, DEFAULT_PORT,
                                ServeServer)
from repro.serve.pool import (DEFAULT_WORKERS, PoolExhausted, WorkerCrashed,
                              WorkerHung, WorkerPool)

__all__ = ["ACCESS_LOG_ENV", "AdmissionQueue", "ApiError", "ChaosReport",
           "CircuitBreaker", "CircuitOpenError", "DEFAULT_ACCESS_LOG",
           "DEFAULT_DRAIN_TIMEOUT", "DEFAULT_MAX_ITERATIONS",
           "DEFAULT_PORT", "DEFAULT_WORKERS", "PoolExhausted",
           "ServeClient", "ServeResponse", "ServeServer", "ShedRequest",
           "UnixHTTPConnection", "WorkerCrashed", "WorkerHung",
           "WorkerPool", "run_campaign"]
