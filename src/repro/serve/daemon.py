"""The compile-once, serve-forever daemon: ``python -m repro serve``.

A small threaded HTTP API (TCP or Unix domain socket) over the
persistent artifact cache (:mod:`repro.cache`):

* ``POST /compile`` — ensure a native artifact exists for a spec
  (``{"source": ...}`` or ``{"benchmark": "filterbank"}``, optional
  ``backend``/``pipeline``/``no_opt``/``no_elim``/``limits``); returns
  the cache key and whether it was a hit.
* ``POST /run`` — execute a spec (same fields plus ``iterations`` and
  ``route``: ``"native"`` runs the cached prebuilt binary, ``"interp"``
  the laminar interpreter, ``"auto"`` — the default — degrades from
  native to interpreter when the toolchain is missing); returns the
  checksum, output count and timing.  Appends a ``serve`` record to the
  run ledger.
* ``GET /metrics`` — the PR 6 OpenMetrics exposition (cache hit/miss/
  evict counters included, plus the labeled
  ``repro_serve_request_seconds{route,status,backend}`` histogram and
  ``repro_serve_inflight{route}`` gauge); ``GET /healthz`` (uptime,
  in-flight count, cache entries/bytes, ledger reachability);
  ``GET /cache/stats``.
* ``GET /debug/requests`` — the flight recorder: the last N completed
  requests, each with its access record and span tree;
  ``GET /debug/trace/<request-id>`` — one request's record + span tree.

Every request runs under its own
:class:`repro.obs.reqctx.RequestContext`: spans, metric deltas and bus
events are recorded into request-private structures (merged into the
process-wide aggregates at completion) and stamped with a per-request
id.  A valid W3C ``traceparent`` header is honoured — its trace id
flows through every span, event, cache hit/miss, ledger record and the
access log, and the response carries ``X-Request-Id`` plus the outgoing
``traceparent``.  When an access log is configured, each request
appends one flushed JSONL record (see ``repro tail``).

Concurrent compilations of the *same* cache key are deduplicated: one
request builds, the rest wait and read the published entry
(``serve.inflight.coalesced`` counts the waiters, and each waiter's
request is marked ``dedup`` in the access log).  Distinct keys build
concurrently.

Admission control: the server's default :class:`ResourceLimits` (from
``--limits``/``REPRO_LIMITS``) merged with the request's own ``limits``
spec is installed thread-locally around every compile, and a request
asking for more than ``max_iterations`` is rejected outright.  The PR 5
exit-code taxonomy maps onto the error model::

    HTTP 400  {"kind": "usage",              "exit_code": 2}
    HTTP 422  {"kind": "compile-error",      "exit_code": 1}
    HTTP 429  {"kind": "resource-exhausted", "exit_code": 3}
    HTTP 503  {"kind": "native-<stage>",     "exit_code": 4}
    HTTP 500  {"kind": "internal",           "exit_code": 1}

See ``docs/SERVING.md`` for the full API reference.
"""

from __future__ import annotations

import collections
import hashlib
import json
import os
import socketserver
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.api import CompiledStream, compile_source
from repro.backend import runner
from repro.backend.common import checksum_outputs
from repro.cache import (ArtifactCache, BACKENDS, build_native, native_key)
from repro.faults import (ResourceExhausted, ResourceLimits, use_limits)
from repro.frontend.errors import CompileError
from repro.lir import LoweringOptions
from repro.obs import bus as obs_bus
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import reqctx
from repro.obs import trace as obs_trace
from repro.obs.sinks import (JsonlAccessLog, OPENMETRICS_CONTENT_TYPE,
                             span_tree, to_openmetrics)
from repro.opt import OptOptions
from repro.serve import pool as pool_mod
from repro.serve.admission import (AdmissionQueue, CircuitBreaker,
                                   CircuitOpenError, ShedRequest)
from repro.serve.pool import WorkerPool
from repro.suite import BENCHMARKS, load_benchmark

DEFAULT_PORT = 9465
DEFAULT_MAX_ITERATIONS = 1_000_000
DEFAULT_DRAIN_TIMEOUT = 30.0

# Where ``python -m repro serve`` writes its access log unless told
# otherwise (library users pass ``access_log=`` explicitly).
DEFAULT_ACCESS_LOG = Path(".repro") / "serve-access.jsonl"
ACCESS_LOG_ENV = "REPRO_ACCESS_LOG"

# How many completed requests the in-memory flight recorder keeps
# (records + span trees, served by GET /debug/requests).
FLIGHT_RECORDER_SIZE = 128

# How many frontend-compiled streams to keep in memory, keyed by source
# hash: the hot path then touches neither the parser nor the scheduler.
STREAM_MEMO_SIZE = 128

_KNOWN_ROUTES = ("/healthz", "/metrics", "/cache/stats", "/compile",
                 "/run", "/debug/requests", "/debug/trace")


def _route_label(path: str) -> str:
    """A bounded-cardinality route label for one request path."""
    if path == "/":
        return "/healthz"
    if path.startswith("/debug/trace/"):
        return "/debug/trace"
    if path in _KNOWN_ROUTES:
        return path
    return "other"


class ApiError(Exception):
    """A request-level failure with an HTTP status and exit-code tag."""

    def __init__(self, status: int, kind: str, exit_code: int,
                 message: str, retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.kind = kind
        self.exit_code = exit_code
        self.retry_after = retry_after

    def payload(self) -> dict:
        payload = {"error": str(self), "kind": self.kind,
                   "exit_code": self.exit_code}
        if self.retry_after is not None:
            payload["retry_after"] = round(self.retry_after, 3)
        return payload


def _usage(message: str) -> ApiError:
    return ApiError(400, "usage", 2, message)


class ServeServer:
    """The daemon: request parsing, dedup, admission, cache, ledger."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 socket_path: "str | Path | None" = None,
                 cache: ArtifactCache | None = None,
                 limits: ResourceLimits | None = None,
                 max_iterations: int = DEFAULT_MAX_ITERATIONS,
                 ledger: bool = True,
                 access_log: "str | Path | None" = None,
                 flight_recorder: int = FLIGHT_RECORDER_SIZE,
                 workers: int = pool_mod.DEFAULT_WORKERS,
                 job_timeout: float = pool_mod.DEFAULT_JOB_TIMEOUT,
                 admission: AdmissionQueue | None = None,
                 breaker: CircuitBreaker | None = None):
        self.cache = cache if cache is not None else ArtifactCache()
        # A crash mid-publish leaves stage dirs behind; quarantine them
        # before serving so lookups never see partial entries.
        try:
            self.cache.scrub()
        except OSError:
            pass
        self.limits = limits
        self.max_iterations = max_iterations
        self.ledger = ledger
        self.workers = max(0, workers)
        self.job_timeout = job_timeout
        self._pool: WorkerPool | None = None
        self._pool_lock = threading.Lock()
        self.admission = admission if admission is not None \
            else AdmissionQueue()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self._draining = False
        self._stopped = False
        self.started_at = time.time()
        self.access_log = JsonlAccessLog(access_log) \
            if access_log else None
        self._recorder: "collections.deque[dict]" = \
            collections.deque(maxlen=max(1, flight_recorder))
        self._recorder_lock = threading.Lock()
        self._inflight_routes: dict[str, int] = {}
        self._inflight_routes_lock = threading.Lock()
        self._streams: "collections.OrderedDict[str, CompiledStream]" = \
            collections.OrderedDict()
        self._streams_lock = threading.Lock()
        self._inflight: dict[str, threading.Event] = {}
        self._flight_lock = threading.Lock()
        self._thread: threading.Thread | None = None
        # /metrics serves the metrics registry; instruments are gated on
        # tracing, so a serving process keeps it enabled.
        self._trace_was_enabled = obs_trace.is_enabled()
        if not self._trace_was_enabled:
            obs_trace.enable(reset=False)
        self.socket_path: str | None = None
        if socket_path is not None:
            self.socket_path = str(socket_path)
            path = Path(self.socket_path)
            if path.exists():
                path.unlink()
            self._server = _UnixServer(self.socket_path, _Handler)
        else:
            self._server = _TcpServer((host, port), _Handler)
        self._server.owner = self

    # -- lifecycle ------------------------------------------------------------

    @property
    def host(self) -> str | None:
        if self.socket_path is not None:
            return None
        return self._server.server_address[0]

    @property
    def port(self) -> int | None:
        if self.socket_path is not None:
            return None
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-serve", daemon=True)
        self._thread.start()
        obs_bus.emit_event("serve.start", url=self.url,
                           cache_root=str(self.cache.root))
        return self

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()
        if self.socket_path is not None:
            try:
                Path(self.socket_path).unlink()
            except OSError:
                pass
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
        if not self._trace_was_enabled:
            obs_trace.disable()
        if self.access_log is not None:
            self.access_log.close()

    def drain(self, timeout: float = DEFAULT_DRAIN_TIMEOUT) -> bool:
        """Graceful shutdown: stop accepting, finish in-flight, flush.

        Closes the listener first (new connects are refused), waits up
        to ``timeout`` seconds for in-flight requests to complete, then
        tears everything down via :meth:`stop` — which flushes and
        closes the access log, kills the worker pool, and unlinks the
        Unix socket.  Returns ``True`` when every in-flight request
        finished inside the deadline (the caller's exit code hinges on
        this).
        """
        self._draining = True
        obs_bus.emit_event("serve.drain.start", inflight=self.inflight(),
                           timeout=timeout)
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        # shutdown() only stops the accept loop; close the listening
        # socket too so new connects fail fast during the drain.
        self._server.server_close()
        deadline = time.monotonic() + timeout
        while self.inflight() > 0 and time.monotonic() < deadline:
            time.sleep(0.02)
        drained = self.inflight() == 0
        obs_bus.emit_event("serve.drain.done", drained=drained,
                           inflight=self.inflight())
        self.stop()
        return drained

    @property
    def draining(self) -> bool:
        return self._draining

    def _worker_pool(self) -> WorkerPool | None:
        """The lazily-started execution pool (None with ``workers=0``)."""
        if self.workers <= 0:
            return None
        with self._pool_lock:
            if self._pool is None and not self._stopped:
                self._pool = WorkerPool(self.workers,
                                        job_timeout=self.job_timeout)
            return self._pool

    # -- request plumbing -----------------------------------------------------

    def handle(self, method: str, path: str, body: bytes,
               headers: dict | None = None
               ) -> tuple[int, str, bytes, dict]:
        """Serve one request under its own :class:`RequestContext`.

        Returns ``(status, content-type, body, extra response headers)``
        — the extra headers carry ``X-Request-Id`` and the outgoing
        ``traceparent``.  On completion the request's metric deltas
        merge into the global registry, the labeled latency histogram
        observes the request, and the access record lands in the flight
        recorder (and the access log, if configured).
        """
        wall = time.time()
        started = time.monotonic()
        lowered = {key.lower(): value
                   for key, value in (headers or {}).items()}
        traceparent = lowered.get("traceparent")
        ctx = reqctx.RequestContext(traceparent=traceparent)
        route = _route_label(path)
        self._inflight_add(route, 1)
        try:
            with reqctx.activate(ctx):
                with obs_trace.span("serve.request", method=method,
                                    route=route) as root:
                    status, content_type, payload, resp_headers = \
                        self._dispatch_request(method, path, body)
                    root.annotate(status=status)
        finally:
            self._inflight_add(route, -1)
        duration = time.monotonic() - started
        self._finish_request(ctx, wall=wall, method=method, path=path,
                             route=route, status=status,
                             duration=duration, bytes_out=len(payload))
        extra = dict(resp_headers)
        extra.update({"X-Request-Id": ctx.request_id,
                      "Traceparent": ctx.traceparent})
        return status, content_type, payload, extra

    def _dispatch_request(self, method: str, path: str,
                          body: bytes) -> tuple[int, str, bytes, dict]:
        """Route one request to its endpoint; never raises."""
        obs_metrics.counter("serve.requests").inc()
        try:
            if method == "GET" and path in ("/healthz", "/"):
                return self._json(200, self._healthz())
            if method == "GET" and path == "/metrics":
                text = to_openmetrics().encode("utf-8")
                return 200, OPENMETRICS_CONTENT_TYPE, text, {}
            if method == "GET" and path == "/cache/stats":
                return self._json(200, self.cache.stats())
            if method == "GET" and path == "/debug/requests":
                return self._json(200, {"requests": self._recent()})
            if method == "GET" and path.startswith("/debug/trace/"):
                needle = path[len("/debug/trace/"):]
                return self._json(200, self._trace_of(needle))
            if method == "POST" and path == "/compile":
                return self._json(200, self._compile(_parse_body(body)))
            if method == "POST" and path == "/run":
                return self._json(200, self._run(_parse_body(body)))
            raise ApiError(404, "usage", 2,
                           f"no such endpoint: {method} {path}")
        except ApiError as error:
            return self._error(error)
        except ShedRequest as error:
            obs_metrics.counter("serve.admission.rejected").inc()
            return self._error(
                ApiError(429, "shed", 3, str(error),
                         retry_after=error.retry_after))
        except CircuitOpenError as error:
            return self._error(
                ApiError(503, "circuit-open", 4, str(error),
                         retry_after=error.retry_after))
        except ResourceExhausted as error:
            obs_metrics.counter("serve.admission.rejected").inc()
            payload = ApiError(429, "resource-exhausted", 3,
                               error.message).payload()
            payload.update(resource=error.resource, limit=error.limit,
                           actual=error.actual, where=error.where)
            return self._json(429, payload)
        except CompileError as error:
            return self._error(
                ApiError(422, "compile-error", 1, error.format()))
        except runner.NativeToolchainError as error:
            return self._error(
                ApiError(503, f"native-{error.stage}", 4, str(error)))
        except pool_mod.PoolExhausted as error:
            return self._error(
                ApiError(503, "worker-crashed", 4, str(error)))
        except Exception as error:  # noqa: BLE001 - the API boundary
            obs_metrics.counter("serve.errors").inc()
            return self._error(
                ApiError(500, "internal", 1,
                         f"{type(error).__name__}: {error}"))

    def _inflight_add(self, route: str, delta: int) -> None:
        # The gauge lives directly on the global registry: in-flight
        # counts are a process-wide fact, not a per-request delta.
        with self._inflight_routes_lock:
            value = max(0, self._inflight_routes.get(route, 0) + delta)
            self._inflight_routes[route] = value
        obs_metrics.registry().gauge("serve.inflight",
                                     route=route).set(value)

    def inflight(self) -> int:
        """Requests currently being handled (all routes)."""
        with self._inflight_routes_lock:
            return sum(self._inflight_routes.values())

    def _finish_request(self, ctx: reqctx.RequestContext, *, wall: float,
                        method: str, path: str, route: str, status: int,
                        duration: float, bytes_out: int) -> None:
        ctx.registry.merge_into(obs_metrics.registry())
        info = ctx.info
        backend = str(info.get("backend", "-"))
        obs_metrics.registry().histogram(
            "serve.request.seconds", route=route, status=str(status),
            backend=backend).observe(duration)
        record = {
            "type": "access",
            "wall_time": wall,
            "request_id": ctx.request_id,
            "trace_id": ctx.trace_id,
            "traceparent": ctx.traceparent,
            "traceparent_in": ctx.traceparent_in,
            "method": method,
            "path": path,
            "route": route,
            "status": status,
            "backend": backend,
            "cache_hit": info.get("cache_hit"),
            "dedup": bool(info.get("dedup", False)),
            "degraded": bool(info.get("degraded", False)),
            "run_route": info.get("run_route"),
            "stream": info.get("stream"),
            "duration_ms": duration * 1e3,
            "bytes_out": bytes_out,
        }
        spans = [span_tree(root) for root in ctx.tracer.roots]
        with self._recorder_lock:
            self._recorder.append({"record": record, "spans": spans})
        if self.access_log is not None:
            try:
                self.access_log.write(record)
            except OSError:
                pass  # a full disk must not fail the request
        # Emitted after the context closes, so stamp the ids explicitly.
        obs_bus.emit_event("serve.request", request_id=ctx.request_id,
                           trace_id=ctx.trace_id, route=route,
                           status=status, backend=backend,
                           duration_ms=record["duration_ms"])

    # -- introspection endpoints ----------------------------------------------

    def _healthz(self) -> dict:
        entries, cache_bytes = self.cache.size()
        ledger_path = obs_ledger.ledger_dir()
        with self._pool_lock:
            pool = self._pool
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "inflight": self.inflight(),
            "requests_total":
                obs_metrics.registry().counter("serve.requests").value,
            "cache_root": str(self.cache.root),
            "cache": {"entries": entries, "bytes": cache_bytes},
            "ledger": {"enabled": self.ledger, "dir": str(ledger_path),
                       "reachable": _ledger_reachable(ledger_path)},
            "pool": pool.stats() if pool is not None
            else {"size": self.workers, "alive": 0, "spawned": 0,
                  "crashes": 0, "hangs": 0, "retries": 0},
            "admission": self.admission.stats(),
            "breaker": self.breaker.stats(),
        }

    def _recent(self) -> list[dict]:
        """Flight-recorder contents, most recent request first."""
        with self._recorder_lock:
            entries = list(self._recorder)
        entries.reverse()
        return entries

    def _trace_of(self, needle: str) -> dict:
        """One recorded request by request-id (prefix) or trace-id."""
        if not needle:
            raise _usage("empty request id")
        with self._recorder_lock:
            entries = list(self._recorder)
        for entry in reversed(entries):
            record = entry["record"]
            if record["request_id"].startswith(needle) \
                    or record["trace_id"] == needle:
                return entry
        raise ApiError(404, "usage", 2,
                       f"no recorded request matches {needle!r} "
                       f"(the flight recorder keeps the last "
                       f"{self._recorder.maxlen})")

    def _json(self, status: int, payload: dict,
              headers: dict | None = None) -> tuple[int, str, bytes, dict]:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        return status, "application/json", body, dict(headers or {})

    def _error(self, error: ApiError) -> tuple[int, str, bytes, dict]:
        if error.status >= 500:
            obs_metrics.counter("serve.errors").inc()
        obs_bus.emit_event("serve.error", kind=error.kind,
                           status=error.status, message=str(error)[:200])
        headers = {}
        if error.retry_after is not None:
            # RFC 9110 allows only integer seconds; never hint zero.
            headers["Retry-After"] = str(max(1, int(error.retry_after
                                                    + 0.999)))
        return self._json(error.status, error.payload(), headers)

    # -- endpoints ------------------------------------------------------------

    def _compile(self, request: dict) -> dict:
        parsed = self._parse_common(request)
        started = time.monotonic()
        with self.admission.admit(parsed["deadline"]), \
                self._admission(parsed):
            stream, stream_cached = self._stream(parsed)
            entry, hit, key = self._ensure_entry(stream, parsed)
        reqctx.note(backend=parsed["backend"], cache_hit=hit,
                    stream=stream.name)
        return {
            "key": key,
            "cache_hit": hit,
            "stream": stream.name,
            "stream_cached": stream_cached,
            "backend": parsed["backend"],
            "components": entry.components,
            "build_seconds": entry.meta.get("build_seconds"),
            "wall_seconds": time.monotonic() - started,
        }

    def _run(self, request: dict) -> dict:
        parsed = self._parse_common(request)
        iterations = request.get("iterations", 10)
        if not isinstance(iterations, int) or iterations <= 0:
            raise _usage(f"iterations must be a positive integer, "
                         f"got {iterations!r}")
        if iterations > self.max_iterations:
            raise ApiError(
                429, "resource-exhausted", 3,
                f"iterations ({iterations}) exceeds the server's "
                f"admission cap ({self.max_iterations})")
        route = request.get("route", "auto")
        if route not in ("auto", "native", "interp"):
            raise _usage(f"route must be auto|native|interp, got {route!r}")
        started = time.monotonic()
        degraded = False
        with self.admission.admit(parsed["deadline"]), \
                self._admission(parsed):
            stream, stream_cached = self._stream(parsed)
            hit = None
            key = None
            if route in ("auto", "native"):
                try:
                    entry, hit, key = self._ensure_entry(stream, parsed)
                except (runner.NativeCompileError,
                        CircuitOpenError) as error:
                    if route == "native":
                        raise
                    from repro.faults import degrade
                    degrade.record_fallback("serve /run", str(error))
                    degraded = True
                else:
                    result = self._execute_native(entry, iterations,
                                                  parsed)
            if route == "interp" or degraded:
                result = self._execute_interp(stream, request, parsed,
                                              iterations, started)
        result.update(stream=stream.name, iterations=iterations,
                      cache_hit=hit, key=key, degraded=degraded,
                      stream_cached=stream_cached,
                      backend=parsed["backend"],
                      wall_seconds=time.monotonic() - started)
        obs_metrics.counter(f"serve.run.{result['route']}").inc()
        reqctx.note(backend=parsed["backend"], cache_hit=hit,
                    degraded=degraded, run_route=result["route"],
                    stream=stream.name)
        self._ledger_note(stream, parsed, result)
        return result

    # -- shared request machinery ---------------------------------------------

    def _parse_common(self, request: dict) -> dict:
        if not isinstance(request, dict):
            raise _usage("request body must be a JSON object")
        source = request.get("source")
        benchmark = request.get("benchmark")
        if (source is None) == (benchmark is None):
            raise _usage("exactly one of 'source' or 'benchmark' required")
        if benchmark is not None and benchmark not in BENCHMARKS:
            known = ", ".join(sorted(BENCHMARKS))
            raise _usage(f"unknown benchmark {benchmark!r}; known: {known}")
        backend = request.get("backend", "laminar-c")
        if backend not in BACKENDS:
            raise _usage(f"unknown backend {backend!r}; expected one of "
                         f"{', '.join(BACKENDS)}")
        opt = OptOptions.none() if request.get("no_opt") else OptOptions()
        pipeline = request.get("pipeline")
        if pipeline is not None:
            try:
                opt.pipeline = pipeline
            except (TypeError, ValueError) as error:
                raise _usage(str(error)) from None
        reroll = request.get("reroll")
        if reroll is not None:
            if not isinstance(reroll, bool):
                raise _usage("'reroll' must be a boolean")
            opt.reroll = reroll
        min_repeat = request.get("reroll_min_repeat")
        if min_repeat is not None:
            if not isinstance(min_repeat, int) \
                    or isinstance(min_repeat, bool) or min_repeat < 2:
                raise _usage("'reroll_min_repeat' must be an integer >= 2")
            opt.reroll_min_repeat = min_repeat
        lowering = LoweringOptions(
            eliminate_splitjoin=not request.get("no_elim", False))
        limits = None
        if request.get("limits"):
            try:
                limits = ResourceLimits.parse(request["limits"])
            except ValueError as error:
                raise _usage(str(error)) from None
        deadline = request.get("deadline_ms")
        if deadline is not None:
            if not isinstance(deadline, (int, float)) \
                    or isinstance(deadline, bool) or deadline <= 0:
                raise _usage("'deadline_ms' must be a positive number")
            deadline = deadline / 1e3
        return {"source": source, "benchmark": benchmark,
                "backend": backend, "opt": opt, "lowering": lowering,
                "limits": limits, "deadline": deadline,
                "pipeline": ",".join(opt.pipeline) if opt.pipeline
                else ("none" if request.get("no_opt") else "default")}

    def _effective_limits(self, parsed: dict) -> ResourceLimits:
        effective = self.limits or ResourceLimits()
        if parsed["limits"] is not None:
            effective = effective.merged(parsed["limits"])
        return effective

    def _admission(self, parsed: dict):
        """Thread-local per-request resource limits, if any apply."""
        return use_limits(self._effective_limits(parsed))

    # -- pool-backed execution ------------------------------------------------

    def _execute_native(self, entry, iterations: int,
                        parsed: dict) -> dict:
        """Run a cached binary — in a pool worker when the pool is on."""
        pool = self._worker_pool()
        if pool is None:
            run = runner.run_binary(entry.binary, iterations)
            return {"checksum": f"{run.checksum:016x}",
                    "outputs": run.output_count,
                    "seconds": run.seconds, "route": "native"}
        reply = self._pool_call(pool, {
            "kind": "native", "binary": str(entry.binary),
            "iterations": iterations,
            "limits": self._effective_limits(parsed).spec()})
        return {"checksum": reply["checksum"],
                "outputs": reply["outputs"],
                "seconds": reply["seconds"], "route": "native"}

    def _execute_interp(self, stream: CompiledStream, request: dict,
                        parsed: dict, iterations: int,
                        started: float) -> dict:
        """Run the interpreter — in a pool worker when the pool is on.

        ``stream`` is already frontend-compiled in the daemon (request
        validation must not depend on a worker round-trip); the worker
        re-derives it from the raw spec fields, memoized per worker.
        """
        pool = self._worker_pool()
        if pool is None:
            outputs = stream.run_laminar(
                iterations, parsed["lowering"], parsed["opt"]).outputs
            return {"checksum": f"{checksum_outputs(outputs):016x}",
                    "outputs": len(outputs),
                    "seconds": time.monotonic() - started,
                    "route": "interp"}
        reply = self._pool_call(pool, {
            "kind": "interp", "iterations": iterations,
            "source": request.get("source"),
            "benchmark": request.get("benchmark"),
            "no_opt": bool(request.get("no_opt")),
            "no_elim": bool(request.get("no_elim")),
            "pipeline": request.get("pipeline"),
            "reroll": request.get("reroll"),
            "reroll_min_repeat": request.get("reroll_min_repeat"),
            "limits": self._effective_limits(parsed).spec()})
        return {"checksum": reply["checksum"],
                "outputs": reply["outputs"],
                "seconds": reply["seconds"], "route": "interp"}

    def _pool_call(self, pool: WorkerPool, job: dict) -> dict:
        """Submit one job; job-level errors become the daemon's own
        exception taxonomy so status mapping and auto-route degradation
        behave exactly as they do for in-process execution.
        (:class:`~repro.serve.pool.PoolExhausted` — the worker itself
        died twice — propagates and maps to a 503.)
        """
        reply = pool.submit(job)
        if reply.get("ok"):
            return reply
        kind = reply.get("kind")
        message = str(reply.get("error") or "worker error")
        if kind == "resource-exhausted":
            raise ResourceExhausted(
                str(reply.get("resource") or "resource"),
                float(reply.get("limit") or 0),
                float(reply.get("actual") or 0),
                where=str(reply.get("where") or ""))
        if kind == "native":
            stage_cls = {"compile": runner.NativeCompileError,
                         "run": runner.NativeRunError,
                         "protocol": runner.NativeProtocolError,
                         "stall": runner.NativeStallError}
            cls = stage_cls.get(str(reply.get("stage")),
                                runner.NativeToolchainError)
            raise cls(message)
        if kind == "compile-error":
            raise ApiError(422, "compile-error", 1, message)
        raise ApiError(500, "internal", 1, message)

    def _stream(self, parsed: dict) -> tuple[CompiledStream, bool]:
        """Frontend-compile the request's spec, memoized by source hash."""
        if parsed["benchmark"] is not None:
            memo_key = f"benchmark:{parsed['benchmark']}"
        else:
            memo_key = hashlib.sha256(
                parsed["source"].encode("utf-8")).hexdigest()
        with self._streams_lock:
            stream = self._streams.get(memo_key)
            if stream is not None:
                self._streams.move_to_end(memo_key)
                return stream, True
        if parsed["benchmark"] is not None:
            stream = load_benchmark(parsed["benchmark"])
        else:
            stream = compile_source(parsed["source"], "<serve>")
        with self._streams_lock:
            self._streams[memo_key] = stream
            while len(self._streams) > STREAM_MEMO_SIZE:
                self._streams.popitem(last=False)
        return stream, False

    def _ensure_entry(self, stream: CompiledStream, parsed: dict):
        """Cache lookup with single-flight build on miss.

        Exactly one request compiles a given key at a time; the others
        block on its completion and then read the published entry.
        """
        key, components = native_key(stream, backend=parsed["backend"],
                                     lowering=parsed["lowering"],
                                     opt=parsed["opt"])
        entry = self.cache.lookup(key)
        if entry is not None:
            return entry, True, key
        self.breaker.check(key)
        while True:
            with self._flight_lock:
                event = self._inflight.get(key)
                if event is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            obs_metrics.counter("serve.inflight.coalesced").inc()
            reqctx.note(dedup=True)
            obs_bus.emit_event("serve.dedup", key=key)
            event.wait()
            entry = self.cache.lookup(key)
            if entry is not None:
                return entry, True, key
            # The builder failed; loop to elect a new one.
        try:
            try:
                entry = build_native(stream, key, components,
                                     backend=parsed["backend"],
                                     lowering=parsed["lowering"],
                                     opt=parsed["opt"], cache=self.cache)
            except Exception as error:
                self.breaker.failure(key, str(error))
                raise
            self.breaker.success(key)
            return entry, False, key
        finally:
            with self._flight_lock:
                self._inflight.pop(key, None)
            event.set()

    def _ledger_note(self, stream: CompiledStream, parsed: dict,
                     result: dict) -> None:
        """Best-effort ledger record for one served run."""
        if not self.ledger:
            return
        ctx = reqctx.current()
        body = obs_ledger.make_body(
            "serve", stream.name, spec_hash=stream.source_hash,
            backend=parsed["backend"] if result["route"] == "native"
            else "interp",
            pipeline=parsed["pipeline"],
            iterations=result["iterations"],
            flags={"route": result["route"],
                   "cache_hit": bool(result.get("cache_hit")),
                   "degraded": result["degraded"]},
            checksum=result["checksum"], seconds=result["seconds"],
            metrics={"outputs": result["outputs"],
                     "wall_seconds": result["wall_seconds"]},
            request_id=ctx.request_id if ctx else None,
            trace_id=ctx.trace_id if ctx else None)
        try:
            envelope = obs_ledger.append(body)
        except OSError:
            return
        obs_bus.emit_event("ledger.append",
                           record_id=envelope["record_id"],
                           seq=envelope["seq"], kind="serve",
                           target=stream.name)


def _ledger_reachable(path: Path) -> bool:
    """Whether a ledger append would plausibly succeed: the directory
    (or its nearest existing ancestor) is writable.  No side effects —
    this runs on every ``/healthz`` probe."""
    probe = path
    while not probe.exists():
        parent = probe.parent
        if parent == probe:
            break
        probe = parent
    return os.access(probe, os.W_OK | os.X_OK)


def _parse_body(body: bytes) -> dict:
    try:
        parsed = json.loads(body.decode("utf-8") or "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise _usage(f"request body is not valid JSON: {error}") from None
    if not isinstance(parsed, dict):
        raise _usage("request body must be a JSON object")
    return parsed


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        path = self.path.split("?", 1)[0]
        status, content_type, payload, extra = self.server.owner.handle(
            method, path, body, dict(self.headers))
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self):  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self):  # noqa: N802 - http.server API
        self._dispatch("POST")

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # the structured access log replaces stderr chatter


class _TcpServer(ThreadingHTTPServer):
    daemon_threads = True
    # The socketserver default backlog (5) drops simultaneous connects
    # under concurrent load; AF_UNIX surfaces that as EAGAIN rather
    # than retrying like TCP does.
    request_queue_size = 128
    owner: ServeServer


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = True
    request_queue_size = 128
    owner: ServeServer

    def get_request(self):
        # AF_UNIX peers have no (host, port); BaseHTTPRequestHandler
        # indexes client_address, so hand it a synthetic one.
        request, _address = super().get_request()
        return request, ("unix-socket", 0)
