"""Process-isolated execution workers for the serve daemon.

The daemon must survive anything a single request can do: a segfaulting
native binary, an OOM-killed interpreter run, a wedged execution.  The
:class:`WorkerPool` therefore runs every native/interp execution in a
small pool of long-lived **worker processes**, supervised by the daemon:

* the protocol is one JSON line per job on the worker's stdin and one
  JSON line per reply on a dedicated protocol fd (the worker re-points
  its real stdout at stderr so stray prints cannot corrupt framing);
* a worker that dies mid-job (pipe EOF / nonzero exit status — the
  ``worker-kill`` fault site fabricates exactly this) is reaped and
  respawned, and the job is **retried once** on a fresh worker before
  the failure surfaces as a 503;
* a worker that stops replying (the ``worker-hang`` fault site) is
  caught by the per-job deadline, killed together with its whole
  process group, and handled the same way;
* workers exit on stdin EOF, so a crashed daemon cannot leak them, and
  :meth:`WorkerPool.close` SIGKILLs any straggler process group.

Workers are spawned lazily (the first job pays the interpreter startup)
and each keeps a small memo of frontend-compiled streams, so the hot
path through a worker is one pipe round-trip plus the execution itself
— cheap enough that ``bench_serve.py``'s hot ≥ 10× cold gate holds with
isolation on.

Fault-site draws happen in the *daemon* (per dispatch attempt, from the
ambient :class:`repro.faults.plan.FaultPlan`); the worker merely enacts
the injected outcome (``os._exit`` / sleeping forever), so the real
crash-detection, respawn and retry machinery runs end to end.
"""

from __future__ import annotations

import json
import os
import select
import signal
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

from repro.faults import plan as fault_plan
from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics

DEFAULT_WORKERS = 2
# Outer per-job deadline: must exceed the native runner's own run
# timeout (300 s) so the inner, better-diagnosed timeout fires first.
DEFAULT_JOB_TIMEOUT = 330.0
# How many trailing stderr lines to keep per worker for crash reports.
_STDERR_KEEP = 30
_READ_CHUNK = 65536


class WorkerError(RuntimeError):
    """Base class for pool-level failures (not job-level errors)."""


class WorkerCrashed(WorkerError):
    """The worker process died mid-job (pipe EOF / exit status)."""

    def __init__(self, message: str, exit_code: int | None = None):
        super().__init__(message)
        self.exit_code = exit_code


class WorkerHung(WorkerError):
    """No reply arrived within the job deadline; the worker was killed."""


class PoolExhausted(WorkerError):
    """The job failed on a fresh worker even after the retry."""


def _kill_group(proc: subprocess.Popen) -> None:
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.kill()
        except OSError:
            pass


class _Worker:
    """One supervised worker process and its pipe protocol state."""

    def __init__(self, index: int):
        self.index = index
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [p for p in sys.path if p]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep)
               if p])
        # The worker never appends ledger records (the daemon owns the
        # request's record) and must not inherit a fault-injection spec:
        # injection decisions are drawn once, in the daemon.
        env.pop("REPRO_INJECT", None)
        # Not `-m repro.serve.pool`: runpy would import the package
        # (which itself imports this module) and then re-execute the
        # module as __main__, warning about the double import.
        self.proc = subprocess.Popen(
            [sys.executable, "-c",
             "import sys; from repro.serve.pool import worker_main; "
             "sys.exit(worker_main())"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, start_new_session=True, env=env)
        self.pid = self.proc.pid
        self._buf = b""
        self.jobs = 0
        self.stderr_tail: "deque[str]" = deque(maxlen=_STDERR_KEEP)
        self._stderr_thread = threading.Thread(
            target=self._drain_stderr, daemon=True,
            name=f"repro-pool-stderr-{index}")
        self._stderr_thread.start()

    def _drain_stderr(self) -> None:
        stream = self.proc.stderr
        try:
            for line in iter(stream.readline, b""):
                self.stderr_tail.append(
                    line.decode("utf-8", "replace").rstrip("\n"))
        except (OSError, ValueError):
            pass

    def alive(self) -> bool:
        return self.proc.poll() is None

    def call(self, job: dict, timeout: float) -> dict:
        """One job round-trip; raises on crash/hang, never on job errors."""
        line = json.dumps(job, sort_keys=True).encode("utf-8") + b"\n"
        try:
            self.proc.stdin.write(line)
            self.proc.stdin.flush()
        except (OSError, ValueError) as error:
            raise WorkerCrashed(
                f"worker {self.pid} pipe closed while sending job: "
                f"{error}", self.proc.poll()) from None
        raw = self._read_line(time.monotonic() + timeout)
        try:
            reply = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise WorkerCrashed(
                f"worker {self.pid} wrote an unparseable reply: "
                f"{error}") from None
        if not isinstance(reply, dict):
            raise WorkerCrashed(
                f"worker {self.pid} replied with a non-object")
        self.jobs += 1
        return reply

    def _read_line(self, deadline: float) -> bytes:
        fd = self.proc.stdout.fileno()
        while True:
            newline = self._buf.find(b"\n")
            if newline >= 0:
                line, self._buf = self._buf[:newline], \
                    self._buf[newline + 1:]
                return line
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise WorkerHung(
                    f"worker {self.pid} sent no reply within the job "
                    "deadline")
            ready, _, _ = select.select([fd], [], [],
                                        min(remaining, 0.05))
            if ready:
                try:
                    chunk = os.read(fd, _READ_CHUNK)
                except OSError as error:  # EIO from a dying worker
                    raise WorkerCrashed(
                        f"worker {self.pid} pipe failed mid-job: "
                        f"{error}", self.proc.poll()) from None
                if not chunk:
                    try:
                        status = self.proc.wait(timeout=0.5)
                    except subprocess.TimeoutExpired:
                        status = self.proc.poll()
                    detail = "; ".join(list(self.stderr_tail)[-3:])
                    raise WorkerCrashed(
                        f"worker {self.pid} died mid-job "
                        f"(exit status {status})"
                        + (f": {detail}" if detail else ""), status)
                self._buf += chunk
            elif self.proc.poll() is not None and not self._buf:
                status = self.proc.poll()
                raise WorkerCrashed(
                    f"worker {self.pid} died mid-job "
                    f"(exit status {status})", status)

    def close(self, grace: float = 0.5) -> None:
        try:
            self.proc.stdin.close()  # stdin EOF: workers exit cleanly
        except (OSError, ValueError):
            pass
        deadline = time.monotonic() + grace
        while self.proc.poll() is None and time.monotonic() < deadline:
            time.sleep(0.01)
        if self.proc.poll() is None:
            _kill_group(self.proc)
            self.proc.wait()
        try:
            self.proc.stdout.close()
        except (OSError, ValueError):
            pass


class WorkerPool:
    """A supervised pool of execution workers with retry-once semantics."""

    def __init__(self, size: int = DEFAULT_WORKERS,
                 job_timeout: float = DEFAULT_JOB_TIMEOUT):
        self.size = max(1, size)
        self.job_timeout = job_timeout
        self._idle: list[_Worker] = []
        self._count = 0
        self._spawned = 0
        self._lock = threading.Lock()
        self._free = threading.Condition(self._lock)
        self._closed = False
        # Every pid the pool ever spawned: the chaos harness asserts
        # none survive close().
        self.all_pids: list[int] = []
        self.crashes = 0
        self.hangs = 0
        self.retries = 0

    # -- worker lifecycle -----------------------------------------------------

    def _spawn(self) -> _Worker:
        worker = _Worker(self._spawned)
        with self._lock:
            self._spawned += 1
            self.all_pids.append(worker.pid)
        obs_metrics.counter("serve.pool.spawn").inc()
        return worker

    def _checkout(self) -> _Worker:
        with self._free:
            while True:
                if self._closed:
                    raise WorkerError("worker pool is closed")
                while self._idle:
                    worker = self._idle.pop()
                    if worker.alive():
                        return worker
                    # Died while idle (OOM killer, injected kill that
                    # landed between jobs): reap silently and respawn.
                    self._count -= 1
                    worker.close(grace=0.0)
                if self._count < self.size:
                    self._count += 1
                    break
                self._free.wait(timeout=0.5)
        try:
            return self._spawn()
        except BaseException:
            with self._free:
                self._count -= 1
                self._free.notify()
            raise

    def _checkin(self, worker: _Worker) -> None:
        with self._free:
            if self._closed:
                worker.close(grace=0.0)
                self._count -= 1
            else:
                self._idle.append(worker)
            self._free.notify()

    def _discard(self, worker: _Worker) -> None:
        worker.close(grace=0.0)
        with self._free:
            self._count -= 1
            self._free.notify()

    # -- job dispatch ---------------------------------------------------------

    def submit(self, job: dict, timeout: float | None = None) -> dict:
        """Run one job on a worker; crash/hang → respawn + retry once.

        Returns the worker's reply dict (``{"ok": true, ...}`` or a
        structured job-level error — the caller maps those to its own
        error model).  Raises :class:`PoolExhausted` when the job failed
        a second time on a fresh worker.
        """
        deadline = timeout if timeout is not None else self.job_timeout
        plan = fault_plan.current_plan()
        last_error: WorkerError | None = None
        for attempt in range(2):
            dispatch = dict(job)
            # One injection draw per dispatch attempt, in the daemon:
            # the retry is a fresh draw, so a campaign at kill-rate r
            # loses a request only with probability ~r².
            if plan.should_fire("worker-kill"):
                dispatch["inject"] = "kill"
            elif plan.should_fire("worker-hang"):
                dispatch["inject"] = "hang"
            worker = self._checkout()
            pid = worker.pid
            try:
                reply = worker.call(dispatch, deadline)
            except WorkerCrashed as error:
                self._discard(worker)
                self.crashes += 1
                last_error = error
                obs_metrics.counter("serve.pool.crash").inc()
                obs_bus.emit_event("pool.worker.crash", pid=pid,
                                   exit_code=error.exit_code,
                                   attempt=attempt,
                                   injected="inject" in dispatch)
            except WorkerHung as error:
                self._discard(worker)
                self.hangs += 1
                last_error = error
                obs_metrics.counter("serve.pool.hang").inc()
                obs_bus.emit_event("pool.worker.hang", pid=pid,
                                   attempt=attempt,
                                   injected="inject" in dispatch)
            else:
                self._checkin(worker)
                obs_metrics.counter("serve.pool.jobs").inc()
                if attempt:
                    obs_metrics.counter("serve.pool.retry.success").inc()
                return reply
            if attempt == 0:
                self.retries += 1
                obs_metrics.counter("serve.pool.retry").inc()
        assert last_error is not None
        raise PoolExhausted(
            f"job failed on two workers in a row: {last_error}")

    # -- introspection / shutdown ---------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {"size": self.size, "alive": self._count,
                    "spawned": self._spawned, "crashes": self.crashes,
                    "hangs": self.hangs, "retries": self.retries}

    def live_pids(self) -> list[int]:
        """Spawned worker pids whose process still exists (diagnostics)."""
        alive = []
        for pid in self.all_pids:
            try:
                os.kill(pid, 0)
            except (ProcessLookupError, PermissionError):
                continue
            alive.append(pid)
        return alive

    def close(self) -> None:
        with self._free:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            self._free.notify_all()
        for worker in idle:
            worker.close()
        # Belt and braces: no worker process group may outlive the pool.
        deadline = time.monotonic() + 2.0
        while self.live_pids() and time.monotonic() < deadline:
            time.sleep(0.02)
        for pid in self.live_pids():
            try:
                os.killpg(os.getpgid(pid), signal.SIGKILL)
            except (ProcessLookupError, PermissionError, OSError):
                pass


# -- the worker side ----------------------------------------------------------

def _job_options(job: dict):
    """Rebuild (LoweringOptions, OptOptions) from the job's raw fields."""
    from repro.lir import LoweringOptions
    from repro.opt import OptOptions

    opt = OptOptions.none() if job.get("no_opt") else OptOptions()
    if job.get("pipeline") is not None:
        opt.pipeline = job["pipeline"]
    if job.get("reroll") is not None:
        opt.reroll = bool(job["reroll"])
    if job.get("reroll_min_repeat") is not None:
        opt.reroll_min_repeat = int(job["reroll_min_repeat"])
    lowering = LoweringOptions(
        eliminate_splitjoin=not job.get("no_elim", False))
    return lowering, opt


_worker_streams: dict = {}


def _worker_stream(job: dict):
    """Frontend-compile the job's spec, memoized per worker process."""
    from repro.api import compile_source
    from repro.suite import load_benchmark

    if job.get("benchmark") is not None:
        memo_key = f"benchmark:{job['benchmark']}"
    else:
        import hashlib
        memo_key = hashlib.sha256(
            job["source"].encode("utf-8")).hexdigest()
    stream = _worker_streams.get(memo_key)
    if stream is None:
        if job.get("benchmark") is not None:
            stream = load_benchmark(job["benchmark"])
        else:
            stream = compile_source(job["source"], "<pool-worker>")
        _worker_streams[memo_key] = stream
        if len(_worker_streams) > 64:
            _worker_streams.pop(next(iter(_worker_streams)))
    return stream


def _execute_job(job: dict) -> dict:
    """Run one job; returns the success payload (exceptions propagate)."""
    from repro.backend import runner
    from repro.backend.common import checksum_outputs

    iterations = int(job["iterations"])
    if job["kind"] == "native":
        run = runner.run_binary(Path(job["binary"]), iterations,
                                timeout=float(job.get(
                                    "run_timeout",
                                    runner.DEFAULT_RUN_TIMEOUT)))
        return {"ok": True, "checksum": f"{run.checksum:016x}",
                "outputs": run.output_count, "seconds": run.seconds}
    if job["kind"] == "interp":
        started = time.monotonic()
        stream = _worker_stream(job)
        lowering, opt = _job_options(job)
        outputs = stream.run_laminar(iterations, lowering, opt).outputs
        return {"ok": True,
                "checksum": f"{checksum_outputs(outputs):016x}",
                "outputs": len(outputs),
                "seconds": time.monotonic() - started}
    raise ValueError(f"unknown job kind {job.get('kind')!r}")


def _job_error(error: BaseException) -> dict:
    """Map one job-level exception to a structured reply."""
    from repro.backend import runner
    from repro.faults import ResourceExhausted
    from repro.frontend.errors import CompileError

    if isinstance(error, ResourceExhausted):
        return {"ok": False, "kind": "resource-exhausted",
                "error": error.message, "resource": error.resource,
                "limit": error.limit, "actual": error.actual,
                "where": error.where}
    if isinstance(error, runner.NativeToolchainError):
        return {"ok": False, "kind": "native", "stage": error.stage,
                "error": str(error)}
    if isinstance(error, CompileError):
        return {"ok": False, "kind": "compile-error",
                "error": error.format()}
    return {"ok": False, "kind": "internal",
            "error": f"{type(error).__name__}: {error}"}


def worker_main() -> int:
    """The worker loop: JSON jobs on stdin, JSON replies on stdout.

    The protocol fd is a dup of the original stdout; the real fd 1 is
    re-pointed at stderr so that any stray ``print`` in library code
    cannot corrupt the framing.  Exits 0 on stdin EOF.
    """
    proto = os.fdopen(os.dup(1), "w", buffering=1, encoding="utf-8")
    os.dup2(2, 1)
    sys.stdout = sys.stderr
    from repro.faults import ResourceLimits, use_limits

    for raw in sys.stdin.buffer:
        try:
            job = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            proto.write(json.dumps(
                {"ok": False, "kind": "internal",
                 "error": f"bad job line: {error}"}) + "\n")
            continue
        inject = job.get("inject")
        if inject == "kill":
            # Enact the injected crash exactly as the OOM killer would:
            # no cleanup, no reply, a bare SIGKILL-style exit.
            os._exit(137)
        if inject == "hang":
            time.sleep(3600)
        try:
            limits = ResourceLimits.parse(job["limits"]) \
                if job.get("limits") else ResourceLimits()
            with use_limits(limits):
                reply = _execute_job(job)
        except BaseException as error:  # noqa: BLE001 - the job boundary
            reply = _job_error(error)
        proto.write(json.dumps(reply, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(worker_main())
