"""A seeded chaos campaign against a live serve daemon.

``python -m repro chaos`` stands up a real :class:`ServeServer` (Unix
socket, worker pool on), points ``--clients`` concurrent
:class:`ServeClient` threads at it, and — while they hammer ``/run`` —
injects failures through the ambient fault plan: ``worker-kill`` dies
mid-job exactly like the OOM killer, ``worker-hang`` wedges a worker
until the pool's deadline fires, and any extra ``--inject`` sites
(``cc-crash``, ``bin-garbage``, …) exercise the PR 5 seams underneath.

The harness then asserts the crash-safety contract end to end:

* **zero bit-wrong responses** — every 200 carries exactly the oracle
  checksum (computed once, in-process, before any fault is armed);
* **bounded availability loss** — each logical request may retry
  (honouring ``Retry-After``), and ≥ 99% must eventually succeed;
* **the daemon never restarts** — one process, one server object,
  answering ``/healthz`` after the storm;
* **zero leaks** — no surviving worker processes and no new
  ``repro_native_*`` / ``repro_cache_build_*`` temp directories.

Chaos engineering only earns its keep when runs are comparable, so the
campaign is seeded: the fault plan's per-site RNG streams and the
request mix both derive from ``--seed``.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.api import compile_source
from repro.backend.common import checksum_outputs
from repro.cache import ArtifactCache
from repro.faults import FaultPlan, inject
from repro.serve.client import ServeClient
from repro.serve.daemon import ServeServer

__all__ = ["ChaosReport", "run_campaign"]

DEFAULT_REQUESTS = 200
DEFAULT_CLIENTS = 8
DEFAULT_KILL_RATE = 0.1
DEFAULT_ITERATIONS = 8
MIN_SUCCESS_RATE = 0.99
# Attempts per logical request: first try + retries.  Generous on
# purpose — the contract is *eventual* success under injected faults.
MAX_ATTEMPTS = 6

# Temp-dir prefixes that indicate a leak when they survive the campaign
# (native build dirs and cache publish stages).
LEAK_PREFIXES = ("repro_native_", "repro_cache_build_")

_CHAOS_TEMPLATE = """
void->int filter Count%(tag)s() {
  int x;
  init { x = %(start)s; }
  work push 1 {
    push(x);
    x = x + 2;
  }
}

int->void filter Drop%(tag)s() {
  work pop 1 { println(pop()); }
}

void->void pipeline Chaos%(tag)s {
  add Count%(tag)s();
  add Drop%(tag)s();
}
"""


@dataclass
class ChaosReport:
    """Outcome of one campaign; ``ok`` is the pass/fail verdict."""

    seed: int
    requests: int
    issued: int = 0
    succeeded: int = 0
    failed: int = 0
    bit_wrong: int = 0
    retries: int = 0
    status_counts: dict = field(default_factory=dict)
    injected: dict = field(default_factory=dict)
    pool: dict = field(default_factory=dict)
    orphan_workers: int = 0
    leaked_dirs: list = field(default_factory=list)
    daemon_alive_after: bool = False
    wall_seconds: float = 0.0

    @property
    def success_rate(self) -> float:
        return self.succeeded / self.issued if self.issued else 1.0

    @property
    def ok(self) -> bool:
        return (self.bit_wrong == 0
                and self.success_rate >= MIN_SUCCESS_RATE
                and self.orphan_workers == 0
                and not self.leaked_dirs
                and self.daemon_alive_after)

    def to_dict(self) -> dict:
        return {
            "seed": self.seed, "requests": self.requests,
            "issued": self.issued, "succeeded": self.succeeded,
            "failed": self.failed, "bit_wrong": self.bit_wrong,
            "retries": self.retries,
            "success_rate": round(self.success_rate, 5),
            "status_counts": dict(sorted(self.status_counts.items())),
            "injected": self.injected, "pool": self.pool,
            "orphan_workers": self.orphan_workers,
            "leaked_dirs": self.leaked_dirs,
            "daemon_alive_after": self.daemon_alive_after,
            "wall_seconds": round(self.wall_seconds, 3),
            "ok": self.ok,
        }


def _snapshot_tmp() -> set[str]:
    tmp = Path(tempfile.gettempdir())
    try:
        return {entry.name for entry in tmp.iterdir()
                if entry.name.startswith(LEAK_PREFIXES)}
    except OSError:
        return set()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, PermissionError):
        return False
    return True


def run_campaign(*, seed: int = 0, requests: int = DEFAULT_REQUESTS,
                 clients: int = DEFAULT_CLIENTS,
                 kill_rate: float = DEFAULT_KILL_RATE,
                 hang_rate: float = 0.0,
                 duration: float | None = None,
                 iterations: int = DEFAULT_ITERATIONS,
                 workers: int = 2, variants: int = 4,
                 route: str = "auto", extra_inject: str = "",
                 progress=None) -> ChaosReport:
    """Run one seeded chaos campaign; returns its :class:`ChaosReport`.

    ``duration`` optionally caps the issuing phase in wall-clock
    seconds (requests not yet started by then are simply not issued —
    they do not count against availability).  ``extra_inject`` is a
    ``site:rate`` spec layered on top of the worker sites.
    """
    report = ChaosReport(seed=seed, requests=requests)
    started = time.monotonic()
    tmp_before = _snapshot_tmp()

    # The oracle: ground-truth checksums straight from the interpreter,
    # computed before any fault plan is armed.
    sources = [_CHAOS_TEMPLATE % {"tag": f"V{index}",
                                  "start": seed % 97 + index}
               for index in range(max(1, variants))]
    oracle = {}
    for source in sources:
        outputs = compile_source(source, "<chaos>") \
            .run_laminar(iterations).outputs
        oracle[source] = f"{checksum_outputs(outputs):016x}"

    spec_parts = []
    if kill_rate > 0:
        spec_parts.append(f"worker-kill:{kill_rate}")
    if hang_rate > 0:
        spec_parts.append(f"worker-hang:{hang_rate}")
    if extra_inject:
        spec_parts.append(extra_inject)
    plan = FaultPlan.parse(",".join(spec_parts), seed=seed) \
        if spec_parts else FaultPlan(seed=seed)

    root = Path(tempfile.mkdtemp(prefix="repro_chaos_"))
    # A short pool job deadline keeps injected worker-hangs from
    # stalling the campaign: a hang costs seconds, not the production
    # 330 s patience.
    server = ServeServer(socket_path=root / "chaos.sock",
                         cache=ArtifactCache(root / "cache"),
                         ledger=False, workers=workers,
                         job_timeout=10.0).start()
    lock = threading.Lock()
    next_index = 0
    stop_at = started + duration if duration is not None else None

    def take_index() -> int | None:
        nonlocal next_index
        with lock:
            if next_index >= requests:
                return None
            if stop_at is not None and time.monotonic() >= stop_at:
                return None
            index = next_index
            next_index += 1
        return index

    def count_status(status: int) -> None:
        with lock:
            key = str(status)
            report.status_counts[key] = \
                report.status_counts.get(key, 0) + 1

    def client_loop() -> None:
        handle = ServeClient(socket_path=server.socket_path,
                             read_timeout=60.0)
        while True:
            index = take_index()
            if index is None:
                return
            source = sources[index % len(sources)]
            outcome = "failed"
            for attempt in range(MAX_ATTEMPTS):
                if attempt:
                    with lock:
                        report.retries += 1
                try:
                    response = handle.run(source=source, route=route,
                                          iterations=iterations)
                except OSError:
                    time.sleep(0.05 * (attempt + 1))
                    continue
                count_status(response.status)
                if response.ok:
                    if response.json["checksum"] != oracle[source]:
                        outcome = "bit_wrong"
                    else:
                        outcome = "succeeded"
                    break
                retry_after = response.headers.get("retry-after")
                try:
                    pause = min(float(retry_after), 1.0) \
                        if retry_after else 0.05 * (attempt + 1)
                except ValueError:
                    pause = 0.05 * (attempt + 1)
                time.sleep(pause)
            with lock:
                report.issued += 1
                if outcome == "succeeded":
                    report.succeeded += 1
                elif outcome == "bit_wrong":
                    report.bit_wrong += 1
                    report.failed += 1
                else:
                    report.failed += 1
            if progress is not None and report.issued % 25 == 0:
                progress(report)

    with inject(plan):
        threads = [threading.Thread(target=client_loop,
                                    name=f"chaos-client-{index}",
                                    daemon=True)
                   for index in range(max(1, clients))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    # The daemon must still be the same live process/server: one last
    # health probe before teardown (a restarted daemon would have lost
    # the Unix socket and its in-memory counters).
    try:
        health = ServeClient(socket_path=server.socket_path).healthz()
        report.daemon_alive_after = health.ok
        report.pool = health.json.get("pool", {})
    except OSError:
        report.daemon_alive_after = False

    pool = server._worker_pool() if workers > 0 else None
    worker_pids = list(pool.all_pids) if pool is not None else []
    server.stop()
    deadline = time.monotonic() + 2.0
    while any(_pid_alive(pid) for pid in worker_pids) \
            and time.monotonic() < deadline:
        time.sleep(0.02)
    report.orphan_workers = sum(1 for pid in worker_pids
                                if _pid_alive(pid))
    report.injected = dict(plan.fired)
    shutil.rmtree(root, ignore_errors=True)

    # Leak check: new native/build temp dirs that survived the campaign
    # (give unlinks a moment to land on slow filesystems).
    time.sleep(0.1)
    report.leaked_dirs = sorted(_snapshot_tmp() - tmp_before)
    report.wall_seconds = time.monotonic() - started
    return report
