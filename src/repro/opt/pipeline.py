"""The optimization pipeline and its statistics.

``optimize`` runs the standard pass order to a fixpoint:

    copy-prop → promote (mem2reg/SROA) → {const-fold, CSE, DCE}*

Each switch can be disabled for the E7 ablation benchmarks.  The returned
:class:`OptStats` records per-pass effect sizes and before/after op counts,
which the experiment drivers report alongside timings.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from repro.lir.program import Program
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.opt.carries import (eliminate_dead_carries,
                               specialize_constant_carries)
from repro.opt.passes import (common_subexpression_elimination,
                              constant_folding, copy_propagation,
                              dead_code_elimination)
from repro.opt.promote import PromoteOptions, promote_state
from repro.opt.schedule_ops import schedule_for_pressure

_FIXPOINT_ROUNDS = 64


@dataclass
class OptOptions:
    copy_propagation: bool = True
    promote_state: bool = True
    constant_folding: bool = True
    carry_specialization: bool = True
    cse: bool = True
    dce: bool = True
    schedule_pressure: bool = True
    promote: PromoteOptions = field(default_factory=PromoteOptions)

    @classmethod
    def none(cls) -> "OptOptions":
        return cls(copy_propagation=False, promote_state=False,
                   constant_folding=False, carry_specialization=False,
                   cse=False, dce=False, schedule_pressure=False)


@dataclass
class OptStats:
    ops_before: dict[str, int] = field(default_factory=dict)
    ops_after: dict[str, int] = field(default_factory=dict)
    moves_propagated: int = 0
    slots_promoted: int = 0
    ops_folded: int = 0
    carries_specialized: int = 0
    ops_deduplicated: int = 0
    ops_removed_dead: int = 0
    # Fixpoint diagnostics: number of rounds actually run, and whether a
    # round with zero changes was reached within ``_FIXPOINT_ROUNDS``
    # (``False`` means the pipeline gave up while still making progress).
    fixpoint_rounds: int = 0
    converged: bool = True

    @property
    def steady_reduction(self) -> float:
        before = self.ops_before.get("steady", 0)
        if before == 0:
            return 0.0
        return 1.0 - self.ops_after.get("steady", 0) / before


def _section_sizes(program: Program) -> dict[str, int]:
    return {title: len(ops) for title, ops in program.sections()}


def _run_pass(name: str, fn, program: Program,
              round_index: int | None = None) -> int:
    """One pass invocation: a span plus a per-pass op-delta counter."""
    attrs = {} if round_index is None else {"round": round_index}
    with trace.span(f"opt.{name}", **attrs) as span:
        delta = fn(program)
        span.annotate(ops=delta)
    obs_metrics.counter(f"opt.{name}.ops").inc(delta)
    return delta


def optimize(program: Program,
             options: OptOptions | None = None) -> OptStats:
    """Optimize ``program`` in place and return pass statistics."""
    options = options or OptOptions()
    with trace.span("optimize", program=program.name) as span:
        stats = OptStats(ops_before=_section_sizes(program))

        if options.copy_propagation:
            stats.moves_propagated += _run_pass(
                "copy_propagation", copy_propagation, program)
        if options.promote_state:
            with trace.span("opt.promote_state") as promote_span:
                promoted = promote_state(program, options.promote)
                promote_span.annotate(slots=promoted)
            stats.slots_promoted += promoted
            obs_metrics.counter("opt.promote_state.slots").inc(promoted)

        converged = False
        for round_index in range(_FIXPOINT_ROUNDS):
            stats.fixpoint_rounds = round_index + 1
            changed = 0
            if options.constant_folding:
                folded = _run_pass("constant_folding", constant_folding,
                                   program, round_index)
                stats.ops_folded += folded
                changed += folded
            if options.carry_specialization:
                specialized = _run_pass("specialize_constant_carries",
                                        specialize_constant_carries,
                                        program, round_index)
                stats.carries_specialized += specialized
                changed += specialized
                dead = _run_pass("eliminate_dead_carries",
                                 eliminate_dead_carries, program,
                                 round_index)
                stats.carries_specialized += dead
                changed += dead
            if options.cse:
                deduped = _run_pass("common_subexpression_elimination",
                                    common_subexpression_elimination,
                                    program, round_index)
                stats.ops_deduplicated += deduped
                changed += deduped
            if options.dce:
                removed = _run_pass("dead_code_elimination",
                                    dead_code_elimination, program,
                                    round_index)
                stats.ops_removed_dead += removed
                changed += removed
            if changed == 0:
                converged = True
                break
        stats.converged = converged
        obs_metrics.gauge("opt.fixpoint_rounds").set(stats.fixpoint_rounds)
        if not converged:
            obs_metrics.counter("opt.nonconvergent").inc()
            warnings.warn(
                f"optimizer did not reach a fixpoint on {program.name!r} "
                f"within {_FIXPOINT_ROUNDS} rounds; results are valid but "
                "possibly under-optimized", RuntimeWarning, stacklevel=2)

        if options.schedule_pressure:
            with trace.span("opt.schedule_for_pressure"):
                schedule_for_pressure(program)

        stats.ops_after = _section_sizes(program)
        span.annotate(rounds=stats.fixpoint_rounds, converged=converged,
                      steady_before=stats.ops_before.get("steady", 0),
                      steady_after=stats.ops_after.get("steady", 0))
        obs_metrics.gauge("opt.steady_ops_before").set(
            stats.ops_before.get("steady", 0))
        obs_metrics.gauge("opt.steady_ops_after").set(
            stats.ops_after.get("steady", 0))
    return stats
