"""The pass manager, the optimization pipeline and its statistics.

``optimize`` builds a :class:`PassManager` and runs the configured
pipeline.  The default order matches the classic sequence::

    copy-prop → promote (mem2reg/SROA) → re-roll (counted loop regions)
    → {const-fold, carries, CSE, DCE}* → pressure scheduling

but the bracketed fixpoint group no longer rescans the whole program
each round: the passes share a :class:`repro.lir.analysis.ProgramIndex`
and sparse worklists (see ``repro.opt.passes``), so after the first
round each pass only visits ops something actually changed.  The group
converges when a round drains every worklist without a change.

The manager tracks which passes preserve the def-use index and which
invalidate it: state promotion and pressure scheduling restructure the
section lists, so the index is rebuilt (and the worklists reseeded)
before the next index-consuming pass.  ``OptOptions.pipeline`` accepts a
custom pass ordering (the CLI's ``--opt-pipeline``); each switch can
still be disabled individually for the E7 ablation benchmarks.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.faults import limits as faults_limits
from repro.faults import plan as fault_plan
from repro.lir.analysis import ProgramIndex
from repro.lir.program import Program
from repro.lir.verify import verify_index
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.opt.carries import remove_dead_carries, specialize_carries
from repro.opt.passes import (FixpointState, eliminate_common_subexpressions,
                              eliminate_dead_code, eliminate_dead_code_dense,
                              fold_constants, propagate_copies,
                              propagate_copies_dense)
from repro.opt.promote import PromoteOptions, promote_state
from repro.opt.reroll import reroll_steady
from repro.opt.schedule_ops import schedule_for_pressure

_FIXPOINT_ROUNDS = 64

# Canonical pass names plus the short aliases --opt-pipeline accepts.
_PASS_ALIASES = {
    "cp": "copy_propagation",
    "copy_propagation": "copy_propagation",
    "promote": "promote_state",
    "promote_state": "promote_state",
    "reroll": "reroll_steady",
    "reroll_steady": "reroll_steady",
    "fold": "constant_folding",
    "constant_folding": "constant_folding",
    "carry": "carries",
    "carries": "carries",
    "cse": "common_subexpression_elimination",
    "common_subexpression_elimination": "common_subexpression_elimination",
    "dce": "dead_code_elimination",
    "dead_code_elimination": "dead_code_elimination",
    "schedule": "schedule_for_pressure",
    "schedule_for_pressure": "schedule_for_pressure",
}

# Steps that may participate in a fixpoint group: contiguous runs of
# these in the pipeline iterate together until quiescent.
_FIXPOINT_STEPS = frozenset((
    "constant_folding", "carries", "common_subexpression_elimination",
    "dead_code_elimination"))

# Which OptStats aggregate each pass feeds (kept for backward compat
# with the seed pipeline's reporting).
_AGGREGATE_FIELD = {
    "copy_propagation": "moves_propagated",
    "promote_state": "slots_promoted",
    "reroll_steady": "regions_rerolled",
    "constant_folding": "ops_folded",
    "specialize_constant_carries": "carries_specialized",
    "eliminate_dead_carries": "carries_specialized",
    "common_subexpression_elimination": "ops_deduplicated",
    "dead_code_elimination": "ops_removed_dead",
}


def parse_pipeline(spec: str) -> tuple[str, ...]:
    """Parse a ``--opt-pipeline`` spec like ``cp,promote,fold,cse,dce``.

    Returns canonical pass names; raises ``ValueError`` on an unknown
    pass so the CLI can reject it up front.
    """
    names = []
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        canonical = _PASS_ALIASES.get(token)
        if canonical is None:
            known = ", ".join(sorted(set(_PASS_ALIASES)))
            raise ValueError(
                f"unknown optimizer pass {token!r}; known passes: {known}")
        names.append(canonical)
    return tuple(names)


@dataclass
class OptOptions:
    copy_propagation: bool = True
    promote_state: bool = True
    # Re-roll repeated firing runs in the unrolled steady section into
    # counted LoopRegions (see repro.opt.reroll); ``reroll_min_repeat``
    # is the smallest repeat count worth collapsing.
    reroll: bool = True
    reroll_min_repeat: int = 4
    constant_folding: bool = True
    carry_specialization: bool = True
    cse: bool = True
    dce: bool = True
    schedule_pressure: bool = True
    promote: PromoteOptions = field(default_factory=PromoteOptions)
    # Fixpoint round cap; None means the module default (_FIXPOINT_ROUNDS).
    max_rounds: int | None = None
    # Explicit pass ordering (canonical names or aliases).  None derives
    # the classic order from the boolean switches above; when set, the
    # switches are ignored and exactly these passes run.
    pipeline: tuple[str, ...] | None = None
    # Check the incremental def-use index against a from-scratch rebuild
    # after every pass (slow; for tests and pass development).
    verify_analyses: bool = False

    def __setattr__(self, name: str, value: object) -> None:
        # Every pipeline assignment path — the constructor included —
        # coerces to a canonical tuple[str, ...] and validates pass names
        # up front, so API users get the same error the CLI's
        # --opt-pipeline type raises instead of a late TypeError deep in
        # the lowering cache.
        if name == "pipeline" and value is not None:
            if isinstance(value, str):
                value = parse_pipeline(value)
            else:
                try:
                    spec = ",".join(value)  # type: ignore[arg-type]
                except TypeError:
                    raise TypeError(
                        "OptOptions.pipeline must be a string or an "
                        f"iterable of pass names, got {value!r}") from None
                value = parse_pipeline(spec)
        super().__setattr__(name, value)

    @classmethod
    def none(cls) -> "OptOptions":
        return cls(copy_propagation=False, promote_state=False,
                   reroll=False, constant_folding=False,
                   carry_specialization=False, cse=False, dce=False,
                   schedule_pressure=False)

    def resolved_pipeline(self) -> tuple[str, ...]:
        if self.pipeline is not None:
            resolved = []
            for name in self.pipeline:
                canonical = _PASS_ALIASES.get(name)
                if canonical is None:
                    raise ValueError(f"unknown optimizer pass {name!r}")
                resolved.append(canonical)
            return tuple(resolved)
        steps = []
        if self.copy_propagation:
            steps.append("copy_propagation")
        if self.promote_state:
            steps.append("promote_state")
        if self.reroll:
            steps.append("reroll_steady")
        if self.constant_folding:
            steps.append("constant_folding")
        if self.carry_specialization:
            steps.append("carries")
        if self.cse:
            steps.append("common_subexpression_elimination")
        if self.dce:
            steps.append("dead_code_elimination")
        if self.schedule_pressure:
            steps.append("schedule_for_pressure")
        return tuple(steps)


@dataclass
class PassStat:
    """Per-pass totals across the whole pipeline run."""

    name: str
    runs: int = 0
    changes: int = 0


@dataclass
class OptStats:
    ops_before: dict[str, int] = field(default_factory=dict)
    ops_after: dict[str, int] = field(default_factory=dict)
    moves_propagated: int = 0
    slots_promoted: int = 0
    regions_rerolled: int = 0
    ops_folded: int = 0
    carries_specialized: int = 0
    ops_deduplicated: int = 0
    ops_removed_dead: int = 0
    # Fixpoint diagnostics: number of rounds actually run, and whether a
    # round with zero changes was reached within the round cap
    # (``False`` means the pipeline gave up while still making progress).
    fixpoint_rounds: int = 0
    converged: bool = True
    # Per-pass totals in first-run order (the report table).
    pass_stats: list[PassStat] = field(default_factory=list)
    # How often the def-use index was (re)built, and the optimize wall
    # time (drives bench_compile_cost's speedup-vs-seed column).
    analysis_rebuilds: int = 0
    optimize_seconds: float = 0.0

    @property
    def steady_reduction(self) -> float:
        before = self.ops_before.get("steady", 0)
        if before == 0:
            return 0.0
        return 1.0 - self.ops_after.get("steady", 0) / before


def _section_sizes(program: Program) -> dict[str, int]:
    return {title: len(ops) for title, ops in program.sections()}


class PassManager:
    """Runs a pass pipeline over a shared, incrementally-updated index.

    Responsibilities: build the :class:`ProgramIndex` lazily (first pass
    that needs it), rebuild it after passes that restructure the section
    lists (promotion, scheduling), drive contiguous fixpoint-capable
    passes to quiescence via their sparse worklists, and record per-pass
    statistics, spans and metrics.
    """

    def __init__(self, program: Program, options: OptOptions):
        self.program = program
        self.options = options
        self.stats = OptStats(ops_before=_section_sizes(program))
        self.index: ProgramIndex | None = None
        self.state: FixpointState | None = None
        self._pass_stats: dict[str, PassStat] = {}

    # -- analysis lifecycle --------------------------------------------------

    def _ensure_state(self) -> FixpointState:
        if self.state is None:
            with trace.span("opt.analysis.build"):
                self.index = ProgramIndex(self.program)
                self.state = FixpointState(self.program, self.index)
            self.stats.analysis_rebuilds += 1
            obs_metrics.counter("opt.analysis.rebuilds").inc()
        return self.state

    def _invalidate(self) -> None:
        """Forget the index after a pass restructured the sections."""
        if self.index is not None:
            self.index.compact()
        self.index = None
        self.state = None

    # -- bookkeeping ---------------------------------------------------------

    def _record(self, name: str, delta: int) -> None:
        stat = self._pass_stats.get(name)
        if stat is None:
            stat = self._pass_stats[name] = PassStat(name)
        stat.runs += 1
        stat.changes += delta
        aggregate = _AGGREGATE_FIELD.get(name)
        if aggregate is not None:
            setattr(self.stats, aggregate,
                    getattr(self.stats, aggregate) + delta)

    def _run_pass(self, name: str, fn, round_index: int | None = None,
                  worklist_size: int | None = None) -> int:
        attrs = {} if round_index is None else {"round": round_index}
        with trace.span(f"opt.{name}", **attrs) as span:
            delta = fn()
            span.annotate(ops=delta)
        obs_metrics.counter(f"opt.{name}.ops").inc(delta)
        if worklist_size is not None:
            obs_metrics.histogram(f"opt.{name}.worklist").observe(
                worklist_size)
        self._record(name, delta)
        if self.options.verify_analyses and self.index is not None:
            verify_index(self.program, self.index)
        return delta

    # -- steps ---------------------------------------------------------------

    def _step_copy_propagation(self,
                               round_index: int | None = None) -> int:
        if self.state is None:
            # No index yet (copy-prop heads the default pipeline, right
            # before promotion invalidates any index): the dense sweep is
            # much cheaper than building a program-wide index for it.
            return self._run_pass(
                "copy_propagation",
                lambda: propagate_copies_dense(self.program))
        state = self.state
        return self._run_pass("copy_propagation",
                              lambda: propagate_copies(state))

    def _step_promote_state(self, round_index: int | None = None) -> int:
        # Promotion walks the raw section lists and rewrites them, so it
        # needs a compacted program and invalidates the index after.
        if self.index is not None:
            self.index.compact()
        with trace.span("opt.promote_state") as span:
            promoted = promote_state(self.program, self.options.promote)
            span.annotate(slots=promoted)
        obs_metrics.counter("opt.promote_state.slots").inc(promoted)
        self._record("promote_state", promoted)
        if promoted:
            self._invalidate()
        if self.options.verify_analyses and self.index is not None:
            verify_index(self.program, self.index)
        return promoted

    def _step_reroll(self, round_index: int | None = None) -> int:
        # Re-rolling rewrites the raw steady list (and adds gather/
        # scatter slots), so like promotion it wants a compacted program
        # and invalidates the index when it fires.
        if self.index is not None:
            self.index.compact()
        with trace.span("opt.reroll_steady") as span:
            regions = reroll_steady(
                self.program, self.options.reroll_min_repeat)
            span.annotate(regions=regions)
        obs_metrics.counter("opt.reroll_steady.regions").inc(regions)
        self._record("reroll_steady", regions)
        if regions:
            self._invalidate()
        if self.options.verify_analyses and self.index is not None:
            verify_index(self.program, self.index)
        return regions

    def _step_constant_folding(self, round_index: int | None = None) -> int:
        state = self._ensure_state()
        if round_index is not None and not state.pending_fold():
            return 0
        return self._run_pass("constant_folding",
                              lambda: fold_constants(state),
                              round_index, worklist_size=len(state.fold))

    def _step_carries(self, round_index: int | None = None) -> int:
        state = self._ensure_state()
        if round_index is not None and not state.carry_dirty:
            return 0
        state.carry_dirty = False
        changed = self._run_pass("specialize_constant_carries",
                                 lambda: specialize_carries(state),
                                 round_index)
        changed += self._run_pass("eliminate_dead_carries",
                                  lambda: remove_dead_carries(state),
                                  round_index)
        return changed

    def _step_cse(self, round_index: int | None = None) -> int:
        state = self._ensure_state()
        if round_index is not None and not state.cse_full \
                and not state.cse_candidates:
            return 0
        return self._run_pass(
            "common_subexpression_elimination",
            lambda: eliminate_common_subexpressions(state), round_index,
            worklist_size=len(state.cse_candidates))

    def _step_dce(self, round_index: int | None = None) -> int:
        state = self._ensure_state()
        if round_index is not None and not state.pending_dce():
            return 0
        return self._run_pass("dead_code_elimination",
                              lambda: eliminate_dead_code(state),
                              round_index, worklist_size=len(state.dce))

    def _step_schedule(self, round_index: int | None = None) -> int:
        # The scheduler reorders the raw section lists: compact first,
        # and renumber (lazily) if any pass still needs op ids after.
        if self.index is not None:
            self.index.compact()
        with trace.span("opt.schedule_for_pressure"):
            schedule_for_pressure(self.program)
        self._record("schedule_for_pressure", 0)
        self._invalidate()
        return 0

    _STEPS = {
        "copy_propagation": _step_copy_propagation,
        "promote_state": _step_promote_state,
        "reroll_steady": _step_reroll,
        "constant_folding": _step_constant_folding,
        "carries": _step_carries,
        "common_subexpression_elimination": _step_cse,
        "dead_code_elimination": _step_dce,
        "schedule_for_pressure": _step_schedule,
    }

    # -- driver --------------------------------------------------------------

    def _max_rounds(self) -> int:
        if self.options.max_rounds is not None:
            return self.options.max_rounds
        return _FIXPOINT_ROUNDS

    def _run_fixpoint(self, steps: list[str]) -> None:
        """Iterate a group of worklist passes until a round is quiet."""
        converged = False
        if "dead_code_elimination" in steps \
                and steps[0] != "dead_code_elimination" \
                and self._max_rounds() > 0:
            # Prune transitively dead ops before the first full folding
            # and CSE sweeps.  Unreferenced dataflow (decimators that pop
            # tokens nobody reads) can dwarf the live program; keying and
            # folding it first only to delete it at the end of round 0
            # dominated optimize time on the large-scale benchmarks.
            state = self._ensure_state()
            if state.dce_all:
                self._STEPS["dead_code_elimination"](self, None)
        for round_index in range(self._max_rounds()):
            faults_limits.check_deadline("optimizer fixpoint round")
            self.stats.fixpoint_rounds += 1
            changed = 0
            for step in steps:
                changed += self._STEPS[step](self, round_index)
            if changed == 0:
                converged = True
                break
        if not converged:
            self.stats.converged = False

    def run(self) -> OptStats:
        started = time.perf_counter()
        faults_limits.check_deadline("optimizer pipeline")
        pipeline = self.options.resolved_pipeline()
        if "dead_code_elimination" in pipeline and self._max_rounds() > 0:
            # Index-free pre-prune: drop transitively dead ops before any
            # pass walks (promote), indexes or keys (fold/CSE) them.
            self._run_pass(
                "dead_code_elimination",
                lambda: eliminate_dead_code_dense(self.program))
        position = 0
        saw_fixpoint_group = False
        while position < len(pipeline):
            step = pipeline[position]
            if step in _FIXPOINT_STEPS:
                group = [step]
                position += 1
                while position < len(pipeline) \
                        and pipeline[position] in _FIXPOINT_STEPS:
                    group.append(pipeline[position])
                    position += 1
                self._run_fixpoint(group)
                saw_fixpoint_group = True
            else:
                self._STEPS[step](self, None)
                position += 1
        if not saw_fixpoint_group:
            # Preserve the seed pipeline's accounting: the round loop
            # always ran, so an all-disabled pipeline reports one
            # (vacuously convergent) round — or zero non-convergent
            # rounds when the cap itself is zero.
            self._run_fixpoint([])
        if self.index is not None:
            self.index.compact()
        self.stats.pass_stats = list(self._pass_stats.values())
        self.stats.ops_after = _section_sizes(self.program)
        self.stats.optimize_seconds = time.perf_counter() - started
        return self.stats


def optimize(program: Program,
             options: OptOptions | None = None) -> OptStats:
    """Optimize ``program`` in place and return pass statistics."""
    options = options or OptOptions()
    with trace.span("optimize", program=program.name) as span:
        manager = PassManager(program, options)
        stats = manager.run()
        if fault_plan.current_plan().should_fire("opt-nonconverge"):
            # Injected seam: simulate giving up before a fixpoint so the
            # whole non-convergence reporting path (warning, metric, CLI
            # notice) is exercisable deterministically.
            stats.converged = False
        obs_metrics.gauge("opt.fixpoint_rounds").set(stats.fixpoint_rounds)
        if not stats.converged:
            obs_metrics.counter("opt.nonconvergent").inc()
            warnings.warn(
                f"optimizer did not reach a fixpoint on {program.name!r} "
                f"within {manager._max_rounds()} rounds; results are valid "
                "but possibly under-optimized", RuntimeWarning,
                stacklevel=2)
        span.annotate(rounds=stats.fixpoint_rounds,
                      converged=stats.converged,
                      steady_before=stats.ops_before.get("steady", 0),
                      steady_after=stats.ops_after.get("steady", 0))
        obs_metrics.gauge("opt.steady_ops_before").set(
            stats.ops_before.get("steady", 0))
        obs_metrics.gauge("opt.steady_ops_after").set(
            stats.ops_after.get("steady", 0))
    return stats
