"""The optimization pipeline and its statistics.

``optimize`` runs the standard pass order to a fixpoint:

    copy-prop → promote (mem2reg/SROA) → {const-fold, CSE, DCE}*

Each switch can be disabled for the E7 ablation benchmarks.  The returned
:class:`OptStats` records per-pass effect sizes and before/after op counts,
which the experiment drivers report alongside timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lir.program import Program
from repro.opt.carries import (eliminate_dead_carries,
                               specialize_constant_carries)
from repro.opt.passes import (common_subexpression_elimination,
                              constant_folding, copy_propagation,
                              dead_code_elimination)
from repro.opt.promote import PromoteOptions, promote_state
from repro.opt.schedule_ops import schedule_for_pressure

_FIXPOINT_ROUNDS = 64


@dataclass
class OptOptions:
    copy_propagation: bool = True
    promote_state: bool = True
    constant_folding: bool = True
    carry_specialization: bool = True
    cse: bool = True
    dce: bool = True
    schedule_pressure: bool = True
    promote: PromoteOptions = field(default_factory=PromoteOptions)

    @classmethod
    def none(cls) -> "OptOptions":
        return cls(copy_propagation=False, promote_state=False,
                   constant_folding=False, carry_specialization=False,
                   cse=False, dce=False, schedule_pressure=False)


@dataclass
class OptStats:
    ops_before: dict[str, int] = field(default_factory=dict)
    ops_after: dict[str, int] = field(default_factory=dict)
    moves_propagated: int = 0
    slots_promoted: int = 0
    ops_folded: int = 0
    carries_specialized: int = 0
    ops_deduplicated: int = 0
    ops_removed_dead: int = 0

    @property
    def steady_reduction(self) -> float:
        before = self.ops_before.get("steady", 0)
        if before == 0:
            return 0.0
        return 1.0 - self.ops_after.get("steady", 0) / before


def _section_sizes(program: Program) -> dict[str, int]:
    return {title: len(ops) for title, ops in program.sections()}


def optimize(program: Program,
             options: OptOptions | None = None) -> OptStats:
    """Optimize ``program`` in place and return pass statistics."""
    options = options or OptOptions()
    stats = OptStats(ops_before=_section_sizes(program))

    if options.copy_propagation:
        stats.moves_propagated += copy_propagation(program)
    if options.promote_state:
        stats.slots_promoted += promote_state(program, options.promote)

    for _round in range(_FIXPOINT_ROUNDS):
        changed = 0
        if options.constant_folding:
            folded = constant_folding(program)
            stats.ops_folded += folded
            changed += folded
        if options.carry_specialization:
            specialized = specialize_constant_carries(program)
            stats.carries_specialized += specialized
            changed += specialized
            dead = eliminate_dead_carries(program)
            stats.carries_specialized += dead
            changed += dead
        if options.cse:
            deduped = common_subexpression_elimination(program)
            stats.ops_deduplicated += deduped
            changed += deduped
        if options.dce:
            removed = dead_code_elimination(program)
            stats.ops_removed_dead += removed
            changed += removed
        if changed == 0:
            break

    if options.schedule_pressure:
        schedule_for_pressure(program)

    stats.ops_after = _section_sizes(program)
    return stats
