"""Register-pressure-aware instruction scheduling.

Aggressive unrolling is LaminarIR's cost: a fully flattened steady state
can keep hundreds of tokens live at once, and anything beyond the
register file spills (see :func:`repro.machine.platforms.estimate_spills`).
The lowering emits ops in schedule order — producer firings first, all of
their tokens live until the consumer fires much later.  This pass
re-schedules each straight-line section to shorten value lifetimes:

* a dependence graph is built over the section (data edges, plus ordering
  edges that keep effects — stores, prints, RNG calls — in their original
  relative order and loads on the correct side of stores to the same
  slot);
* a greedy list scheduler repeatedly emits the ready op with the best
  *pressure delta* — preferring ops that kill the last use of operands
  over ops that only create new values, breaking ties by original
  position (so the result is deterministic and close to source order).

The transformation never reorders observable effects, so outputs are
bit-identical; only liveness (and therefore modeled spill traffic)
changes.
"""

from __future__ import annotations

import heapq
from collections import defaultdict

from repro.lir.ops import LoadOp, LoopRegion, Op, StoreOp, Temp
from repro.lir.program import Program


def _is_effect(op: Op) -> bool:
    # Stores, prints, impure calls — and whole loop regions, which carry
    # their body's effects.
    return op.has_side_effect


def _build_dependences(ops: list[Op]) -> list[set[int]]:
    """preds[i] = indices that must execute before op i."""
    preds: list[set[int]] = [set() for _ in ops]
    last_def: dict[int, int] = {}
    last_effect: int | None = None
    last_store_to: dict[str, int] = {}
    loads_since_store: dict[str, list[int]] = defaultdict(list)

    for index, op in enumerate(ops):
        for operand in op.operands():
            if isinstance(operand, Temp) and operand.id in last_def:
                preds[index].add(last_def[operand.id])
        if isinstance(op, LoopRegion):
            # A region reads and writes whatever its body touches: treat
            # it as a load of every body-loaded slot and a store to every
            # body-stored slot so outer accesses stay on the right side.
            stored = {slot.name for slot in op.body_slot_stores()}
            loaded = {slot.name for slot in op.body_slot_loads()}
            for name in sorted(loaded - stored):
                if name in last_store_to:
                    preds[index].add(last_store_to[name])
                loads_since_store[name].append(index)
            for name in sorted(stored):
                for load_index in loads_since_store[name]:
                    preds[index].add(load_index)
                loads_since_store[name] = []
                if name in last_store_to:
                    preds[index].add(last_store_to[name])
                last_store_to[name] = index
        if isinstance(op, LoadOp):
            if op.slot.name in last_store_to:
                preds[index].add(last_store_to[op.slot.name])
            loads_since_store[op.slot.name].append(index)
        if isinstance(op, StoreOp):
            # stores wait for earlier loads of the same slot (anti-dep)
            for load_index in loads_since_store[op.slot.name]:
                preds[index].add(load_index)
            loads_since_store[op.slot.name] = []
            if op.slot.name in last_store_to:
                preds[index].add(last_store_to[op.slot.name])
            last_store_to[op.slot.name] = index
        if _is_effect(op):
            if last_effect is not None:
                preds[index].add(last_effect)
            last_effect = index
        if op.result is not None:
            last_def[op.result.id] = index
    return preds


def _schedule_section(ops: list[Op], live_out: set[int]) -> list[Op]:
    """Greedy minimum-pressure list scheduling of one section."""
    count = len(ops)
    if count < 3:
        return ops
    preds = _build_dependences(ops)
    succs: list[list[int]] = [[] for _ in ops]
    indegree = [0] * count
    for index, pred_set in enumerate(preds):
        indegree[index] = len(pred_set)
        for pred in pred_set:
            succs[pred].append(index)

    # remaining uses per temp id (including live-out as a permanent use)
    uses_left: dict[int, int] = defaultdict(int)
    for op in ops:
        for operand in op.operands():
            if isinstance(operand, Temp):
                uses_left[operand.id] += 1
    for temp_id in live_out:
        uses_left[temp_id] += 1

    def pressure_delta(index: int) -> int:
        op = ops[index]
        delta = 1 if op.result is not None else 0
        killed = 0
        seen: set[int] = set()
        for operand in op.operands():
            if isinstance(operand, Temp) and operand.id not in seen:
                seen.add(operand.id)
                if uses_left[operand.id] == 1:
                    killed += 1
        return delta - killed

    ready: list[tuple[int, int]] = []  # (pressure delta, original index)
    for index in range(count):
        if indegree[index] == 0:
            heapq.heappush(ready, (pressure_delta(index), index))

    result: list[Op] = []
    emitted = [False] * count
    while ready:
        # deltas go stale as uses are consumed; lazily revalidate
        delta, index = heapq.heappop(ready)
        if emitted[index]:
            continue
        current = pressure_delta(index)
        if current != delta:
            heapq.heappush(ready, (current, index))
            continue
        emitted[index] = True
        op = ops[index]
        result.append(op)
        for operand in op.operands():
            if isinstance(operand, Temp):
                uses_left[operand.id] -= 1
        for succ in succs[index]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(ready, (pressure_delta(succ), succ))

    assert len(result) == count, "scheduler dropped ops (cyclic deps?)"
    return result


def schedule_for_pressure(program: Program) -> None:
    """Reorder each section to reduce peak register pressure in place."""
    live_out_setup: set[int] = set()
    live_out_init = {v.id for v in program.carry_inits
                     if isinstance(v, Temp)}
    live_out_steady = {v.id for v in program.carry_nexts
                       if isinstance(v, Temp)}
    # cross-section uses keep setup/init values alive; collect them
    used_later: set[int] = set(live_out_init) | set(live_out_steady)
    for ops in (program.init, program.steady):
        for op in ops:
            for operand in op.operands():
                if isinstance(operand, Temp):
                    used_later.add(operand.id)
    program.setup[:] = _schedule_section(program.setup,
                                         live_out_setup | used_later)
    program.init[:] = _schedule_section(program.init,
                                        live_out_init | used_later)
    program.steady[:] = _schedule_section(program.steady, live_out_steady)
