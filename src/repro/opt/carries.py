"""Constant loop-carry specialization.

A loop-carried token whose initial value is a constant and whose
next-iteration value is (a) the same constant or (b) the carry itself is
invariant: every iteration sees the same value.  Replacing the carry
parameter with the constant exposes the rest of the steady body to
constant folding — with static input this is what lets whole benchmarks
collapse to precomputed output streams (experiment E6), mirroring what
LLVM does to the paper's static-input programs.

Comparison is bit-exact (``-0.0`` is not ``0.0``; ``True`` is not ``1``)
so the substitution never changes observable output.
"""

from __future__ import annotations

from repro.lir.ops import Const, Temp, Value
from repro.lir.program import Program


def _same_const(left: Value, right: Value) -> bool:
    if not (isinstance(left, Const) and isinstance(right, Const)):
        return False
    if left.ty != right.ty:
        return False
    if type(left.value) is not type(right.value):
        return False
    return repr(left.value) == repr(right.value)


def specialize_constant_carries(program: Program) -> int:
    """Replace invariant constant carries with their constants.

    Returns the number of carries removed.  Run inside the optimizer's
    fixpoint loop: each round of constant folding can expose new
    invariant carries.
    """
    subst: dict[Temp, Value] = {}
    keep: list[int] = []
    for index, param in enumerate(program.carry_params):
        init = program.carry_inits[index]
        nxt = program.carry_nexts[index]
        invariant = _same_const(init, nxt) \
            or (isinstance(init, Const) and nxt is param)
        if invariant:
            subst[param] = init
        else:
            keep.append(index)
    if not subst:
        return 0

    def resolve(value: Value) -> Value:
        while isinstance(value, Temp) and value in subst:
            value = subst[value]
        return value

    for _title, ops in program.sections():
        for op in ops:
            op.map_operands(resolve)
    program.carry_params = [program.carry_params[i] for i in keep]
    program.carry_inits = [resolve(program.carry_inits[i]) for i in keep]
    program.carry_nexts = [resolve(program.carry_nexts[i]) for i in keep]
    return len(subst)


def eliminate_dead_carries(program: Program) -> int:
    """Remove loop carries that never influence an observable effect.

    A carry is *live* if its parameter is used by any op, or if it feeds
    the next value of another live carry.  Dead carries arise when a
    consumer pops tokens it never reads (decimators) or when earlier
    passes fold away every use; removing them shrinks the loop-carried
    footprint that dominates register pressure.
    """
    params = program.carry_params
    if not params:
        return 0
    index_of = {param.id: i for i, param in enumerate(params)}

    used_by_ops: set[int] = set()
    for _title, ops in program.sections():
        for op in ops:
            for operand in op.operands():
                if isinstance(operand, Temp):
                    used_by_ops.add(operand.id)

    live = [params[i].id in used_by_ops for i in range(len(params))]
    changed = True
    while changed:
        changed = False
        for i, nxt in enumerate(program.carry_nexts):
            if live[i] and isinstance(nxt, Temp) \
                    and nxt.id in index_of and not live[index_of[nxt.id]]:
                live[index_of[nxt.id]] = True
                changed = True

    if all(live):
        return 0
    keep = [i for i, is_live in enumerate(live) if is_live]
    removed = len(params) - len(keep)
    program.carry_params = [program.carry_params[i] for i in keep]
    program.carry_inits = [program.carry_inits[i] for i in keep]
    program.carry_nexts = [program.carry_nexts[i] for i in keep]
    return removed
