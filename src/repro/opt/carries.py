"""Constant loop-carry specialization.

A loop-carried token whose initial value is a constant and whose
next-iteration value is (a) the same constant or (b) the carry itself is
invariant: every iteration sees the same value.  Replacing the carry
parameter with the constant exposes the rest of the steady body to
constant folding — with static input this is what lets whole benchmarks
collapse to precomputed output streams (experiment E6), mirroring what
LLVM does to the paper's static-input programs.

Comparison is bit-exact (``-0.0`` is not ``0.0``; ``True`` is not ``1``)
so the substitution never changes observable output.

Both passes come in two forms: an indexed version that works through a
:class:`repro.opt.passes.FixpointState` (used by the pass manager, so
replaced parameters requeue exactly the affected ops) and the original
standalone one-argument functions.
"""

from __future__ import annotations

from repro.lir.analysis import ProgramIndex
from repro.lir.ops import Const, Temp, Value
from repro.lir.program import Program
from repro.opt.passes import FixpointState


def _same_const(left: Value, right: Value) -> bool:
    if not (isinstance(left, Const) and isinstance(right, Const)):
        return False
    if left.ty != right.ty:
        return False
    if type(left.value) is not type(right.value):
        return False
    return repr(left.value) == repr(right.value)


def specialize_carries(state: FixpointState) -> int:
    """Replace invariant constant carries with their constants.

    Runs inside the optimizer's fixpoint: each round of constant folding
    can expose new invariant carries (the manager re-runs this only
    while ``carry_dirty`` is set).  The parameter-to-constant rewrites
    happen *before* the carry lists are filtered, so every dropped
    init/next entry is a constant by then — no op use is orphaned.
    """
    program, index = state.program, state.index
    replaced: list[tuple[Temp, Const]] = []
    keep: list[int] = []
    for position, param in enumerate(program.carry_params):
        init = program.carry_inits[position]
        nxt = program.carry_nexts[position]
        invariant = _same_const(init, nxt) \
            or (isinstance(init, Const) and nxt is param)
        if invariant:
            assert isinstance(init, Const)
            replaced.append((param, init))
        else:
            keep.append(position)
    if not replaced:
        return 0
    for param, constant in replaced:
        affected, carries = index.replace_all_uses(param, constant)
        state.note_rewritten(affected, carries)
    program.carry_params = [program.carry_params[i] for i in keep]
    program.carry_inits = [program.carry_inits[i] for i in keep]
    program.carry_nexts = [program.carry_nexts[i] for i in keep]
    index.rebuild_carries()
    return len(replaced)


def specialize_constant_carries(program: Program) -> int:
    """Standalone entry point: returns the number of carries removed."""
    index = ProgramIndex(program)
    state = FixpointState(program, index)
    removed = specialize_carries(state)
    index.compact()
    return removed


def remove_dead_carries(state: FixpointState) -> int:
    """Remove loop carries that never influence an observable effect.

    A carry is *live* if its parameter is used by any op, or if it feeds
    the next value of another live carry.  Dead carries arise when a
    consumer pops tokens it never reads (decimators) or when earlier
    passes fold away every use; removing them shrinks the loop-carried
    footprint that dominates register pressure.

    Dropping a dead carry removes the last uses of its init/next values;
    their defining ops go onto the DCE worklist.
    """
    program, index = state.program, state.index
    params = program.carry_params
    if not params:
        return 0
    index_of = {param.id: i for i, param in enumerate(params)}

    live = [index.op_use_count(param.id) > 0 for param in params]
    changed = True
    while changed:
        changed = False
        for i, nxt in enumerate(program.carry_nexts):
            if live[i] and isinstance(nxt, Temp) \
                    and nxt.id in index_of and not live[index_of[nxt.id]]:
                live[index_of[nxt.id]] = True
                changed = True

    if all(live):
        return 0
    keep = [i for i, is_live in enumerate(live) if is_live]
    dropped: list[Value] = []
    for i, is_live in enumerate(live):
        if not is_live:
            dropped.append(program.carry_inits[i])
            dropped.append(program.carry_nexts[i])
    program.carry_params = [program.carry_params[i] for i in keep]
    program.carry_inits = [program.carry_inits[i] for i in keep]
    program.carry_nexts = [program.carry_nexts[i] for i in keep]
    index.rebuild_carries()
    state.carry_dirty = True
    for value in dropped:
        if isinstance(value, Temp) and index.use_count(value.id) == 0:
            def_op = index.def_of(value.id)
            if def_op is not None:
                state.dce.push(def_op)
    return len(params) - len(keep)


def eliminate_dead_carries(program: Program) -> int:
    """Standalone entry point: returns the number of carries removed."""
    index = ProgramIndex(program)
    state = FixpointState(program, index)
    removed = remove_dead_carries(state)
    index.compact()
    return removed
