"""Re-roll the unrolled steady state into counted :class:`LoopRegion`\\ s.

Full unrolling is what gives LaminarIR direct token naming, but a large
steady schedule repeats the *same* filter body hundreds of times.  This
pass detects those repeats — consecutive runs of ops stamped with the
same filter provenance (PR 4) — fingerprints them for a structural
period, and collapses ``K >= min_repeat`` repeats into one
:class:`LoopRegion` executed ``K`` times.

For each operand position across the ``K`` instances the pass classifies
how the value varies:

* **invariant** — the same temp/const in every instance: referenced
  directly from the body;
* **internal** — the result of the op at the same relative position in
  the *same* instance: becomes a body-local reference;
* **loop-carried** (distance 1) — the result of the previous instance:
  becomes a region-level carry (init from the value instance 0 saw);
* **affine** — int constants in arithmetic progression: rematerialized
  as ``base + stride * trip`` (bit-exact under i32 wraparound; float
  progressions are never folded this way);
* **gather** — anything else defined before the run: spilled to a fresh
  gather array indexed ``trip + offset``.  Overlapping peek windows are
  packed into one shared array, and a gather whose values are themselves
  constant-indexed loads of a single array (e.g. an upstream region's
  scatter array) is *chained*: the body loads that array directly at
  ``base + stride * trip`` and no copy is materialized.

Results consumed outside the run are *scattered*: the body stores every
trip's value to a fresh array at ``trip``, and constant-index loads
after the region rebind the original temps (so downstream ops — and the
program carry lists — are untouched).  Downstream runs then chain on
those arrays, which is how back-to-back filter runs turn into
array-to-array loop nests with no per-token temps left in between.

Token indices are plain ``base + stride * trip`` — never modulo — so the
emitted C stays scalar-replaceable and autovectorizable; bodies with no
carries and no ordered effects are marked ``parallel`` for
``#pragma omp simd``.

A run is only rewritten when it *shrinks*: the static op count of the
replacement (gather stores + body + scatter loads + the region) must be
smaller than the unrolled run, and the dynamic op count must not blow up
(re-rolling is a size/compile-time optimization first).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace as dc_replace

from repro.frontend.types import INT
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, LoopRegion,
                           MoveOp, Op, PrintOp, Provenance, SelectOp,
                           StateSlot, StoreOp, Temp, Value, const_int,
                           wrap_i32)
from repro.lir.program import Program

__all__ = ["reroll_steady"]


def _value_key(value: Value) -> tuple:
    if isinstance(value, Temp):
        return ("t", value.id)
    assert isinstance(value, Const)
    return ("c", str(value.ty), type(value.value).__name__,
            repr(value.value))


def _shape_key(op: Op) -> tuple:
    """Structural identity modulo operands: two ops may occupy the same
    body position across trips iff their keys are equal.  Keys are
    precomputed once per run so periodicity checks reduce to list
    slicing (``keys[p:] == keys[:-p]``), not pairwise comparisons."""
    ty = str(op.result.ty) if op.result is not None else ""
    kind = type(op).__name__
    if isinstance(op, BinOp):
        extra: object = op.op
    elif isinstance(op, CallOp):
        extra = (op.name, op.pure, len(op.args))
    elif isinstance(op, (LoadOp, StoreOp)):
        extra = (id(op.slot), op.index is None)
    elif isinstance(op, MoveOp):
        extra = op.routing
    elif isinstance(op, PrintOp):
        extra = op.newline
    elif isinstance(op, LoopRegion):
        extra = id(op)  # unique — never re-roll across a region
    else:
        # UnOp carries its operator; CastOp/SelectOp are fully
        # described by type + result ty.
        extra = getattr(op, "op", None)
    return (kind, extra, ty)


# -- operand classifications -----------------------------------------------------


@dataclass
class _Invariant:
    value: Value


@dataclass
class _Internal:
    rel: int  # body position whose fresh result to reference


@dataclass
class _Carried:
    rel: int      # body position producing the next value
    init: Value   # what instance 0 saw


@dataclass
class _Affine:
    base: int
    stride: int


@dataclass
class _Gather:
    values: list[Value]
    ty: object


@dataclass
class _GatherArray:
    """A shared gather array under construction (stride-1 packing)."""

    values: list[Value] = field(default_factory=list)
    keys: list[tuple] = field(default_factory=list)
    positions: dict[tuple, list[int]] = field(default_factory=dict)
    recs: list[dict] = field(default_factory=list)  # {"offset": int, ...}

    def append(self, value: Value) -> None:
        key = _value_key(value)
        self.positions.setdefault(key, []).append(len(self.values))
        self.values.append(value)
        self.keys.append(key)

    def prepend(self, values: list[Value], keys: list[tuple]) -> None:
        shift = len(values)
        self.values[:0] = values
        self.keys[:0] = keys
        self.positions = {}
        for position, key in enumerate(self.keys):
            self.positions.setdefault(key, []).append(position)
        for rec in self.recs:
            rec["offset"] += shift

    def try_align(self, vals: list[Value],
                  keys: list[tuple]) -> int | None:
        """Find offset ``o`` with ``vals[i] == self.values[o+i]`` on the
        overlap, extending either end; returns the final offset.
        ``keys`` is the caller-precomputed ``_value_key`` list for
        ``vals`` — one gather probes many arrays, so keying once
        outside keeps this probe cheap."""
        candidates: list[int] = list(self.positions.get(keys[0], ()))
        head = self.keys[0]
        for d in range(1, len(vals)):
            if keys[d] == head:
                candidates.append(-d)
        for o in candidates:
            ok = True
            for i, key in enumerate(keys):
                p = o + i
                if 0 <= p < len(self.keys):
                    if self.keys[p] != key:
                        ok = False
                        break
            if not ok:
                continue
            if o < 0:
                self.prepend(vals[:-o], keys[:-o])
                o = 0
            tail = o + len(vals) - len(self.values)
            for i in range(len(vals) - tail, len(vals)):
                self.append(vals[i])
            return o
        return None


class _Rewriter:
    """Assembles one section's new op list, tracking what chaining needs."""

    def __init__(self):
        self.new_steady: list[Op] = []
        self.def_pos: dict[int, int] = {}
        self.def_op: dict[int, Op] = {}
        self.last_store: dict[str, int] = {}

    def append(self, op: Op) -> None:
        position = len(self.new_steady)
        self.new_steady.append(op)
        if isinstance(op, LoopRegion):
            for slot in op.body_slot_stores():
                self.last_store[slot.name] = position
            return
        if op.result is not None:
            self.def_pos[op.result.id] = position
            self.def_op[op.result.id] = op
        if isinstance(op, StoreOp):
            self.last_store[op.slot.name] = position


def reroll_steady(program: Program, min_repeat: int = 4) -> int:
    """Collapse repeated firing runs into loop regions; returns regions.

    Every section is processed — the init schedule of a deeply-pipelined
    graph is often *larger* than one steady iteration (it primes every
    peek window), and it repeats firings exactly the same way.  Chaining
    state is per section, so a gather never chains on a load from an
    earlier section (those temps reach the body as gathered values
    instead).
    """
    if min_repeat < 2:
        min_repeat = 2

    # Use sites over the whole program plus the carry lists, for the
    # "is this result consumed outside its run?" test.
    use_ops: dict[int, list[Op]] = {}
    for _title, ops in program.sections():
        for op in ops:
            for operand in op.operands():
                if isinstance(operand, Temp):
                    use_ops.setdefault(operand.id, []).append(op)
    carry_used = {v.id for v in list(program.carry_inits)
                  + list(program.carry_nexts) if isinstance(v, Temp)}

    builder = _RegionBuilder(program, use_ops, carry_used, min_repeat)
    regions = 0
    for _title, ops in program.sections():
        regions += _reroll_section(ops, builder, min_repeat)
    return regions


def _reroll_section(section: list[Op], builder: _RegionBuilder,
                    min_repeat: int) -> int:
    if len(section) < 2 * min_repeat:
        return 0
    rewriter = _Rewriter()
    builder.rewriter = rewriter
    regions = 0
    position = 0
    while position < len(section):
        op = section[position]
        key = op.prov[0].filter if op.prov else None
        if key is None or isinstance(op, LoopRegion):
            rewriter.append(op)
            position += 1
            continue
        end = position
        while end < len(section) and section[end].prov \
                and not isinstance(section[end], LoopRegion) \
                and section[end].prov[0].filter == key:
            end += 1
        run = section[position:end]
        replacement = builder.try_reroll(run)
        if replacement is None:
            for kept in run:
                rewriter.append(kept)
        else:
            for new_op in replacement:
                rewriter.append(new_op)
            regions += 1
        position = end

    if regions:
        section[:] = rewriter.new_steady
    return regions


class _RegionBuilder:
    def __init__(self, program: Program,
                 use_ops: dict[int, list[Op]], carry_used: set[int],
                 min_repeat: int):
        self.program = program
        self.rewriter: _Rewriter = None  # set per section
        self.use_ops = use_ops
        self.carry_used = carry_used
        self.min_repeat = min_repeat
        self.slot_names = {slot.name for slot in program.state_slots}
        self.counter = 0

    def try_reroll(self, run: list[Op]) -> list[Op] | None:
        length = len(run)
        if length < 2 * self.min_repeat:
            return None
        run_def = {op.result.id: p for p, op in enumerate(run)
                   if op.result is not None}
        shape_keys = [_shape_key(op) for op in run]
        for period in range(1, length // self.min_repeat + 1):
            if length % period:
                continue
            # C-speed periodicity test on the precomputed shape keys.
            if shape_keys[period:] != shape_keys[:-period]:
                continue
            plan = self._match_period(run, period, run_def)
            if plan is None:
                continue
            built = self._build(run, period, plan, run_def)
            if built is not None:
                return built
        return None

    # -- fingerprinting -----------------------------------------------------

    def _match_period(self, run: list[Op], period: int,
                      run_def: dict[int, int]) -> list[list[object]] | None:
        length = len(run)
        trips = length // period
        plan: list[list[object]] = []
        for j in range(period):
            operand_rows = [list(run[i * period + j].operands())
                            for i in range(trips)]
            width = len(operand_rows[0])
            if any(len(row) != width for row in operand_rows):
                return None
            slots: list[object] = []
            for k in range(width):
                vals = [operand_rows[i][k] for i in range(trips)]
                classified = self._classify(vals, period, run_def)
                if classified is None:
                    return None
                slots.append(classified)
            plan.append(slots)
        return plan

    def _classify(self, vals: list[Value], period: int,
                  run_def: dict[int, int]) -> object | None:
        trips = len(vals)
        if any(v.ty != vals[0].ty for v in vals[1:]):
            # A mixed-type column cannot become one body operand (the
            # carry param / gather slot would have to change type).
            return None
        hits = [(i, run_def[v.id]) for i, v in enumerate(vals)
                if isinstance(v, Temp) and v.id in run_def]
        if hits:
            pairs = {(i - pos // period, pos % period) for i, pos in hits}
            if len(pairs) != 1:
                return None
            distance, rel = next(iter(pairs))
            if distance == 0:
                if len(hits) != trips:
                    return None
                return _Internal(rel)
            if distance == 1 and len(hits) == trips - 1 \
                    and hits[0][0] == 1:
                init = vals[0]
                if isinstance(init, Temp) and init.id in run_def:
                    return None
                return _Carried(rel, init)
            return None
        first_key = _value_key(vals[0])
        if all(_value_key(v) == first_key for v in vals[1:]):
            return _Invariant(vals[0])
        if all(isinstance(v, Const) for v in vals) and vals[0].ty == INT:
            base = vals[0].value
            stride = wrap_i32(vals[1].value - base)
            if all(v.value == wrap_i32(base + stride * i)
                   for i, v in enumerate(vals)):
                return _Affine(base, stride)
        return _Gather(list(vals), vals[0].ty)

    # -- construction -------------------------------------------------------

    def _build(self, run: list[Op], period: int,
               plan: list[list[object]],
               run_def: dict[int, int]) -> list[Op] | None:
        trips = len(run) // period
        prov = (run[0].prov[0],)
        slot_mark = len(self.program.state_slots)
        index = Temp(INT, hint="trip")
        prelude: list[Op] = []
        body: list[Op] = []
        affine_cache: dict[tuple[int, int], Value] = {}
        chain_cache: dict[tuple[str, int, int], Temp] = {}
        gather_cache: dict[tuple[int, int], Temp] = {}
        arrays: list[_GatherArray] = []
        carries: dict[int, tuple[Temp, Value]] = {}
        run_stores = {op.slot.name for op in run if isinstance(op, StoreOp)}

        def affine_value(base: int, stride: int) -> Value:
            if stride == 0:
                return const_int(base)
            key = (base, stride)
            if key in affine_cache:
                return affine_cache[key]
            value: Value = index
            if stride != 1:
                scaled = Temp(INT, hint="ridx")
                prelude.append(BinOp(result=scaled, prov=prov, op="*",
                                     lhs=const_int(stride), rhs=index))
                value = scaled
            if base != 0:
                shifted = Temp(INT, hint="ridx")
                prelude.append(BinOp(result=shifted, prov=prov, op="+",
                                     lhs=const_int(base), rhs=value))
                value = shifted
            affine_cache[key] = value
            return value

        def chain_value(gather: _Gather) -> Temp | None:
            """Load an existing array directly instead of copying it."""
            defs = []
            for v in gather.values:
                if not isinstance(v, Temp):
                    return None
                def_op = self.rewriter.def_op.get(v.id)
                if not isinstance(def_op, LoadOp) \
                        or not isinstance(def_op.index, Const):
                    return None
                defs.append(def_op)
            slot = defs[0].slot
            if any(d.slot is not slot for d in defs):
                return None
            if slot.name in run_stores:
                return None
            indices = [d.index.value for d in defs]
            stride = indices[1] - indices[0]
            if any(indices[i] != indices[0] + stride * i
                   for i in range(len(indices))):
                return None
            min_def = min(self.rewriter.def_pos[v.id]
                          for v in gather.values)
            if self.rewriter.last_store.get(slot.name, -1) >= min_def:
                return None
            key = (slot.name, indices[0], stride)
            if key in chain_cache:
                return chain_cache[key]
            result = Temp(slot.ty, hint="rg")
            prelude.append(LoadOp(result=result, prov=prov, slot=slot,
                                  index=affine_value(indices[0], stride)))
            chain_cache[key] = result
            return result

        def gather_value(gather: _Gather) -> Temp:
            keys = [_value_key(v) for v in gather.values]
            for array in arrays:
                if array.values and array.values[0].ty == gather.ty:
                    offset = array.try_align(gather.values, keys)
                    if offset is not None:
                        return gather_load(array, offset, gather.ty)
            array = _GatherArray()
            for v in gather.values:
                array.append(v)
            arrays.append(array)
            return gather_load(array, 0, gather.ty)

        def gather_load(array: _GatherArray, offset: int, ty) -> Temp:
            for rec in array.recs:
                if rec["offset"] == offset:
                    return rec["temp"]
            result = Temp(ty, hint="rg")
            rec = {"offset": offset, "temp": result}
            array.recs.append(rec)
            return result

        body_results: list[Temp | None] = []
        cloned_effects = False
        for j in range(period):
            template = run[j]
            if isinstance(template, (StoreOp, PrintOp)) \
                    or (isinstance(template, CallOp)
                        and template.has_side_effect):
                cloned_effects = True
            replacements: list[Value] = []
            for slot_plan in plan[j]:
                if isinstance(slot_plan, _Invariant):
                    replacements.append(slot_plan.value)
                elif isinstance(slot_plan, _Internal):
                    replacements.append(body_results[slot_plan.rel])
                elif isinstance(slot_plan, _Carried):
                    if slot_plan.rel in carries:
                        replacements.append(carries[slot_plan.rel][0])
                    else:
                        param = Temp(slot_plan.init.ty, hint="rc")
                        carries[slot_plan.rel] = (param, slot_plan.init)
                        replacements.append(param)
                elif isinstance(slot_plan, _Affine):
                    replacements.append(
                        affine_value(slot_plan.base, slot_plan.stride))
                else:
                    assert isinstance(slot_plan, _Gather)
                    chained = chain_value(slot_plan)
                    replacements.append(chained if chained is not None
                                        else gather_value(slot_plan))
            clone = dc_replace(template)
            if template.result is not None:
                fresh = Temp(template.result.ty, hint=template.result.hint)
                clone.result = fresh
                body_results.append(fresh)
            else:
                body_results.append(None)
            iterator = iter(replacements)
            clone.map_operands(lambda _v: next(iterator))
            body.append(clone)

        # Scatter: results consumed outside the run survive in arrays.
        scatter_loads: list[Op] = []
        run_set = set(map(id, run))
        for j in range(period):
            if run[j].result is None:
                continue
            used: list[int] = []
            for i in range(trips):
                temp = run[i * period + j].result
                assert temp is not None
                outside = temp.id in self.carry_used or any(
                    id(user) not in run_set
                    for user in self.use_ops.get(temp.id, ()))
                if outside:
                    used.append(i)
            if not used:
                continue
            slot = self._fresh_slot("s", run[j].result.ty, trips)
            body.append(StoreOp(result=None, prov=prov, slot=slot,
                                index=index, value=body_results[j]))
            for i in used:
                scatter_loads.append(
                    LoadOp(result=run[i * period + j].result, prov=prov,
                           slot=slot, index=const_int(i)))

        # Finalize gather arrays: emit the copy-in stores and the body
        # loads (offsets are stable now).
        gather_stores: list[Op] = []
        for array in arrays:
            if not array.recs:
                continue
            slot = self._fresh_slot("g", array.values[0].ty,
                                    len(array.values))
            for p, value in enumerate(array.values):
                gather_stores.append(
                    StoreOp(result=None, prov=prov, slot=slot,
                            index=const_int(p), value=value))
            for rec in array.recs:
                prelude.append(
                    LoadOp(result=rec["temp"], prov=prov, slot=slot,
                           index=affine_value(rec["offset"], 1)))

        body = prelude + body
        carry_params = [carries[r][0] for r in sorted(carries)]
        carry_inits: list[Value] = [carries[r][1] for r in sorted(carries)]
        carry_nexts: list[Value] = [body_results[r] for r in sorted(carries)]

        static_new = (len(gather_stores) + len(body)
                      + len(scatter_loads) + 1)
        executed_new = (len(gather_stores) + len(scatter_loads)
                        + trips * (len(body) + len(carry_params)))
        length = len(run)
        # Static shrink is the point; the dynamic budget tolerates the
        # gather/scatter/index overhead (roughly one extra op per body
        # op for peek-window filters) but rejects pathological cases
        # where the overhead dwarfs the body.
        budget = max(2 * length + trips, length * 9 // 4)
        if static_new >= length or executed_new > budget:
            # Not profitable: roll back the scatter/gather slots this
            # attempt registered.
            for slot in self.program.state_slots[slot_mark:]:
                self.slot_names.discard(slot.name)
            del self.program.state_slots[slot_mark:]
            return None

        region = LoopRegion(result=None, prov=prov, trips=trips,
                            index=index, body=body,
                            carry_params=carry_params,
                            carry_inits=carry_inits,
                            carry_nexts=carry_nexts,
                            parallel=not cloned_effects and not carries)
        return gather_stores + [region] + scatter_loads

    def _fresh_slot(self, kind: str, ty, size: int) -> StateSlot:
        while True:
            name = f"rr{self.counter}_{kind}"
            self.counter += 1
            if name not in self.slot_names:
                break
        self.slot_names.add(name)
        slot = StateSlot(name=name, ty=ty, size=size)
        self.program.state_slots.append(slot)
        return slot
