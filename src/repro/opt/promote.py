"""State promotion: mem2reg / scalar replacement of aggregates for LaminarIR.

Because LaminarIR sections are straight-line and every state access is an
explicit ``load``/``store`` on a named slot, the classic LLVM promotions
(mem2reg for scalars, SROA for small arrays) become simple forward sweeps:

* a slot whose accesses all use compile-time indices is replaced by one
  SSA value per element;
* elements written during the steady section become additional loop-carried
  values (they are genuinely live across iterations — e.g. a source
  filter's phase accumulator or a delay line);
* elements only written during setup/init feed their last stored value
  directly into later uses — for constant coefficient tables this folds
  filter arithmetic down to constants, which is exactly the paper's
  "partial results computed at compile time" effect on static input.

This pass models what LLVM does to the generated C; running it on the IR
makes the effect measurable in interpreter op counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.types import FLOAT, INT
from repro.lir.ops import (Const, LoadOp, LoopRegion, Op, StateSlot, StoreOp,
                           Temp, Value, const_bool, const_float, const_int)
from repro.lir.program import Program


@dataclass
class PromoteOptions:
    # Arrays larger than this are never promoted.
    max_array_elements: int = 4096
    # Arrays written during steady become per-element loop carries; cap the
    # carry blow-up separately (hot delay lines are typically small).
    max_carried_elements: int = 256


def _zero(slot: StateSlot) -> Const:
    if slot.ty == INT:
        return const_int(0)
    if slot.ty == FLOAT:
        return const_float(0.0)
    return const_bool(False)


def _classify(program: Program,
              options: PromoteOptions) -> tuple[set[str], set[str]]:
    """(promotable slot names, slot names stored during steady)."""
    promotable = {slot.name for slot in program.state_slots
                  if not slot.is_array
                  or (slot.size or 0) <= options.max_array_elements}
    steady_stored: set[str] = set()
    for title, ops in program.sections():
        for op in ops:
            if isinstance(op, LoopRegion):
                # Region bodies index their gather/scatter slots by the
                # trip counter; the promotion sweep never descends into
                # a body, so anything a body touches must stay a slot.
                for slot in op.body_slot_loads():
                    promotable.discard(slot.name)
                for slot in op.body_slot_stores():
                    promotable.discard(slot.name)
                    if title == "steady":
                        steady_stored.add(slot.name)
                continue
            if not isinstance(op, (LoadOp, StoreOp)):
                continue
            slot = op.slot
            if op.index is not None and not isinstance(op.index, Const):
                promotable.discard(slot.name)
            if isinstance(op, StoreOp) and title == "steady":
                steady_stored.add(slot.name)
    for slot in program.state_slots:
        if slot.name in steady_stored and slot.is_array \
                and (slot.size or 0) > options.max_carried_elements:
            promotable.discard(slot.name)
    return promotable, steady_stored


def promote_state(program: Program,
                  options: PromoteOptions | None = None) -> int:
    """Promote eligible state slots to SSA values.  Returns #slots."""
    options = options or PromoteOptions()
    promotable, steady_stored = _classify(program, options)
    if not promotable:
        return 0

    slots = {s.name: s for s in program.state_slots if s.name in promotable}
    current: dict[str, list[Value]] = {
        name: [_zero(slot)] * (slot.size or 1)
        for name, slot in slots.items()}
    # Elements of steady-stored slots that actually get a carry param; maps
    # (slot, element) -> position in the carry lists, filled lazily below.
    subst: dict[Temp, Value] = {}

    def resolve(value: Value) -> Value:
        while isinstance(value, Temp) and value in subst:
            value = subst[value]
        return value

    def element_index(op: LoadOp | StoreOp) -> int:
        if op.index is None:
            return 0
        index = resolve(op.index)
        assert isinstance(index, Const) and isinstance(index.value, int)
        return index.value

    def sweep(ops: list[Op]) -> None:
        kept: list[Op] = []
        for op in ops:
            op.map_operands(resolve)
            if isinstance(op, (LoadOp, StoreOp)) \
                    and op.slot.name in promotable:
                element = element_index(op)
                if not 0 <= element < len(current[op.slot.name]):
                    # Out-of-range constant index: leave it to fail at run
                    # time in the interpreter rather than mis-promote.
                    kept.append(op)
                    continue
                if isinstance(op, LoadOp):
                    assert op.result is not None
                    subst[op.result] = current[op.slot.name][element]
                else:
                    current[op.slot.name][element] = op.value
                continue
            kept.append(op)
        ops[:] = kept

    sweep(program.setup)
    sweep(program.init)

    program.carry_inits = [resolve(v) for v in program.carry_inits]

    # Steady-stored promoted elements become loop carries.
    carried: list[tuple[str, int]] = []
    for name in sorted(steady_stored & promotable):
        for element in range(len(current[name])):
            param = Temp(slots[name].ty, hint=f"state_{name}_")
            program.carry_params.append(param)
            program.carry_inits.append(current[name][element])
            carried.append((name, element))
            current[name][element] = param

    sweep(program.steady)

    program.carry_nexts = [resolve(v) for v in program.carry_nexts]
    for name, element in carried:
        program.carry_nexts.append(current[name][element])

    program.state_slots = [s for s in program.state_slots
                           if s.name not in promotable]
    return len(slots)
