"""Scalar optimizations over LaminarIR (the measurable "enabling effect")."""

from repro.opt.carries import (eliminate_dead_carries,
                               specialize_constant_carries)
from repro.opt.passes import (common_subexpression_elimination,
                              constant_folding, copy_propagation,
                              dead_code_elimination)
from repro.opt.pipeline import OptOptions, OptStats, optimize
from repro.opt.promote import PromoteOptions, promote_state
from repro.opt.schedule_ops import schedule_for_pressure

__all__ = [
    "OptOptions", "OptStats", "PromoteOptions",
    "common_subexpression_elimination", "constant_folding",
    "copy_propagation", "dead_code_elimination", "eliminate_dead_carries", "optimize",
    "promote_state", "schedule_for_pressure",
    "specialize_constant_carries",
]
