"""Scalar optimizations over LaminarIR (the measurable "enabling effect")."""

from repro.opt.carries import (eliminate_dead_carries,
                               specialize_constant_carries)
from repro.opt.passes import (FixpointState,
                              common_subexpression_elimination,
                              constant_folding, copy_propagation,
                              dead_code_elimination)
from repro.opt.pipeline import (OptOptions, OptStats, PassManager, PassStat,
                                optimize, parse_pipeline)
from repro.opt.promote import PromoteOptions, promote_state
from repro.opt.reroll import reroll_steady
from repro.opt.schedule_ops import schedule_for_pressure

__all__ = [
    "FixpointState", "OptOptions", "OptStats", "PassManager", "PassStat",
    "PromoteOptions", "common_subexpression_elimination",
    "constant_folding", "copy_propagation", "dead_code_elimination",
    "eliminate_dead_carries", "optimize", "parse_pipeline",
    "promote_state", "reroll_steady", "schedule_for_pressure",
    "specialize_constant_carries",
]
