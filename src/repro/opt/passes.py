"""Scalar optimization passes over LaminarIR.

These model the "enabling effect" the paper reports: once FIFO indirection
is gone, classic scalar optimizations (constant propagation, copy
propagation, CSE, dead-code elimination) see through the dataflow.  In the
paper LLVM performs them on the generated C; here we also run them on the
IR itself so the effect is *measurable* in op counts and drives the
platform cost models.

The passes consume a shared :class:`repro.lir.analysis.ProgramIndex` and
communicate through :class:`FixpointState`: rewriting an op's operands
pushes exactly that op back onto the folding and CSE worklists, and
erasing an op pushes the ops it just made dead onto the DCE worklist.
After the initial full sweeps, each fixpoint round therefore only
touches ops something actually changed — the sparse-worklist scheme that
replaces the old rescan-everything rounds.

The public one-argument functions (``copy_propagation(program)`` etc.)
keep their original standalone contract: build a private index, run the
single pass, sweep, return the change count.
"""

from __future__ import annotations

from repro.frontend.errors import UNKNOWN_LOCATION
from repro.graph.builder import apply_binary
from repro.frontend.intrinsics import INTRINSICS
from repro.frontend.types import BOOLEAN, FLOAT, INT
from repro.lir.analysis import EraseEffects, OpWorklist, ProgramIndex
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, LoopRegion,
                           MoveOp, Op, SelectOp, StoreOp, Temp, UnOp, Value,
                           const_bool, const_float, const_int)
from repro.lir.program import Program

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class FixpointState:
    """Shared worklists and dirty flags for one optimizer fixpoint run.

    The CSE bookkeeping lives here too: ``_cse_available`` maps a
    (section, expression-key) pair to the op currently representing that
    expression, ``_cse_key_of`` is its reverse (so a rewritten op's
    stale table entry can be evicted), and ``_cse_load_version`` caches
    each load's store-version from the last full scan.  ``cse_full``
    forces a full rescan — set initially and whenever a store is erased
    (erasing a store shifts every later load's version).
    """

    def __init__(self, program: Program, index: ProgramIndex):
        self.program = program
        self.index = index
        self.fold = OpWorklist()
        self.dce = OpWorklist()
        self.cse_candidates = OpWorklist()
        # Full-sweep flags: the first folding/DCE run visits every live
        # op directly (cheaper than queueing the whole program), after
        # which only the worklists drive them.
        self.fold_all = True
        self.dce_all = True
        self.cse_full = True
        self.carry_dirty = True
        self._cse_available: dict[tuple, Op] = {}
        self._cse_key_of: dict[Op, tuple] = {}
        self._cse_load_version: dict[Op, int] = {}

    def pending_fold(self) -> bool:
        return self.fold_all or bool(self.fold)

    def pending_dce(self) -> bool:
        return self.dce_all or bool(self.dce)

    def note_rewritten(self, affected: list[Op],
                       carries_touched: bool) -> None:
        """An operand rewrite touched ``affected``: requeue them."""
        for op in affected:
            self.fold.push(op)
            key = self._cse_key_of.pop(op, None)
            if key is not None and self._cse_available.get(key) is op:
                del self._cse_available[key]
            self.cse_candidates.push(op)
        if carries_touched:
            self.carry_dirty = True

    def note_erased(self, effects: EraseEffects) -> None:
        """An erasure freed these candidates: requeue them for DCE."""
        self.dce.push_all(effects.dead_defs)
        self.dce.push_all(effects.dead_stores)
        if effects.erased_store:
            self.cse_full = True
        if effects.dead_carry_params:
            self.carry_dirty = True


# -- copy propagation ---------------------------------------------------------


def _apply_subst(program: Program, subst: dict[Temp, Value]) -> None:
    """Rewrite every operand through ``subst`` (chased to a fixpoint)."""
    if not subst:
        return

    def resolve(value: Value) -> Value:
        seen = 0
        while isinstance(value, Temp) and value in subst:
            value = subst[value]
            seen += 1
            assert seen < 1_000_000, "substitution cycle"
        return value

    for _title, ops in program.sections():
        for op in ops:
            op.map_operands(resolve)
    program.carry_inits = [resolve(v) for v in program.carry_inits]
    program.carry_nexts = [resolve(v) for v in program.carry_nexts]


def _copy_source(op: Op) -> Value | None:
    if isinstance(op, MoveOp) and op.result is not None and not op.routing:
        return op.src
    if isinstance(op, CastOp) and op.result is not None \
            and op.operand.ty == op.result.ty:
        return op.operand
    return None


def propagate_copies(state: FixpointState) -> int:
    """Forward ``move`` results (and no-op casts) to their sources.

    A single forward scan: each rewrite is eager, so move chains resolve
    within one call (by the time ``c = move b`` is visited, ``b`` has
    already been replaced by ``a``).
    """
    index = state.index
    removed = 0
    for op in list(index.live_ops()):
        source = _copy_source(op)
        if source is None:
            continue
        assert op.result is not None
        affected, carries = index.replace_all_uses(op.result, source)
        state.note_rewritten(affected, carries)
        state.note_erased(index.erase(op))
        removed += 1
    return removed


def propagate_copies_dense(program: Program) -> int:
    """Index-free copy propagation: one sweep plus a substitution pass.

    The pass manager uses this form when no def-use index exists yet
    (copy propagation sits at the head of the default pipeline, right
    before ``promote_state`` invalidates any index) — building a
    program-wide index only to throw it away would dominate the pass.
    """
    subst: dict[Temp, Value] = {}
    removed = 0
    for _title, ops in program.sections():
        kept: list[Op] = []
        for op in ops:
            source = _copy_source(op)
            if source is None:
                kept.append(op)
                continue
            assert op.result is not None
            subst[op.result] = source
            removed += 1
        ops[:] = kept
    _apply_subst(program, subst)
    return removed


def copy_propagation(program: Program) -> int:
    """Standalone entry point: forward copies and drop the moves."""
    return propagate_copies_dense(program)


# -- constant folding ---------------------------------------------------------


def _fold_op(op: Op) -> Value | None:
    """Return a replacement value if ``op`` folds, else None."""
    if isinstance(op, BinOp) and isinstance(op.lhs, Const) \
            and isinstance(op.rhs, Const):
        value = apply_binary(op.op, op.lhs.value, op.rhs.value,
                             UNKNOWN_LOCATION, "")
        if op.op in _CMP_OPS:
            return const_bool(bool(value))
        if op.lhs.ty == INT and op.rhs.ty == INT:
            return const_int(int(value))  # type: ignore[arg-type]
        if op.lhs.ty == BOOLEAN:
            return const_bool(bool(value))
        return const_float(float(value))  # type: ignore[arg-type]
    if isinstance(op, BinOp):
        return _fold_algebraic(op)
    if isinstance(op, UnOp) and isinstance(op.operand, Const):
        if op.op == "-":
            if op.operand.ty == INT:
                return const_int(-op.operand.value)  # type: ignore
            return const_float(-op.operand.value)  # type: ignore
        if op.op == "!":
            return const_bool(not op.operand.value)
        if op.op == "~":
            return const_int(~op.operand.value)  # type: ignore[operator]
    if isinstance(op, CastOp) and isinstance(op.operand, Const):
        assert op.result is not None
        if op.result.ty == INT:
            return const_int(int(op.operand.value))  # type: ignore
        if op.result.ty == FLOAT:
            return const_float(float(op.operand.value))  # type: ignore
        return const_bool(bool(op.operand.value))
    if isinstance(op, SelectOp) and isinstance(op.cond, Const):
        return op.then if op.cond.value else op.otherwise
    if isinstance(op, SelectOp) and op.then is op.otherwise:
        return op.then
    if isinstance(op, CallOp) and op.pure \
            and INTRINSICS[op.name].pure \
            and all(isinstance(a, Const) for a in op.args):
        intrinsic = INTRINSICS[op.name]
        assert intrinsic.impl is not None
        value = intrinsic.impl(*[a.value for a in op.args])  # type: ignore
        assert op.result is not None
        if op.result.ty == INT:
            return const_int(int(value))
        return const_float(float(value))
    return None


def _fold_algebraic(op: BinOp) -> Value | None:
    """Exact algebraic identities.

    Float rules are restricted to transformations that are bit-exact for
    every input (so ``x + 0.0`` is *not* folded: it changes ``-0.0``).
    """
    lhs, rhs = op.lhs, op.rhs
    is_int = lhs.ty == INT and rhs.ty == INT
    is_bool = lhs.ty == BOOLEAN and rhs.ty == BOOLEAN

    def const_is(value: Value, number: object) -> bool:
        return isinstance(value, Const) and value.value == number \
            and type(value.value) is type(number)

    if is_bool and op.op == "&":
        if const_is(lhs, True):
            return rhs
        if const_is(rhs, True):
            return lhs
        if const_is(lhs, False) or const_is(rhs, False):
            return const_bool(False)
    if is_bool and op.op == "|":
        if const_is(lhs, False):
            return rhs
        if const_is(rhs, False):
            return lhs
        if const_is(lhs, True) or const_is(rhs, True):
            return const_bool(True)

    if op.op == "+" and is_int:
        if const_is(lhs, 0):
            return rhs
        if const_is(rhs, 0):
            return lhs
    if op.op == "-" and is_int and const_is(rhs, 0):
        return lhs
    if op.op == "*":
        if is_int and (const_is(lhs, 0) or const_is(rhs, 0)):
            return const_int(0)
        if const_is(rhs, 1) or const_is(rhs, 1.0):
            return lhs
        if const_is(lhs, 1) or const_is(lhs, 1.0):
            return rhs
    if op.op == "/" and (const_is(rhs, 1) or const_is(rhs, 1.0)):
        return lhs
    if op.op in ("<<", ">>") and const_is(rhs, 0):
        return lhs
    if op.op == "&" and is_int:
        if const_is(lhs, 0) or const_is(rhs, 0):
            return const_int(0)
    if op.op in ("|", "^") and is_int:
        if const_is(lhs, 0):
            return rhs
        if const_is(rhs, 0):
            return lhs
    return None


def _try_fold(state: FixpointState, op: Op) -> int:
    index = state.index
    if index.is_erased(op) or op.result is None:
        return 0
    if index.use_count(op.result.id) == 0:
        return 0  # already dead; erasing it is DCE's job
    replacement = _fold_op(op)
    if replacement is None:
        return 0
    affected, carries = index.replace_all_uses(op.result, replacement)
    state.note_rewritten(affected, carries)
    state.note_erased(index.erase(op))
    return 1


def fold_constants(state: FixpointState) -> int:
    """Fold everything once (first call), then drain the worklist.

    Folding an op replaces its uses eagerly, which pushes exactly the
    affected users back onto the worklist — cascades resolve within one
    drain without revisiting untouched ops.
    """
    folded = 0
    if state.fold_all:
        state.fold_all = False
        for op in list(state.index.live_ops()):
            folded += _try_fold(state, op)
        # Every op queued during the sweep sits after its rewriter in
        # program order, so the sweep itself already revisited it.
        state.fold.clear()
    while (op := state.fold.pop()) is not None:
        folded += _try_fold(state, op)
    return folded


def constant_folding(program: Program) -> int:
    """Standalone entry point: fold ops whose operands are constants."""
    index = ProgramIndex(program)
    state = FixpointState(program, index)
    folded = fold_constants(state)
    index.compact()
    return folded


# -- common subexpression elimination ----------------------------------------


def _vkey(value: Value) -> tuple:
    """A hashable identity for CSE: constants by value, temps by id."""
    if isinstance(value, Const):
        return ("c", value.ty.name, type(value.value).__name__, value.value)
    assert isinstance(value, Temp)
    return ("t", value.id)


def _cse_key(op: Op) -> tuple | None:
    if isinstance(op, BinOp):
        lhs, rhs = _vkey(op.lhs), _vkey(op.rhs)
        if op.op in ("+", "*", "&", "|", "^", "==", "!="):
            lhs, rhs = min(lhs, rhs), max(lhs, rhs)  # commutative
        return ("bin", op.op, lhs, rhs)
    if isinstance(op, UnOp):
        return ("un", op.op, _vkey(op.operand))
    if isinstance(op, CastOp):
        assert op.result is not None
        return ("cast", op.result.ty.name, _vkey(op.operand))
    if isinstance(op, SelectOp):
        return ("select", _vkey(op.cond), _vkey(op.then),
                _vkey(op.otherwise))
    if isinstance(op, CallOp):
        # Never deduplicate an effectful call: two `randi(n)` calls must
        # advance the RNG twice even with identical operands.  Belt and
        # suspenders — check both the op's own flag and the intrinsic
        # table, so a CallOp constructed with the default ``pure=True``
        # for an impure intrinsic still cannot be merged.
        intrinsic = INTRINSICS.get(op.name)
        if op.has_side_effect or (intrinsic is not None
                                  and not intrinsic.pure):
            return None
        return ("call", op.name, tuple(_vkey(a) for a in op.args))
    return None


def _load_key(op: LoadOp, version: int) -> tuple:
    return ("load", op.slot.name,
            _vkey(op.index) if op.index is not None else None, version)


def _dedupe(state: FixpointState, rep: Op, dup: Op) -> None:
    """Replace ``dup`` (dominated) with ``rep`` and erase it."""
    assert rep.result is not None and dup.result is not None
    # The survivor absorbs the duplicate's provenance set so attribution
    # still knows every filter the merged computation came from (the
    # survivor's own provenance stays primary).
    if dup.prov:
        rep.prov = rep.prov + tuple(
            entry for entry in dup.prov if entry not in rep.prov)
    affected, carries = state.index.replace_all_uses(dup.result, rep.result)
    state.note_rewritten(affected, carries)
    state.note_erased(state.index.erase(dup))
    key = state._cse_key_of.pop(dup, None)
    if key is not None and state._cse_available.get(key) is dup:
        del state._cse_available[key]


def _cse_full_scan(state: FixpointState) -> int:
    """Rebuild the available-expression table with one ordered sweep.

    Loads are versioned per slot by the number of preceding stores, so a
    load never dedupes across a store.  The sweep also compacts the
    section lists for free (it rebuilds them anyway).
    """
    index = state.index
    state.cse_full = False
    state._cse_available = {}
    state._cse_key_of = {}
    state._cse_load_version = {}
    removed = 0
    for title, ops in state.program.sections():
        versions: dict[str, int] = {}
        kept: list[Op] = []
        for op in ops:
            if index.is_erased(op):
                continue
            if isinstance(op, LoopRegion):
                # The whole region acts as a clobber for every slot its
                # body stores: later loads must not merge with loads
                # hoisted above the region.  The body itself is scoped
                # separately (incremental CSE keys body ops by region).
                for slot in op.body_slot_stores():
                    versions[slot.name] = versions.get(slot.name, 0) + 1
                kept.append(op)
                continue
            if isinstance(op, StoreOp):
                versions[op.slot.name] = versions.get(op.slot.name, 0) + 1
                kept.append(op)
                continue
            if isinstance(op, LoadOp):
                version = versions.get(op.slot.name, 0)
                state._cse_load_version[op] = version
                key = _load_key(op, version)
            else:
                key = _cse_key(op)
            if key is None or op.result is None:
                kept.append(op)
                continue
            if index.use_count(op.result.id) == 0:
                # Dead ops are DCE's job; never let one become (or match)
                # a representative — redirecting uses to it would only
                # resurrect work DCE is about to delete.
                kept.append(op)
                continue
            skey = (title, None, key)
            existing = state._cse_available.get(skey)
            if existing is not None and not index.is_erased(existing):
                _dedupe(state, existing, op)
                removed += 1
                continue
            state._cse_available[skey] = op
            state._cse_key_of[op] = skey
            kept.append(op)
        ops[:] = kept
    # The sweep re-keyed every live op (including the ones its own
    # rewrites touched, which all sit later in program order), so any
    # queued candidates are stale.
    state.cse_candidates.clear()
    return removed


def _cse_incremental(state: FixpointState) -> int:
    """Re-key only the candidate ops (those whose operands changed)."""
    index = state.index
    removed = 0
    while (op := state.cse_candidates.pop()) is not None:
        if index.is_erased(op) or op.result is None:
            continue
        if isinstance(op, StoreOp) or index.use_count(op.result.id) == 0:
            continue
        if isinstance(op, LoadOp):
            version = state._cse_load_version.get(op)
            if version is None:
                continue  # never keyed by a full scan; leave it alone
            key = _load_key(op, version)
        else:
            key = _cse_key(op)
        if key is None:
            continue
        # Scope by enclosing region: a body temp is only in scope inside
        # its own region, so merging across the region boundary (either
        # direction) would break SSA or hoist per-trip values.
        skey = (index.section_of(op), index.region_of(op), key)
        existing = state._cse_available.get(skey)
        if existing is not None and index.is_erased(existing):
            existing = None
        if existing is None or existing is op:
            state._cse_available[skey] = op
            state._cse_key_of[op] = skey
            continue
        # Keep whichever op comes first in the section: its result
        # dominates every use of the other's.
        if index.op_id(existing) < index.op_id(op):
            _dedupe(state, existing, op)
        else:
            state._cse_available[skey] = op
            state._cse_key_of[op] = skey
            _dedupe(state, op, existing)
        removed += 1
    return removed


def eliminate_common_subexpressions(state: FixpointState) -> int:
    """Deduplicate pure ops; loads are versioned per state slot."""
    if state.cse_full:
        return _cse_full_scan(state)
    return _cse_incremental(state)


def common_subexpression_elimination(program: Program) -> int:
    """Standalone entry point: one full available-expression sweep."""
    index = ProgramIndex(program)
    state = FixpointState(program, index)
    removed = _cse_full_scan(state)
    index.compact()
    return removed


# -- dead code elimination ----------------------------------------------------


def _ops_with_bodies(program: Program):
    """Every op in every section, with region body ops included."""
    for _title, ops in program.sections():
        for op in ops:
            yield op
            if isinstance(op, LoopRegion):
                yield from op.body


def _try_remove(state: FixpointState, op: Op) -> int:
    index = state.index
    if index.is_erased(op):
        return 0
    if isinstance(op, StoreOp):
        if index.slot_load_count(op.slot.name) == 0:
            state.note_erased(index.erase(op))
            return 1
        return 0
    if op.has_side_effect:
        return 0
    if op.result is not None and index.use_count(op.result.id) > 0:
        return 0
    state.note_erased(index.erase(op))
    return 1


def eliminate_dead_code(state: FixpointState) -> int:
    """Sweep everything backwards once (first call), then drain the
    worklist.

    Erasing an op reports which defs lost their last use; those flow
    straight back onto this worklist, so transitive chains die in one
    drain.  Stores to slots that are never loaded anywhere are dead
    effects; when the last load of a slot dies, its stores are requeued
    (they may sit anywhere in program order, so the drain after the
    backward sweep picks up the ones the sweep already passed).
    """
    program, index = state.program, state.index
    removed = 0
    if state.dce_all:
        state.dce_all = False
        for op in reversed(list(index.live_ops())):
            removed += _try_remove(state, op)
    while (op := state.dce.pop()) is not None:
        removed += _try_remove(state, op)
    # Drop state slots that no remaining op touches.
    program.state_slots = [s for s in program.state_slots
                           if index.slot_touched(s.name)]
    return removed


def eliminate_dead_code_dense(program: Program) -> int:
    """Index-free DCE: one backward liveness sweep over the raw lists.

    Straight-line sections mean a single backward pass removes whole
    transitively-dead chains (an op's uses always follow its def, so by
    the time the sweep reaches a def, every surviving user has marked
    it).  The pass manager runs this *before* any pass that would build
    or restructure the def-use index: unreferenced dataflow (decimators
    that pop tokens nobody reads) can dwarf the live program, and
    promoting/indexing it first only to delete it later dominated
    optimize time on the large-scale benchmarks.

    Stores whose loads all die within this same sweep survive it; the
    indexed fixpoint DCE picks those up.
    """
    live: set[int] = set()

    def mark(value: Value) -> None:
        if isinstance(value, Temp):
            live.add(value.id)

    for value in program.carry_inits:
        mark(value)
    for value in program.carry_nexts:
        mark(value)

    # Stores to slots that are never loaded anywhere are dead effects.
    # Region bodies count: a slot may only ever be read inside a loop.
    loaded_slots = {
        op.slot.name
        for op in _ops_with_bodies(program)
        if isinstance(op, LoadOp)}

    removed = 0
    sections = [ops for _t, ops in program.sections()]
    for ops in reversed(sections):
        kept_rev: list[Op] = []
        for op in reversed(ops):
            if isinstance(op, StoreOp) and op.slot.name not in loaded_slots:
                removed += 1
                continue
            needed = op.has_side_effect or (
                op.result is not None and op.result.id in live)
            if not needed:
                removed += 1
                continue
            for operand in op.operands():
                mark(operand)
            kept_rev.append(op)
        ops[:] = list(reversed(kept_rev))
    # Drop state slots that no remaining op touches.
    used_slots = {
        op.slot.name
        for op in _ops_with_bodies(program)
        if isinstance(op, (LoadOp, StoreOp))}
    program.state_slots = [s for s in program.state_slots
                           if s.name in used_slots]
    return removed


def dead_code_elimination(program: Program) -> int:
    """Standalone entry point: remove pure ops whose results are unused.

    Liveness flows backwards across all three sections plus the carry
    lists (carry values are live by definition: they feed the next
    iteration or the steady block parameters).
    """
    index = ProgramIndex(program)
    state = FixpointState(program, index)
    removed = eliminate_dead_code(state)
    index.compact()
    return removed
