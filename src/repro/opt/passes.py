"""Scalar optimization passes over LaminarIR.

These model the "enabling effect" the paper reports: once FIFO indirection
is gone, classic scalar optimizations (constant propagation, copy
propagation, CSE, dead-code elimination) see through the dataflow.  In the
paper LLVM performs them on the generated C; here we also run them on the
IR itself so the effect is *measurable* in op counts and drives the
platform cost models.

All sections are straight-line, so every pass is a single forward or
backward sweep.  Temps may be referenced across sections (setup → init →
steady and the carry lists), so substitutions and liveness are computed
program-wide.
"""

from __future__ import annotations

from repro.frontend.errors import UNKNOWN_LOCATION
from repro.graph.builder import apply_binary
from repro.frontend.intrinsics import INTRINSICS
from repro.frontend.types import BOOLEAN, FLOAT, INT
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, MoveOp, Op,
                           SelectOp, StoreOp, Temp, UnOp, Value, const_bool,
                           const_float, const_int)
from repro.lir.program import Program

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _apply_subst(program: Program, subst: dict[Temp, Value]) -> None:
    """Rewrite every operand through ``subst`` (chased to a fixpoint)."""
    if not subst:
        return

    def resolve(value: Value) -> Value:
        seen = 0
        while isinstance(value, Temp) and value in subst:
            value = subst[value]
            seen += 1
            assert seen < 1_000_000, "substitution cycle"
        return value

    for _title, ops in program.sections():
        for op in ops:
            op.map_operands(resolve)
    program.carry_inits = [resolve(v) for v in program.carry_inits]
    program.carry_nexts = [resolve(v) for v in program.carry_nexts]


def copy_propagation(program: Program) -> int:
    """Forward ``move`` results (and no-op casts) to their sources."""
    subst: dict[Temp, Value] = {}
    removed = 0
    for _title, ops in program.sections():
        kept: list[Op] = []
        for op in ops:
            if isinstance(op, MoveOp) and op.result is not None \
                    and not op.routing:
                subst[op.result] = op.src
                removed += 1
                continue
            if isinstance(op, CastOp) and op.result is not None \
                    and op.operand.ty == op.result.ty:
                subst[op.result] = op.operand
                removed += 1
                continue
            kept.append(op)
        ops[:] = kept
    _apply_subst(program, subst)
    return removed


def _fold_op(op: Op) -> Value | None:
    """Return a replacement value if ``op`` folds, else None."""
    if isinstance(op, BinOp) and isinstance(op.lhs, Const) \
            and isinstance(op.rhs, Const):
        value = apply_binary(op.op, op.lhs.value, op.rhs.value,
                             UNKNOWN_LOCATION, "")
        if op.op in _CMP_OPS:
            return const_bool(bool(value))
        if op.lhs.ty == INT and op.rhs.ty == INT:
            return const_int(int(value))  # type: ignore[arg-type]
        if op.lhs.ty == BOOLEAN:
            return const_bool(bool(value))
        return const_float(float(value))  # type: ignore[arg-type]
    if isinstance(op, BinOp):
        return _fold_algebraic(op)
    if isinstance(op, UnOp) and isinstance(op.operand, Const):
        if op.op == "-":
            if op.operand.ty == INT:
                return const_int(-op.operand.value)  # type: ignore
            return const_float(-op.operand.value)  # type: ignore
        if op.op == "!":
            return const_bool(not op.operand.value)
        if op.op == "~":
            return const_int(~op.operand.value)  # type: ignore[operator]
    if isinstance(op, CastOp) and isinstance(op.operand, Const):
        assert op.result is not None
        if op.result.ty == INT:
            return const_int(int(op.operand.value))  # type: ignore
        if op.result.ty == FLOAT:
            return const_float(float(op.operand.value))  # type: ignore
        return const_bool(bool(op.operand.value))
    if isinstance(op, SelectOp) and isinstance(op.cond, Const):
        return op.then if op.cond.value else op.otherwise
    if isinstance(op, SelectOp) and op.then is op.otherwise:
        return op.then
    if isinstance(op, CallOp) and op.pure \
            and INTRINSICS[op.name].pure \
            and all(isinstance(a, Const) for a in op.args):
        intrinsic = INTRINSICS[op.name]
        assert intrinsic.impl is not None
        value = intrinsic.impl(*[a.value for a in op.args])  # type: ignore
        assert op.result is not None
        if op.result.ty == INT:
            return const_int(int(value))
        return const_float(float(value))
    return None


def _fold_algebraic(op: BinOp) -> Value | None:
    """Exact algebraic identities.

    Float rules are restricted to transformations that are bit-exact for
    every input (so ``x + 0.0`` is *not* folded: it changes ``-0.0``).
    """
    lhs, rhs = op.lhs, op.rhs
    is_int = lhs.ty == INT and rhs.ty == INT
    is_bool = lhs.ty == BOOLEAN and rhs.ty == BOOLEAN

    def const_is(value: Value, number: object) -> bool:
        return isinstance(value, Const) and value.value == number \
            and type(value.value) is type(number)

    if is_bool and op.op == "&":
        if const_is(lhs, True):
            return rhs
        if const_is(rhs, True):
            return lhs
        if const_is(lhs, False) or const_is(rhs, False):
            return const_bool(False)
    if is_bool and op.op == "|":
        if const_is(lhs, False):
            return rhs
        if const_is(rhs, False):
            return lhs
        if const_is(lhs, True) or const_is(rhs, True):
            return const_bool(True)

    if op.op == "+" and is_int:
        if const_is(lhs, 0):
            return rhs
        if const_is(rhs, 0):
            return lhs
    if op.op == "-" and is_int and const_is(rhs, 0):
        return lhs
    if op.op == "*":
        if is_int and (const_is(lhs, 0) or const_is(rhs, 0)):
            return const_int(0)
        if const_is(rhs, 1) or const_is(rhs, 1.0):
            return lhs
        if const_is(lhs, 1) or const_is(lhs, 1.0):
            return rhs
    if op.op == "/" and (const_is(rhs, 1) or const_is(rhs, 1.0)):
        return lhs
    if op.op in ("<<", ">>") and const_is(rhs, 0):
        return lhs
    if op.op == "&" and is_int:
        if const_is(lhs, 0) or const_is(rhs, 0):
            return const_int(0)
    if op.op in ("|", "^") and is_int:
        if const_is(lhs, 0):
            return rhs
        if const_is(rhs, 0):
            return lhs
    return None


def constant_folding(program: Program) -> int:
    """Fold ops whose operands are constants; apply algebraic identities."""
    folded = 0
    subst: dict[Temp, Value] = {}

    def resolve(value: Value) -> Value:
        while isinstance(value, Temp) and value in subst:
            value = subst[value]
        return value

    for _title, ops in program.sections():
        kept: list[Op] = []
        for op in ops:
            op.map_operands(resolve)
            replacement = _fold_op(op)
            if replacement is not None and op.result is not None:
                subst[op.result] = replacement
                folded += 1
                continue
            kept.append(op)
        ops[:] = kept
    program.carry_inits = [resolve(v) for v in program.carry_inits]
    program.carry_nexts = [resolve(v) for v in program.carry_nexts]
    return folded


def _vkey(value: Value) -> tuple:
    """A hashable identity for CSE: constants by value, temps by id."""
    if isinstance(value, Const):
        return ("c", value.ty.name, type(value.value).__name__, value.value)
    assert isinstance(value, Temp)
    return ("t", value.id)


def _cse_key(op: Op) -> tuple | None:
    if isinstance(op, BinOp):
        lhs, rhs = _vkey(op.lhs), _vkey(op.rhs)
        if op.op in ("+", "*", "&", "|", "^", "==", "!="):
            lhs, rhs = min(lhs, rhs), max(lhs, rhs)  # commutative
        return ("bin", op.op, lhs, rhs)
    if isinstance(op, UnOp):
        return ("un", op.op, _vkey(op.operand))
    if isinstance(op, CastOp):
        assert op.result is not None
        return ("cast", op.result.ty.name, _vkey(op.operand))
    if isinstance(op, SelectOp):
        return ("select", _vkey(op.cond), _vkey(op.then),
                _vkey(op.otherwise))
    if isinstance(op, CallOp):
        # Never deduplicate an effectful call: two `randi(n)` calls must
        # advance the RNG twice even with identical operands.  Belt and
        # suspenders — check both the op's own flag and the intrinsic
        # table, so a CallOp constructed with the default ``pure=True``
        # for an impure intrinsic still cannot be merged.
        intrinsic = INTRINSICS.get(op.name)
        if op.has_side_effect or (intrinsic is not None
                                  and not intrinsic.pure):
            return None
        return ("call", op.name, tuple(_vkey(a) for a in op.args))
    return None


def common_subexpression_elimination(program: Program) -> int:
    """Deduplicate pure ops; loads are versioned per state slot."""
    removed = 0
    subst: dict[Temp, Value] = {}

    def resolve(value: Value) -> Value:
        while isinstance(value, Temp) and value in subst:
            value = subst[value]
        return value

    for _title, ops in program.sections():
        available: dict[tuple, Temp] = {}
        versions: dict[str, int] = {}
        kept: list[Op] = []
        for op in ops:
            op.map_operands(resolve)
            if isinstance(op, StoreOp):
                versions[op.slot.name] = versions.get(op.slot.name, 0) + 1
                kept.append(op)
                continue
            if isinstance(op, LoadOp):
                key = ("load", op.slot.name,
                       _vkey(op.index) if op.index is not None else None,
                       versions.get(op.slot.name, 0))
            else:
                key = _cse_key(op)
            if key is None or op.result is None:
                kept.append(op)
                continue
            existing = available.get(key)
            if existing is not None:
                subst[op.result] = existing
                removed += 1
                continue
            available[key] = op.result
            kept.append(op)
        ops[:] = kept
    program.carry_inits = [resolve(v) for v in program.carry_inits]
    program.carry_nexts = [resolve(v) for v in program.carry_nexts]
    return removed


def dead_code_elimination(program: Program) -> int:
    """Remove pure ops whose results are never used.

    Liveness flows backwards across all three sections plus the carry
    lists (carry values are live by definition: they feed the next
    iteration or the steady block parameters).
    """
    live: set[int] = set()

    def mark(value: Value) -> None:
        if isinstance(value, Temp):
            live.add(value.id)

    for value in program.carry_inits:
        mark(value)
    for value in program.carry_nexts:
        mark(value)

    # Stores to slots that are never loaded anywhere are dead effects.
    loaded_slots = {
        op.slot.name
        for _t, ops in program.sections() for op in ops
        if isinstance(op, LoadOp)}

    removed = 0
    sections = [ops for _t, ops in program.sections()]
    for ops in reversed(sections):
        kept_rev: list[Op] = []
        for op in reversed(ops):
            if isinstance(op, StoreOp) and op.slot.name not in loaded_slots:
                removed += 1
                continue
            needed = op.has_side_effect or (
                op.result is not None and op.result.id in live)
            if not needed:
                removed += 1
                continue
            for operand in op.operands():
                mark(operand)
            kept_rev.append(op)
        ops[:] = list(reversed(kept_rev))
    # Drop state slots that no remaining op touches.
    used_slots = {
        op.slot.name
        for _t, ops in program.sections() for op in ops
        if isinstance(op, (LoadOp, StoreOp))}
    program.state_slots = [s for s in program.state_slots
                           if s.name in used_slots]
    return removed
