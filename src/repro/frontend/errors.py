"""Diagnostics for the StreamIt-subset frontend and the LaminarIR pipeline.

Every error raised by the compiler carries a :class:`SourceLocation` so that
messages can point at the offending token, StreamIt-style::

    fm_radio.str:12:9: rate error: work body popped 3 tokens, declared pop 2
            pop();
            ^
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position inside a source file (1-based line and column)."""

    filename: str = "<string>"
    line: int = 0
    column: int = 0

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = SourceLocation()


class CompileError(Exception):
    """Base class for every error produced by the compilation pipeline."""

    kind = "error"

    def __init__(self, message: str, loc: SourceLocation = UNKNOWN_LOCATION,
                 source: str | None = None):
        self.message = message
        self.loc = loc
        self.source = source
        super().__init__(self.format())

    def format(self) -> str:
        """Render the diagnostic, with a source excerpt when available."""
        head = f"{self.loc}: {self.kind}: {self.message}"
        if self.source is None or self.loc.line <= 0:
            return head
        lines = self.source.splitlines()
        if self.loc.line > len(lines):
            return head
        excerpt = lines[self.loc.line - 1]
        caret = " " * max(self.loc.column - 1, 0) + "^"
        return f"{head}\n{excerpt}\n{caret}"


class LexError(CompileError):
    kind = "lex error"


class ParseError(CompileError):
    kind = "parse error"


class SemanticError(CompileError):
    kind = "semantic error"


class ElaborationError(CompileError):
    """Raised while instantiating the hierarchical stream graph."""

    kind = "elaboration error"


class RateError(CompileError):
    """Raised when declared push/pop/peek rates are inconsistent."""

    kind = "rate error"


class ScheduleError(CompileError):
    """Raised when no valid initialization or steady-state schedule exists."""

    kind = "schedule error"


class LoweringError(CompileError):
    """Raised when a program cannot be lowered to LaminarIR."""

    kind = "lowering error"


class InterpError(CompileError):
    """Raised on a run-time fault inside one of the interpreters."""

    kind = "interpreter error"
