"""Recursive-descent parser for the StreamIt-subset language.

Grammar highlights (close to StreamIt 2.x):

* top level: ``[in -> out] filter|pipeline|splitjoin|feedbackloop Name(params) {...}``
* filters: field declarations, helper functions, ``init`` block and one
  ``work push P pop O peek K { ... }`` block
* composite bodies may use ``add`` inside ``for``/``if`` so graph shapes can
  be parameterized
* expressions are C-like with ``peek(i)``/``pop()`` usable as values

The parser performs no name resolution; it only builds the AST defined in
:mod:`repro.frontend.ast_nodes`.
"""

from __future__ import annotations

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import ParseError, SourceLocation
from repro.frontend.lexer import Token, tokenize
from repro.frontend.types import ArrayType, Type, scalar

_TYPE_KEYWORDS = ("int", "float", "boolean", "void")
_STREAM_KINDS = ("filter", "pipeline", "splitjoin", "feedbackloop")

_ASSIGN_OPS = ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=")

# Binary operator precedence, low to high.  Each level is left-associative.
_PRECEDENCE: list[tuple[str, ...]] = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename
        self.tokens = tokenize(source, filename)
        self.pos = 0
        self._anon_counter = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _at(self, *kinds: str) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _accept(self, kind: str) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    def _expect(self, kind: str, context: str = "") -> Token:
        if self._at(kind):
            return self._advance()
        where = f" in {context}" if context else ""
        actual = self._peek()
        raise ParseError(
            f"expected {kind!r}{where}, found {actual.text!r}",
            actual.loc, self.source)

    def _error(self, message: str, loc: SourceLocation | None = None) -> ParseError:
        return ParseError(message, loc or self._peek().loc, self.source)

    # -- entry point ---------------------------------------------------------

    def parse_program(self) -> ast.Program:
        streams: list[ast.StreamDecl] = []
        while not self._at("eof"):
            streams.append(self._parse_stream_decl())
        if not streams:
            raise self._error("empty program: expected a stream declaration")
        return ast.Program(streams=streams, source=self.source,
                           filename=self.filename)

    # -- stream declarations --------------------------------------------------

    def _parse_type_signature(self) -> tuple[Type | None, Type | None]:
        if self._at(*_TYPE_KEYWORDS):
            in_type = self._parse_type(allow_array=True)
            self._expect("->", "stream type signature")
            out_type = self._parse_type(allow_array=True)
            return in_type, out_type
        return None, None

    def _parse_stream_decl(self, anonymous: bool = False) -> ast.StreamDecl:
        loc = self._peek().loc
        in_type, out_type = self._parse_type_signature()
        if not self._at(*_STREAM_KINDS):
            raise self._error(
                f"expected stream kind, found {self._peek().text!r}")
        kind = self._advance().kind

        if anonymous and not self._at("ident"):
            name = self._fresh_anon_name(kind)
            params: list[ast.Param] = []
        else:
            name = self._expect("ident", f"{kind} declaration").text
            params = self._parse_params()

        if kind == "filter":
            decl: ast.StreamDecl = self._parse_filter_body(
                name, in_type, out_type, params, loc)
        elif kind == "pipeline":
            decl = ast.PipelineDecl(
                name=name, in_type=in_type, out_type=out_type, params=params,
                body=self._parse_composite_block(), loc=loc)
        elif kind == "splitjoin":
            decl = self._parse_splitjoin_body(
                name, in_type, out_type, params, loc)
        else:
            decl = self._parse_feedbackloop_body(
                name, in_type, out_type, params, loc)
        return decl

    def _fresh_anon_name(self, kind: str) -> str:
        self._anon_counter += 1
        return f"_Anon{kind.capitalize()}{self._anon_counter}"

    def _parse_params(self) -> list[ast.Param]:
        params: list[ast.Param] = []
        if not self._accept("("):
            return params
        if not self._at(")"):
            while True:
                loc = self._peek().loc
                ty = self._parse_type(allow_array=True)
                name = self._expect("ident", "parameter").text
                params.append(ast.Param(ty=ty, name=name, loc=loc))
                if not self._accept(","):
                    break
        self._expect(")", "parameter list")
        return params

    # -- types ----------------------------------------------------------------

    def _parse_type(self, allow_array: bool = False) -> Type:
        token = self._peek()
        if token.kind not in _TYPE_KEYWORDS:
            raise self._error(f"expected a type, found {token.text!r}")
        self._advance()
        ty: Type = scalar(token.kind)
        # StreamIt spells array types `float[N]`; sizes are expressions that
        # elaboration resolves, so here we only count the dimensions.  The
        # size expressions are re-parsed by the declaration parsers, so this
        # form is only legal where those parsers call us.
        return ty

    def _parse_dims(self) -> list[ast.Expr]:
        """Parse zero or more ``[expr]`` suffixes (array dimensions)."""
        dims: list[ast.Expr] = []
        while self._accept("["):
            dims.append(self._parse_expr())
            self._expect("]", "array dimension")
        return dims

    # -- filter ----------------------------------------------------------------

    def _parse_filter_body(self, name: str, in_type: Type | None,
                           out_type: Type | None, params: list[ast.Param],
                           loc: SourceLocation) -> ast.FilterDecl:
        self._expect("{", "filter body")
        fields: list[ast.FieldDecl] = []
        helpers: list[ast.HelperFunc] = []
        init_block: ast.Block | None = None
        work: ast.WorkDecl | None = None
        prework: ast.WorkDecl | None = None

        while not self._at("}"):
            if self._at("init"):
                if init_block is not None:
                    raise self._error("duplicate init block")
                self._advance()
                init_block = self._parse_block()
            elif self._at("work"):
                if work is not None:
                    raise self._error("duplicate work block")
                work = self._parse_work()
            elif self._at("prework"):
                if prework is not None:
                    raise self._error("duplicate prework block")
                prework = self._parse_work()
            elif self._at(*_TYPE_KEYWORDS):
                self._parse_field_or_helper(fields, helpers)
            else:
                raise self._error(
                    f"unexpected token {self._peek().text!r} in filter body")
        self._expect("}", "filter body")

        if work is None:
            raise ParseError(f"filter {name} has no work block", loc,
                             self.source)
        return ast.FilterDecl(
            name=name, in_type=in_type, out_type=out_type, params=params,
            fields=fields, helpers=helpers, init=init_block, work=work,
            prework=prework, loc=loc)

    def _parse_field_or_helper(self, fields: list[ast.FieldDecl],
                               helpers: list[ast.HelperFunc]) -> None:
        loc = self._peek().loc
        ty = self._parse_type()
        type_dims = self._parse_dims()  # `float[N] xs;` form
        name = self._expect("ident", "field or helper declaration").text
        if self._at("(") and not type_dims:
            helpers.append(self._parse_helper(ty, name, loc))
            return
        while True:
            decl_dims = self._parse_dims()  # `float xs[N];` form
            init = self._parse_expr() if self._accept("=") else None
            fields.append(ast.FieldDecl(
                ty=ty, name=name, dims=type_dims + decl_dims, init=init,
                loc=loc))
            if not self._accept(","):
                break
            name = self._expect("ident", "field declaration").text
        self._expect(";", "field declaration")

    def _parse_helper(self, return_type: Type, name: str,
                      loc: SourceLocation) -> ast.HelperFunc:
        params = self._parse_params()
        body = self._parse_block()
        return ast.HelperFunc(return_type=return_type, name=name,
                              params=params, body=body, loc=loc)

    def _parse_work(self) -> ast.WorkDecl:
        loc = self._advance().loc  # consume `work` / `prework`
        push_rate = pop_rate = peek_rate = None
        while self._at("push", "pop", "peek"):
            which = self._advance().kind
            rate = self._parse_expr()
            if which == "push":
                push_rate = rate
            elif which == "pop":
                pop_rate = rate
            else:
                peek_rate = rate
        body = self._parse_block()
        return ast.WorkDecl(push_rate=push_rate, pop_rate=pop_rate,
                            peek_rate=peek_rate, body=body, loc=loc)

    # -- composites -------------------------------------------------------------

    def _parse_composite_block(self) -> ast.Block:
        loc = self._expect("{", "composite body").loc
        stmts: list[ast.Stmt] = []
        while not self._at("}"):
            stmts.append(self._parse_stmt(composite=True))
        self._expect("}", "composite body")
        return ast.Block(stmts=stmts, loc=loc)

    def _parse_splitjoin_body(self, name: str, in_type: Type | None,
                              out_type: Type | None,
                              params: list[ast.Param],
                              loc: SourceLocation) -> ast.SplitJoinDecl:
        self._expect("{", "splitjoin body")
        split: ast.SplitDecl | None = None
        join: ast.JoinDecl | None = None
        stmts: list[ast.Stmt] = []
        while not self._at("}"):
            if self._at("split"):
                if split is not None:
                    raise self._error("duplicate split declaration")
                split = self._parse_split_decl()
            elif self._at("join"):
                if join is not None:
                    raise self._error("duplicate join declaration")
                join = self._parse_join_decl()
            else:
                stmts.append(self._parse_stmt(composite=True))
        self._expect("}", "splitjoin body")
        if split is None or join is None:
            raise ParseError(f"splitjoin {name} needs both split and join",
                             loc, self.source)
        return ast.SplitJoinDecl(
            name=name, in_type=in_type, out_type=out_type, params=params,
            split=split, join=join, body=ast.Block(stmts=stmts, loc=loc),
            loc=loc)

    def _parse_split_decl(self) -> ast.SplitDecl:
        loc = self._expect("split").loc
        if self._accept("duplicate"):
            decl = ast.SplitDecl(kind="duplicate", loc=loc)
        else:
            self._expect("roundrobin", "split declaration")
            decl = ast.SplitDecl(kind="roundrobin",
                                 weights=self._parse_weights(), loc=loc)
        self._expect(";", "split declaration")
        return decl

    def _parse_join_decl(self) -> ast.JoinDecl:
        loc = self._expect("join").loc
        self._expect("roundrobin", "join declaration")
        decl = ast.JoinDecl(kind="roundrobin", weights=self._parse_weights(),
                            loc=loc)
        self._expect(";", "join declaration")
        return decl

    def _parse_weights(self) -> list[ast.Expr]:
        weights: list[ast.Expr] = []
        if self._accept("("):
            if not self._at(")"):
                while True:
                    weights.append(self._parse_expr())
                    if not self._accept(","):
                        break
            self._expect(")", "round-robin weights")
        return weights

    def _parse_feedbackloop_body(self, name: str, in_type: Type | None,
                                 out_type: Type | None,
                                 params: list[ast.Param],
                                 loc: SourceLocation) -> ast.FeedbackLoopDecl:
        self._expect("{", "feedbackloop body")
        join: ast.JoinDecl | None = None
        split: ast.SplitDecl | None = None
        body_add: ast.AddStmt | None = None
        loop_add: ast.AddStmt | None = None
        enqueues: list[ast.EnqueueStmt] = []
        while not self._at("}"):
            if self._at("join"):
                join = self._parse_join_decl()
            elif self._at("split"):
                split = self._parse_split_decl()
            elif self._at("body"):
                self._advance()
                body_add = self._parse_add_target()
            elif self._at("loop"):
                self._advance()
                loop_add = self._parse_add_target()
            elif self._at("enqueue"):
                enq_loc = self._advance().loc
                has_paren = self._accept("(") is not None
                value = self._parse_expr()
                if has_paren:
                    self._expect(")", "enqueue")
                self._expect(";", "enqueue")
                enqueues.append(ast.EnqueueStmt(value=value, loc=enq_loc))
            else:
                raise self._error(
                    f"unexpected token {self._peek().text!r} in feedbackloop")
        self._expect("}", "feedbackloop body")
        if join is None or split is None or body_add is None or loop_add is None:
            raise ParseError(
                f"feedbackloop {name} needs join, body, loop and split",
                loc, self.source)
        return ast.FeedbackLoopDecl(
            name=name, in_type=in_type, out_type=out_type, params=params,
            join=join, split=split, body_add=body_add, loop_add=loop_add,
            enqueues=enqueues, loc=loc)

    def _parse_add_target(self) -> ast.AddStmt:
        """The stream reference after ``body``/``loop`` or ``add``."""
        loc = self._peek().loc
        if self._at(*_STREAM_KINDS) or self._at(*_TYPE_KEYWORDS):
            anon = self._parse_stream_decl(anonymous=True)
            self._accept(";")
            return ast.AddStmt(anonymous=anon, child=anon.name, loc=loc)
        child = self._expect("ident", "add statement").text
        args: list[ast.Expr] = []
        if self._accept("("):
            if not self._at(")"):
                while True:
                    args.append(self._parse_expr())
                    if not self._accept(","):
                        break
            self._expect(")", "add statement")
        self._expect(";", "add statement")
        return ast.AddStmt(child=child, args=args, loc=loc)

    # -- statements ---------------------------------------------------------------

    def _parse_block(self, composite: bool = False) -> ast.Block:
        loc = self._expect("{", "block").loc
        stmts: list[ast.Stmt] = []
        while not self._at("}"):
            stmts.append(self._parse_stmt(composite))
        self._expect("}", "block")
        return ast.Block(stmts=stmts, loc=loc)

    def _parse_stmt(self, composite: bool = False) -> ast.Stmt:
        token = self._peek()
        if token.kind == "{":
            return self._parse_block(composite)
        if token.kind == "if":
            return self._parse_if(composite)
        if token.kind == "for":
            return self._parse_for(composite)
        if token.kind == "while":
            return self._parse_while(composite)
        if token.kind == "do":
            return self._parse_do_while()
        if token.kind == "add":
            if not composite:
                raise self._error("`add` is only allowed in composite bodies")
            self._advance()
            return self._parse_add_target()
        if token.kind == "push":
            self._advance()
            self._expect("(", "push statement")
            value = self._parse_expr()
            self._expect(")", "push statement")
            self._expect(";", "push statement")
            return ast.PushStmt(value=value, loc=token.loc)
        if token.kind in ("println", "print"):
            self._advance()
            self._expect("(", "print statement")
            value = self._parse_expr()
            self._expect(")", "print statement")
            self._expect(";", "print statement")
            return ast.PrintStmt(value=value, newline=token.kind == "println",
                                 loc=token.loc)
        if token.kind == "return":
            self._advance()
            value = None if self._at(";") else self._parse_expr()
            self._expect(";", "return statement")
            return ast.ReturnStmt(value=value, loc=token.loc)
        if token.kind == "break":
            self._advance()
            self._expect(";", "break statement")
            return ast.BreakStmt(loc=token.loc)
        if token.kind == "continue":
            self._advance()
            self._expect(";", "continue statement")
            return ast.ContinueStmt(loc=token.loc)
        if token.kind in _TYPE_KEYWORDS:
            stmt = self._parse_var_decl()
            self._expect(";", "variable declaration")
            return stmt
        if token.kind == ";":
            self._advance()
            return ast.Block(loc=token.loc)
        stmt = self._parse_expr_or_assign()
        self._expect(";", "statement")
        return stmt

    def _parse_var_decl(self) -> ast.Stmt:
        loc = self._peek().loc
        ty = self._parse_type()
        type_dims = self._parse_dims()
        decls: list[ast.Stmt] = []
        while True:
            name = self._expect("ident", "variable declaration").text
            decl_dims = self._parse_dims()
            init = self._parse_expr() if self._accept("=") else None
            decls.append(ast.VarDecl(var_type=ty, name=name,
                                     dims=type_dims + decl_dims, init=init,
                                     loc=loc))
            if not self._accept(","):
                break
        return decls[0] if len(decls) == 1 else ast.Block(stmts=decls, loc=loc)

    def _parse_if(self, composite: bool) -> ast.IfStmt:
        loc = self._advance().loc
        self._expect("(", "if statement")
        cond = self._parse_expr()
        self._expect(")", "if statement")
        then = self._parse_stmt(composite)
        otherwise = None
        if self._accept("else"):
            otherwise = self._parse_stmt(composite)
        return ast.IfStmt(cond=cond, then=then, otherwise=otherwise, loc=loc)

    def _parse_for(self, composite: bool) -> ast.ForStmt:
        loc = self._advance().loc
        self._expect("(", "for statement")
        init: ast.Stmt | None = None
        if not self._at(";"):
            if self._at(*_TYPE_KEYWORDS):
                init = self._parse_var_decl()
            else:
                init = self._parse_expr_or_assign()
        self._expect(";", "for statement")
        cond = None if self._at(";") else self._parse_expr()
        self._expect(";", "for statement")
        step = None if self._at(")") else self._parse_expr_or_assign()
        self._expect(")", "for statement")
        body = self._parse_stmt(composite)
        return ast.ForStmt(init=init, cond=cond, step=step, body=body,
                           loc=loc)

    def _parse_while(self, composite: bool = False) -> ast.WhileStmt:
        loc = self._advance().loc
        self._expect("(", "while statement")
        cond = self._parse_expr()
        self._expect(")", "while statement")
        body = self._parse_stmt(composite)
        return ast.WhileStmt(cond=cond, body=body, loc=loc)

    def _parse_do_while(self) -> ast.DoWhileStmt:
        loc = self._advance().loc
        body = self._parse_stmt()
        self._expect("while", "do-while statement")
        self._expect("(", "do-while statement")
        cond = self._parse_expr()
        self._expect(")", "do-while statement")
        self._expect(";", "do-while statement")
        return ast.DoWhileStmt(body=body, cond=cond, loc=loc)

    def _parse_expr_or_assign(self) -> ast.Stmt:
        loc = self._peek().loc
        if self._at("++", "--"):
            op = self._advance().kind
            target = self._parse_unary()
            delta = ast.IntLit(value=1, loc=loc)
            return ast.Assign(target=target,
                              op="+=" if op == "++" else "-=",
                              value=delta, loc=loc)
        expr = self._parse_expr()
        token = self._peek()
        if token.kind in _ASSIGN_OPS:
            self._advance()
            value = self._parse_expr()
            return ast.Assign(target=expr, op=token.kind, value=value,
                              loc=loc)
        if token.kind in ("++", "--"):
            self._advance()
            delta = ast.IntLit(value=1, loc=loc)
            return ast.Assign(target=expr,
                              op="+=" if token.kind == "++" else "-=",
                              value=delta, loc=loc)
        return ast.ExprStmt(expr=expr, loc=loc)

    # -- expressions ----------------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self._accept("?"):
            then = self._parse_expr()
            self._expect(":", "conditional expression")
            otherwise = self._parse_ternary()
            return ast.TernaryOp(cond=cond, then=then, otherwise=otherwise,
                                 loc=cond.loc)
        return cond

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(level + 1)
        while self._peek().kind in _PRECEDENCE[level]:
            op = self._advance()
            right = self._parse_binary(level + 1)
            left = ast.BinaryOp(op=op.kind, left=left, right=right,
                                loc=op.loc)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind in ("-", "!", "~"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(op=token.kind, operand=operand, loc=token.loc)
        if token.kind == "+":
            self._advance()
            return self._parse_unary()
        if token.kind == "(" and self._peek(1).kind in _TYPE_KEYWORDS \
                and self._peek(2).kind == ")":
            self._advance()
            target = self._parse_type()
            self._expect(")")
            operand = self._parse_unary()
            return ast.Cast(target=target, operand=operand, loc=token.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            if self._at("["):
                loc = self._advance().loc
                index = self._parse_expr()
                self._expect("]", "index expression")
                expr = ast.Index(base=expr, index=index, loc=loc)
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == "int_lit":
            self._advance()
            value = int(token.text, 0)
            if value >= 2 ** 31:  # e.g. 0x9e3779b9: wraps like C u32->i32
                value -= 2 ** 32
            return ast.IntLit(value=value, loc=token.loc)
        if token.kind == "float_lit":
            self._advance()
            return ast.FloatLit(value=float(token.text), loc=token.loc)
        if token.kind in ("true", "false"):
            self._advance()
            return ast.BoolLit(value=token.kind == "true", loc=token.loc)
        if token.kind == "pi":
            self._advance()
            return ast.FloatLit(value=3.141592653589793, loc=token.loc)
        if token.kind == "string":
            self._advance()
            return ast.StringLit(value=token.text, loc=token.loc)
        if token.kind == "peek":
            self._advance()
            self._expect("(", "peek expression")
            offset = self._parse_expr()
            self._expect(")", "peek expression")
            return ast.PeekExpr(offset=offset, loc=token.loc)
        if token.kind == "pop":
            self._advance()
            self._expect("(", "pop expression")
            self._expect(")", "pop expression")
            return ast.PopExpr(loc=token.loc)
        if token.kind == "ident":
            self._advance()
            if self._at("("):
                return self._parse_call(token)
            return ast.Ident(name=token.text, loc=token.loc)
        if token.kind == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect(")", "parenthesized expression")
            return expr
        raise self._error(f"expected an expression, found {token.text!r}")

    def _parse_call(self, name_token: Token) -> ast.Call:
        self._expect("(")
        args: list[ast.Expr] = []
        if not self._at(")"):
            while True:
                args.append(self._parse_expr())
                if not self._accept(","):
                    break
        self._expect(")", "call expression")
        return ast.Call(name=name_token.text, args=args, loc=name_token.loc)


def parse(source: str, filename: str = "<string>") -> ast.Program:
    """Parse ``source`` into a :class:`~repro.frontend.ast_nodes.Program`."""
    return Parser(source, filename).parse_program()
