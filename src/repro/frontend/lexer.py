"""Tokenizer for the StreamIt-subset language.

The lexer is a straightforward maximal-munch scanner.  It produces a flat
list of :class:`Token` objects terminated by an ``EOF`` token; the parser
never needs to touch raw text again.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend.errors import LexError, SourceLocation

KEYWORDS = frozenset({
    "filter", "pipeline", "splitjoin", "feedbackloop",
    "split", "join", "duplicate", "roundrobin", "enqueue",
    "add", "body", "loop",
    "work", "init", "prework", "push", "pop", "peek",
    "int", "float", "boolean", "void", "complex",
    "if", "else", "for", "while", "do", "return", "break", "continue",
    "true", "false", "pi", "println", "print",
})

# Multi-character operators first so maximal munch picks them over prefixes.
OPERATORS = (
    "<<=", ">>=",
    "->", "++", "--", "&&", "||", "==", "!=", "<=", ">=", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ",", ";", ":", "?", ".",
)


@dataclass(frozen=True)
class Token:
    """One lexical token.

    ``kind`` is one of ``"ident"``, ``"int_lit"``, ``"float_lit"``,
    ``"string"``, a keyword spelling, or an operator spelling.  Keywords
    and operators use their own text as the kind, which keeps parser code
    readable (``self._expect("->")``); literal kinds carry the ``_lit``
    suffix so they can never collide with the ``int``/``float`` type
    keywords.
    """

    kind: str
    text: str
    loc: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r}, {self.loc})"


class Lexer:
    """Scans source text into tokens."""

    def __init__(self, source: str, filename: str = "<string>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        tokens: list[Token] = []
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                tokens.append(Token("eof", "", self._loc()))
                return tokens
            tokens.append(self._next_token())

    # -- internals ---------------------------------------------------------

    def _loc(self) -> SourceLocation:
        return SourceLocation(self.filename, self.line, self.column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos >= len(self.source):
                return
            if self.source[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._loc()
        self._advance(2)
        while self.pos < len(self.source):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", start, self.source)

    def _next_token(self) -> Token:
        loc = self._loc()
        ch = self._peek()
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._lex_number(loc)
        if ch.isalpha() or ch == "_":
            return self._lex_word(loc)
        if ch == '"':
            return self._lex_string(loc)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token(op, op, loc)
        raise LexError(f"unexpected character {ch!r}", loc, self.source)

    def _lex_number(self, loc: SourceLocation) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not _is_hex_digit(self._peek()):
                raise LexError("invalid hex literal", loc, self.source)
            while _is_hex_digit(self._peek()):
                self._advance()
            return Token("int_lit", self.source[start:self.pos], loc)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1) != ".":
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        # StreamIt float literals may carry an `f` suffix; accept and drop it.
        if self._peek() != "" and self._peek() in "fF":
            is_float = True
            self._advance()
        return Token("float_lit" if is_float else "int_lit", text, loc)

    def _lex_word(self, loc: SourceLocation) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.source[start:self.pos]
        kind = text if text in KEYWORDS else "ident"
        return Token(kind, text, loc)

    def _lex_string(self, loc: SourceLocation) -> Token:
        self._advance()
        chars: list[str] = []
        while True:
            ch = self._peek()
            if ch == "":
                raise LexError("unterminated string literal", loc, self.source)
            if ch == '"':
                self._advance()
                return Token("string", "".join(chars), loc)
            if ch == "\\":
                self._advance()
                escape = self._peek()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise LexError(f"unknown escape \\{escape}", self._loc(),
                                   self.source)
                chars.append(mapping[escape])
                self._advance()
            else:
                chars.append(ch)
                self._advance()


def _is_hex_digit(ch: str) -> bool:
    return ch != "" and ch in "0123456789abcdefABCDEF"


def tokenize(source: str, filename: str = "<string>") -> list[Token]:
    """Convenience wrapper: tokenize ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
