"""Semantic analysis: name resolution and type checking.

Runs after parsing and before elaboration.  Array sizes and rate values are
*expressions* at this point (they may reference stream parameters), so this
pass checks their types but not their values — value resolution happens in
:mod:`repro.graph.builder` once parameters are bound.

The pass mutates ``Expr.ty`` slots in place and raises
:class:`~repro.frontend.errors.SemanticError` on the first problem found.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.frontend import ast_nodes as ast
from repro.frontend.errors import SemanticError, SourceLocation
from repro.frontend.intrinsics import (INTRINSICS, expects_int_args,
                                       result_type)
from repro.frontend.types import (ArrayType, BOOLEAN, FLOAT, INT, ScalarType,
                                  Type, VOID, unify_numeric)

_ARITH_OPS = ("+", "-", "*", "/")
_INT_OPS = ("%", "&", "|", "^", "<<", ">>")
_CMP_OPS = ("<", "<=", ">", ">=")
_EQ_OPS = ("==", "!=")
_LOGIC_OPS = ("&&", "||")


@dataclass
class Binding:
    kind: str  # "param" | "field" | "local" | "helper"
    ty: Type
    decl: ast.Node | None = None


class Scope:
    def __init__(self, parent: "Scope | None" = None):
        self.parent = parent
        self.bindings: dict[str, Binding] = {}

    def define(self, name: str, binding: Binding,
               loc: SourceLocation, source: str) -> None:
        if name in self.bindings:
            raise SemanticError(f"redefinition of {name!r}", loc, source)
        self.bindings[name] = binding

    def lookup(self, name: str) -> Binding | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


@dataclass
class _StreamContext:
    """What the checker needs to know about the enclosing stream."""

    decl: ast.StreamDecl
    in_type: Type
    out_type: Type
    in_work: bool = False  # token ops legal only here
    helper_return: Type | None = None


class Analyzer:
    def __init__(self, program: ast.Program):
        self.program = program
        self.source = program.source
        self.global_names = {decl.name for decl in program.streams}

    # -- entry ---------------------------------------------------------------

    def analyze(self) -> None:
        seen: set[str] = set()
        for decl in self.program.streams:
            if decl.name in seen:
                raise self._err(f"duplicate stream name {decl.name!r}",
                                decl.loc)
            seen.add(decl.name)
        for decl in self.program.streams:
            self._check_stream(decl, Scope())
        top = self.program.top
        if top.params:
            raise self._err(
                f"top-level stream {top.name!r} must not take parameters",
                top.loc)

    # -- helpers ---------------------------------------------------------------

    def _err(self, message: str, loc: SourceLocation) -> SemanticError:
        return SemanticError(message, loc, self.source)

    @staticmethod
    def _io(decl: ast.StreamDecl) -> tuple[Type, Type]:
        return (decl.in_type or VOID, decl.out_type or VOID)

    def _define_params(self, decl: ast.StreamDecl, scope: Scope) -> None:
        for param in decl.params:
            assert param.ty is not None
            scope.define(param.name, Binding("param", param.ty, param),
                         param.loc, self.source)

    # -- streams -----------------------------------------------------------------

    def _check_stream(self, decl: ast.StreamDecl, parent: Scope) -> None:
        scope = Scope(parent)
        self._define_params(decl, scope)
        if isinstance(decl, ast.FilterDecl):
            self._check_filter(decl, scope)
        elif isinstance(decl, ast.PipelineDecl):
            assert decl.body is not None
            self._check_composite_body(decl, decl.body, scope)
        elif isinstance(decl, ast.SplitJoinDecl):
            self._check_splitjoin(decl, scope)
        elif isinstance(decl, ast.FeedbackLoopDecl):
            self._check_feedbackloop(decl, scope)
        else:  # pragma: no cover - parser only builds the four kinds
            raise self._err(f"unknown stream kind {type(decl).__name__}",
                            decl.loc)

    def _check_filter(self, decl: ast.FilterDecl, scope: Scope) -> None:
        in_type, out_type = self._io(decl)
        ctx = _StreamContext(decl, in_type, out_type)

        for fld in decl.fields:
            ty = self._declared_type(fld.ty, fld.dims, scope, fld.loc)
            scope.define(fld.name, Binding("field", ty, fld), fld.loc,
                         self.source)
        for helper in decl.helpers:
            if helper.name in INTRINSICS:
                raise self._err(
                    f"helper {helper.name!r} shadows a built-in function",
                    helper.loc)
            scope.define(helper.name,
                         Binding("helper", helper.return_type or VOID,
                                 helper),
                         helper.loc, self.source)

        # Field initializers run in the field scope (may reference params
        # and earlier fields).
        for fld in decl.fields:
            if fld.init is not None:
                init_ty = self._check_expr(fld.init, scope, ctx)
                target_ty = scope.lookup(fld.name).ty
                self._require_assignable(target_ty, init_ty, fld.loc)

        if decl.init is not None:
            self._check_stmt(decl.init, Scope(scope), ctx)
        for helper in decl.helpers:
            helper_scope = Scope(scope)
            for param in helper.params:
                assert param.ty is not None
                helper_scope.define(param.name,
                                    Binding("local", param.ty, param),
                                    param.loc, self.source)
            helper_ctx = _StreamContext(decl, in_type, out_type,
                                        helper_return=helper.return_type
                                        or VOID)
            assert helper.body is not None
            self._check_stmt(helper.body, helper_scope, helper_ctx)

        assert decl.work is not None
        self._check_work(decl.work, decl, scope, ctx)
        if decl.prework is not None:
            self._check_work(decl.prework, decl, scope, ctx)

    def _check_work(self, work: ast.WorkDecl, decl: ast.FilterDecl,
                    scope: Scope, ctx: _StreamContext) -> None:
        in_type, out_type = self._io(decl)
        for rate, which in ((work.push_rate, "push"),
                            (work.pop_rate, "pop"),
                            (work.peek_rate, "peek")):
            if rate is None:
                continue
            rate_ty = self._check_expr(rate, scope, ctx)
            if rate_ty != INT:
                raise self._err(f"{which} rate must be int, got {rate_ty}",
                                rate.loc)
        if out_type == VOID and work.push_rate is not None:
            raise self._err(
                f"filter {decl.name!r} has void output but a push rate",
                work.loc)
        if in_type == VOID and (work.pop_rate is not None
                                or work.peek_rate is not None):
            raise self._err(
                f"filter {decl.name!r} has void input but pop/peek rates",
                work.loc)
        work_ctx = _StreamContext(decl, in_type, out_type, in_work=True)
        assert work.body is not None
        self._check_stmt(work.body, Scope(scope), work_ctx)

    def _check_splitjoin(self, decl: ast.SplitJoinDecl, scope: Scope) -> None:
        assert decl.split is not None and decl.join is not None
        self._check_weights(decl.split.weights, scope, decl)
        self._check_weights(decl.join.weights, scope, decl)
        assert decl.body is not None
        self._check_composite_body(decl, decl.body, scope)

    def _check_feedbackloop(self, decl: ast.FeedbackLoopDecl,
                            scope: Scope) -> None:
        assert decl.join is not None and decl.split is not None
        self._check_weights(decl.join.weights, scope, decl)
        self._check_weights(decl.split.weights, scope, decl)
        ctx = _StreamContext(decl, *self._io(decl))
        assert decl.body_add is not None and decl.loop_add is not None
        self._check_add(decl.body_add, scope, ctx)
        self._check_add(decl.loop_add, scope, ctx)
        for enq in decl.enqueues:
            assert enq.value is not None
            ty = self._check_expr(enq.value, scope, ctx)
            if not ty.is_numeric():
                raise self._err("enqueue value must be numeric", enq.loc)

    def _check_weights(self, weights: list[ast.Expr], scope: Scope,
                       decl: ast.StreamDecl) -> None:
        ctx = _StreamContext(decl, *self._io(decl))
        for weight in weights:
            ty = self._check_expr(weight, scope, ctx)
            if ty != INT:
                raise self._err(f"round-robin weight must be int, got {ty}",
                                weight.loc)

    def _check_composite_body(self, decl: ast.StreamDecl, body: ast.Block,
                              scope: Scope) -> None:
        ctx = _StreamContext(decl, *self._io(decl))
        body_scope = Scope(scope)
        add_count = self._check_composite_stmts(body.stmts, body_scope, ctx)
        if add_count == 0:
            raise self._err(f"composite {decl.name!r} adds no children",
                            decl.loc)

    def _check_composite_stmts(self, stmts: list[ast.Stmt], scope: Scope,
                               ctx: _StreamContext) -> int:
        count = 0
        for stmt in stmts:
            count += self._check_composite_stmt(stmt, scope, ctx)
        return count

    def _check_composite_stmt(self, stmt: ast.Stmt, scope: Scope,
                              ctx: _StreamContext) -> int:
        if isinstance(stmt, ast.AddStmt):
            self._check_add(stmt, scope, ctx)
            return 1
        if isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope, ctx)
            return 0
        if isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope, ctx)
            return 0
        if isinstance(stmt, ast.Block):
            return self._check_composite_stmts(stmt.stmts, Scope(scope), ctx)
        if isinstance(stmt, ast.ForStmt):
            for_scope = Scope(scope)
            adds = 0
            if stmt.init is not None:
                adds += self._check_composite_stmt(stmt.init, for_scope, ctx)
            if stmt.cond is not None:
                self._require_boolean(
                    self._check_expr(stmt.cond, for_scope, ctx), stmt.loc)
            if stmt.step is not None:
                adds += self._check_composite_stmt(stmt.step, for_scope, ctx)
            assert stmt.body is not None
            # `add` inside the loop body may execute many times; count >= 1.
            adds += self._check_composite_stmt(stmt.body, for_scope, ctx)
            return adds
        if isinstance(stmt, ast.IfStmt):
            assert stmt.cond is not None and stmt.then is not None
            self._require_boolean(self._check_expr(stmt.cond, scope, ctx),
                                  stmt.loc)
            adds = self._check_composite_stmt(stmt.then, Scope(scope), ctx)
            if stmt.otherwise is not None:
                adds += self._check_composite_stmt(stmt.otherwise,
                                                   Scope(scope), ctx)
            return adds
        if isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr, scope, ctx)
            return 0
        raise self._err(
            f"{type(stmt).__name__} not allowed in a composite body",
            stmt.loc)

    def _check_add(self, stmt: ast.AddStmt, scope: Scope,
                   ctx: _StreamContext) -> None:
        if stmt.anonymous is not None:
            # Anonymous children may capture enclosing parameters/locals.
            self._check_stream(stmt.anonymous, scope)
            return
        child = self._find_stream(stmt.child, stmt.loc)
        if len(stmt.args) != len(child.params):
            raise self._err(
                f"{stmt.child!r} expects {len(child.params)} argument(s), "
                f"got {len(stmt.args)}", stmt.loc)
        for arg, param in zip(stmt.args, child.params):
            arg_ty = self._check_expr(arg, scope, ctx)
            assert param.ty is not None
            self._require_assignable(param.ty, arg_ty, arg.loc)

    def _find_stream(self, name: str, loc: SourceLocation) -> ast.StreamDecl:
        for decl in self.program.streams:
            if decl.name == name:
                return decl
        raise self._err(f"unknown stream {name!r}", loc)

    # -- statements -----------------------------------------------------------------

    def _check_stmt(self, stmt: ast.Stmt, scope: Scope,
                    ctx: _StreamContext) -> None:
        if isinstance(stmt, ast.Block):
            block_scope = Scope(scope)
            for inner in stmt.stmts:
                self._check_stmt(inner, block_scope, ctx)
        elif isinstance(stmt, ast.VarDecl):
            self._check_var_decl(stmt, scope, ctx)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt, scope, ctx)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._check_expr(stmt.expr, scope, ctx)
        elif isinstance(stmt, ast.PushStmt):
            self._check_push(stmt, scope, ctx)
        elif isinstance(stmt, ast.PrintStmt):
            assert stmt.value is not None
            ty = self._check_expr(stmt.value, scope, ctx)
            if isinstance(ty, ArrayType):
                raise self._err("cannot print an array", stmt.loc)
        elif isinstance(stmt, ast.IfStmt):
            assert stmt.cond is not None and stmt.then is not None
            self._require_boolean(self._check_expr(stmt.cond, scope, ctx),
                                  stmt.loc)
            self._check_stmt(stmt.then, Scope(scope), ctx)
            if stmt.otherwise is not None:
                self._check_stmt(stmt.otherwise, Scope(scope), ctx)
        elif isinstance(stmt, ast.ForStmt):
            for_scope = Scope(scope)
            if stmt.init is not None:
                self._check_stmt(stmt.init, for_scope, ctx)
            if stmt.cond is not None:
                self._require_boolean(
                    self._check_expr(stmt.cond, for_scope, ctx), stmt.loc)
            if stmt.step is not None:
                self._check_stmt(stmt.step, for_scope, ctx)
            assert stmt.body is not None
            self._check_stmt(stmt.body, Scope(for_scope), ctx)
        elif isinstance(stmt, ast.WhileStmt):
            assert stmt.cond is not None and stmt.body is not None
            self._require_boolean(self._check_expr(stmt.cond, scope, ctx),
                                  stmt.loc)
            self._check_stmt(stmt.body, Scope(scope), ctx)
        elif isinstance(stmt, ast.DoWhileStmt):
            assert stmt.cond is not None and stmt.body is not None
            self._check_stmt(stmt.body, Scope(scope), ctx)
            self._require_boolean(self._check_expr(stmt.cond, scope, ctx),
                                  stmt.loc)
        elif isinstance(stmt, ast.ReturnStmt):
            if ctx.helper_return is None:
                raise self._err("return outside of a helper function",
                                stmt.loc)
            if stmt.value is None:
                if ctx.helper_return != VOID:
                    raise self._err("missing return value", stmt.loc)
            else:
                value_ty = self._check_expr(stmt.value, scope, ctx)
                self._require_assignable(ctx.helper_return, value_ty,
                                         stmt.loc)
        elif isinstance(stmt, (ast.BreakStmt, ast.ContinueStmt)):
            pass  # loop nesting is validated structurally at lowering
        else:
            raise self._err(f"unexpected statement {type(stmt).__name__}",
                            stmt.loc)

    def _check_var_decl(self, stmt: ast.VarDecl, scope: Scope,
                        ctx: _StreamContext) -> None:
        assert stmt.var_type is not None
        ty = self._declared_type(stmt.var_type, stmt.dims, scope, stmt.loc,
                                 ctx)
        if stmt.init is not None:
            init_ty = self._check_expr(stmt.init, scope, ctx)
            self._require_assignable(ty, init_ty, stmt.loc)
        scope.define(stmt.name, Binding("local", ty, stmt), stmt.loc,
                     self.source)

    def _check_assign(self, stmt: ast.Assign, scope: Scope,
                      ctx: _StreamContext) -> None:
        assert stmt.target is not None and stmt.value is not None
        target_ty = self._check_lvalue(stmt.target, scope, ctx)
        value_ty = self._check_expr(stmt.value, scope, ctx)
        if stmt.op == "=":
            self._require_assignable(target_ty, value_ty, stmt.loc)
            return
        base_op = stmt.op[:-1]
        if base_op in _INT_OPS and (target_ty != INT or value_ty != INT):
            raise self._err(f"operator {stmt.op!r} requires int operands",
                            stmt.loc)
        if not (target_ty.is_numeric() and value_ty.is_numeric()):
            raise self._err(
                f"operator {stmt.op!r} requires numeric operands", stmt.loc)
        self._require_assignable(target_ty, value_ty, stmt.loc)

    def _check_lvalue(self, expr: ast.Expr, scope: Scope,
                      ctx: _StreamContext) -> Type:
        if isinstance(expr, ast.Ident):
            binding = scope.lookup(expr.name)
            if binding is None:
                raise self._err(f"unknown variable {expr.name!r}", expr.loc)
            if binding.kind == "param":
                raise self._err(
                    f"cannot assign to stream parameter {expr.name!r}",
                    expr.loc)
            if binding.kind == "helper":
                raise self._err(f"cannot assign to helper {expr.name!r}",
                                expr.loc)
            expr.ty = binding.ty
            return binding.ty
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base_ty = self._check_lvalue(expr.base, scope, ctx)
            if not isinstance(base_ty, ArrayType):
                raise self._err("indexed value is not an array", expr.loc)
            index_ty = self._check_expr(expr.index, scope, ctx)
            if index_ty != INT:
                raise self._err(f"array index must be int, got {index_ty}",
                                expr.loc)
            expr.ty = base_ty.element
            return base_ty.element
        raise self._err("invalid assignment target", expr.loc)

    def _check_push(self, stmt: ast.PushStmt, scope: Scope,
                    ctx: _StreamContext) -> None:
        if not ctx.in_work:
            raise self._err("push is only allowed inside work", stmt.loc)
        if ctx.out_type == VOID:
            raise self._err("push in a filter with void output", stmt.loc)
        assert stmt.value is not None
        value_ty = self._check_expr(stmt.value, scope, ctx)
        self._require_assignable(ctx.out_type, value_ty, stmt.loc)

    # -- expressions -----------------------------------------------------------------

    def _check_expr(self, expr: ast.Expr, scope: Scope,
                    ctx: _StreamContext) -> Type:
        ty = self._expr_type(expr, scope, ctx)
        expr.ty = ty
        return ty

    def _expr_type(self, expr: ast.Expr, scope: Scope,
                   ctx: _StreamContext) -> Type:
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.StringLit):
            raise self._err("string literals are only allowed in print",
                            expr.loc)
        if isinstance(expr, ast.Ident):
            binding = scope.lookup(expr.name)
            if binding is None:
                raise self._err(f"unknown identifier {expr.name!r}", expr.loc)
            if binding.kind == "helper":
                raise self._err(
                    f"helper {expr.name!r} must be called", expr.loc)
            return binding.ty
        if isinstance(expr, ast.UnaryOp):
            return self._unary_type(expr, scope, ctx)
        if isinstance(expr, ast.BinaryOp):
            return self._binary_type(expr, scope, ctx)
        if isinstance(expr, ast.TernaryOp):
            assert expr.cond and expr.then and expr.otherwise
            self._require_boolean(self._check_expr(expr.cond, scope, ctx),
                                  expr.loc)
            then_ty = self._check_expr(expr.then, scope, ctx)
            else_ty = self._check_expr(expr.otherwise, scope, ctx)
            if then_ty == else_ty:
                return then_ty
            unified = unify_numeric(then_ty, else_ty)
            if unified is None:
                raise self._err(
                    f"mismatched branches of ?: ({then_ty} vs {else_ty})",
                    expr.loc)
            return unified
        if isinstance(expr, ast.Cast):
            assert expr.target is not None and expr.operand is not None
            operand_ty = self._check_expr(expr.operand, scope, ctx)
            if not (isinstance(expr.target, ScalarType)
                    and expr.target.is_numeric()
                    and operand_ty.is_numeric()):
                raise self._err(
                    f"invalid cast from {operand_ty} to {expr.target}",
                    expr.loc)
            return expr.target
        if isinstance(expr, ast.Call):
            return self._call_type(expr, scope, ctx)
        if isinstance(expr, ast.Index):
            assert expr.base is not None and expr.index is not None
            base_ty = self._check_expr(expr.base, scope, ctx)
            if not isinstance(base_ty, ArrayType):
                raise self._err("indexed value is not an array", expr.loc)
            if self._check_expr(expr.index, scope, ctx) != INT:
                raise self._err("array index must be int", expr.loc)
            return base_ty.element
        if isinstance(expr, ast.PeekExpr):
            if not ctx.in_work:
                raise self._err("peek is only allowed inside work", expr.loc)
            if ctx.in_type == VOID:
                raise self._err("peek in a filter with void input", expr.loc)
            assert expr.offset is not None
            if self._check_expr(expr.offset, scope, ctx) != INT:
                raise self._err("peek offset must be int", expr.loc)
            return ctx.in_type
        if isinstance(expr, ast.PopExpr):
            if not ctx.in_work:
                raise self._err("pop is only allowed inside work", expr.loc)
            if ctx.in_type == VOID:
                raise self._err("pop in a filter with void input", expr.loc)
            return ctx.in_type
        raise self._err(f"unexpected expression {type(expr).__name__}",
                        expr.loc)

    def _unary_type(self, expr: ast.UnaryOp, scope: Scope,
                    ctx: _StreamContext) -> Type:
        assert expr.operand is not None
        operand_ty = self._check_expr(expr.operand, scope, ctx)
        if expr.op == "-":
            if not operand_ty.is_numeric():
                raise self._err("unary - requires a numeric operand",
                                expr.loc)
            return operand_ty
        if expr.op == "!":
            self._require_boolean(operand_ty, expr.loc)
            return BOOLEAN
        if expr.op == "~":
            if operand_ty != INT:
                raise self._err("~ requires an int operand", expr.loc)
            return INT
        raise AssertionError(expr.op)

    def _binary_type(self, expr: ast.BinaryOp, scope: Scope,
                     ctx: _StreamContext) -> Type:
        assert expr.left is not None and expr.right is not None
        left = self._check_expr(expr.left, scope, ctx)
        right = self._check_expr(expr.right, scope, ctx)
        op = expr.op
        if op in _ARITH_OPS:
            unified = unify_numeric(left, right)
            if unified is None:
                raise self._err(
                    f"operator {op!r} requires numeric operands "
                    f"({left} vs {right})", expr.loc)
            return unified
        if op in _INT_OPS:
            if left != INT or right != INT:
                raise self._err(f"operator {op!r} requires int operands",
                                expr.loc)
            return INT
        if op in _CMP_OPS:
            if unify_numeric(left, right) is None:
                raise self._err(
                    f"operator {op!r} requires numeric operands", expr.loc)
            return BOOLEAN
        if op in _EQ_OPS:
            if left != right and unify_numeric(left, right) is None:
                raise self._err(
                    f"cannot compare {left} with {right}", expr.loc)
            return BOOLEAN
        if op in _LOGIC_OPS:
            self._require_boolean(left, expr.loc)
            self._require_boolean(right, expr.loc)
            return BOOLEAN
        raise AssertionError(op)

    def _call_type(self, expr: ast.Call, scope: Scope,
                   ctx: _StreamContext) -> Type:
        binding = scope.lookup(expr.name)
        if binding is not None and binding.kind == "helper":
            helper = binding.decl
            assert isinstance(helper, ast.HelperFunc)
            if len(expr.args) != len(helper.params):
                raise self._err(
                    f"helper {expr.name!r} expects {len(helper.params)} "
                    f"argument(s), got {len(expr.args)}", expr.loc)
            for arg, param in zip(expr.args, helper.params):
                arg_ty = self._check_expr(arg, scope, ctx)
                assert param.ty is not None
                self._require_assignable(param.ty, arg_ty, arg.loc)
            return helper.return_type or VOID
        intrinsic = INTRINSICS.get(expr.name)
        if intrinsic is None:
            raise self._err(f"unknown function {expr.name!r}", expr.loc)
        if len(expr.args) != intrinsic.arity:
            raise self._err(
                f"{expr.name} expects {intrinsic.arity} argument(s), "
                f"got {len(expr.args)}", expr.loc)
        arg_types = [self._check_expr(arg, scope, ctx) for arg in expr.args]
        for arg, arg_ty in zip(expr.args, arg_types):
            if not arg_ty.is_numeric():
                raise self._err(
                    f"{expr.name} requires numeric arguments", arg.loc)
            if expects_int_args(intrinsic) and arg_ty != INT:
                raise self._err(f"{expr.name} requires int arguments",
                                arg.loc)
        return result_type(intrinsic, arg_types)

    # -- shared checks ----------------------------------------------------------

    def _declared_type(self, base: Type, dims: list[ast.Expr], scope: Scope,
                       loc: SourceLocation,
                       ctx: _StreamContext | None = None) -> Type:
        if base == VOID:
            raise self._err("variables cannot have type void", loc)
        check_ctx = ctx or _StreamContext(self.program.top, VOID, VOID)
        ty: Type = base
        for dim in reversed(dims):
            dim_ty = self._check_expr(dim, scope, check_ctx)
            if dim_ty != INT:
                raise self._err(f"array size must be int, got {dim_ty}",
                                dim.loc)
            ty = ArrayType(element=ty, size=None)
        return ty

    def _require_boolean(self, ty: Type, loc: SourceLocation) -> None:
        if ty != BOOLEAN:
            raise self._err(f"expected boolean, got {ty}", loc)

    def _require_assignable(self, target: Type, value: Type,
                            loc: SourceLocation) -> None:
        if target == value:
            return
        if target == FLOAT and value == INT:
            return  # implicit widening
        if isinstance(target, ArrayType) and isinstance(value, ArrayType):
            # Sizes are unresolved here; elaboration re-checks them.
            self._require_assignable(target.element, value.element, loc)
            return
        raise self._err(f"cannot assign {value} to {target} "
                        "(use an explicit cast)", loc)


def analyze(program: ast.Program) -> ast.Program:
    """Type-check ``program`` in place and return it."""
    Analyzer(program).analyze()
    return program
