"""Built-in functions shared by every stage of the pipeline.

The same table drives semantic checking (signatures), both interpreters
(Python implementations), constant folding (pure intrinsics only) and the C
backends (C spellings).  ``randf``/``randi`` are the deterministic xorshift32
stream used for the paper's *randomized input* experiment: the Python and C
implementations are bit-identical so outputs can be compared exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.frontend.types import BOOLEAN, FLOAT, INT, ScalarType, Type


@dataclass(frozen=True)
class Intrinsic:
    """Description of one built-in function."""

    name: str
    arity: int
    pure: bool
    c_name: str
    impl: Callable | None  # Python implementation (None for impure RNG ops)
    # Signature policy: "float" (numeric args -> float), "same" (one numeric
    # arg -> same type), "unify" (two numeric args -> unified type),
    # "randf" () -> float, "randi" (int) -> int.
    policy: str


def _float1(name: str, fn: Callable[[float], float],
            c_name: str | None = None) -> Intrinsic:
    return Intrinsic(name, 1, True, c_name or name, fn, "float")


def _float2(name: str, fn: Callable[[float, float], float]) -> Intrinsic:
    return Intrinsic(name, 2, True, name, fn, "float")


INTRINSICS: dict[str, Intrinsic] = {
    i.name: i for i in [
        _float1("sin", math.sin),
        _float1("cos", math.cos),
        _float1("tan", math.tan),
        _float1("asin", math.asin),
        _float1("acos", math.acos),
        _float1("atan", math.atan),
        _float1("sinh", math.sinh),
        _float1("cosh", math.cosh),
        _float1("tanh", math.tanh),
        _float1("exp", math.exp),
        _float1("log", math.log),
        _float1("log10", math.log10),
        _float1("sqrt", math.sqrt),
        _float1("floor", math.floor),
        _float1("ceil", math.ceil),
        _float1("round", lambda x: float(math.floor(x + 0.5))),
        _float2("atan2", math.atan2),
        _float2("pow", math.pow),
        _float2("fmod", math.fmod),
        Intrinsic("abs", 1, True, "abs", abs, "same"),
        Intrinsic("min", 2, True, "min", min, "unify"),
        Intrinsic("max", 2, True, "max", max, "unify"),
        Intrinsic("randf", 0, False, "repro_randf", None, "randf"),
        Intrinsic("randi", 1, False, "repro_randi", None, "randi"),
    ]
}


def result_type(intrinsic: Intrinsic, arg_types: list[Type]) -> Type:
    """The result type of ``intrinsic`` applied to ``arg_types``.

    Callers have already verified arity and numeric-ness.
    """
    if intrinsic.policy == "float":
        return FLOAT
    if intrinsic.policy == "same":
        return arg_types[0]
    if intrinsic.policy == "unify":
        return FLOAT if FLOAT in arg_types else INT
    if intrinsic.policy == "randf":
        return FLOAT
    if intrinsic.policy == "randi":
        return INT
    raise AssertionError(f"unknown policy {intrinsic.policy}")


def expects_int_args(intrinsic: Intrinsic) -> bool:
    return intrinsic.policy == "randi"


class XorShift32:
    """The deterministic RNG behind ``randf``/``randi``.

    The C runtime (see :mod:`repro.backend.common`) implements the identical
    recurrence so interpreter and native outputs agree exactly: ``randf``
    yields ``(state >> 8) / 2**24`` which is exactly representable in a
    double, and ``randi(n)`` yields ``state % n``.
    """

    DEFAULT_SEED = 0x12345678

    def __init__(self, seed: int = DEFAULT_SEED):
        if seed == 0:
            raise ValueError("xorshift32 state must be non-zero")
        self.state = seed & 0xFFFFFFFF

    def next_u32(self) -> int:
        x = self.state
        x ^= (x << 13) & 0xFFFFFFFF
        x ^= x >> 17
        x ^= (x << 5) & 0xFFFFFFFF
        self.state = x
        return x

    def randf(self) -> float:
        return (self.next_u32() >> 8) / float(1 << 24)

    def randi(self, bound: int) -> int:
        # Mirrors the C runtime exactly: the bound is taken through
        # ``(uint32_t)bound``, so negative bounds reduce modulo their
        # 32-bit bit pattern and the result is reinterpreted as i32.
        if bound == 0:
            raise ValueError("randi bound must be non-zero")
        value = self.next_u32() % (bound & 0xFFFFFFFF)
        return value - 0x100000000 if value >= 0x80000000 else value


# Boolean-typed helpers used by the type checker.
_NUMERIC = (INT, FLOAT)


def check_numeric_scalar(ty: Type) -> bool:
    return isinstance(ty, ScalarType) and ty in _NUMERIC


def is_boolean(ty: Type) -> bool:
    return ty == BOOLEAN
