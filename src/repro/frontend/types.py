"""Type system for the StreamIt subset: scalars and fixed-size arrays."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Type:
    """Base class; concrete types are :class:`ScalarType` / :class:`ArrayType`."""

    def is_numeric(self) -> bool:
        return False


@dataclass(frozen=True)
class ScalarType(Type):
    name: str  # "int" | "float" | "boolean" | "void"

    def is_numeric(self) -> bool:
        return self.name in ("int", "float")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class ArrayType(Type):
    """Fixed-size array; ``size`` is None until elaboration resolves it."""

    element: Type
    size: int | None = None

    def __str__(self) -> str:
        size = "?" if self.size is None else str(self.size)
        return f"{self.element}[{size}]"

    @property
    def base(self) -> ScalarType:
        ty: Type = self
        while isinstance(ty, ArrayType):
            ty = ty.element
        assert isinstance(ty, ScalarType)
        return ty

    def dims(self) -> list[int | None]:
        out: list[int | None] = []
        ty: Type = self
        while isinstance(ty, ArrayType):
            out.append(ty.size)
            ty = ty.element
        return out


INT = ScalarType("int")
FLOAT = ScalarType("float")
BOOLEAN = ScalarType("boolean")
VOID = ScalarType("void")

_SCALARS = {"int": INT, "float": FLOAT, "boolean": BOOLEAN, "void": VOID}


def scalar(name: str) -> ScalarType:
    """Look up one of the built-in scalar types by keyword spelling."""
    return _SCALARS[name]


def unify_numeric(left: Type, right: Type) -> ScalarType | None:
    """The usual arithmetic conversion: int op float promotes to float."""
    if not (isinstance(left, ScalarType) and isinstance(right, ScalarType)):
        return None
    if not (left.is_numeric() and right.is_numeric()):
        return None
    return FLOAT if FLOAT in (left, right) else INT
