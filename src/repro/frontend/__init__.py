"""Frontend for the StreamIt-subset language: lexing, parsing, semantics."""

from repro.frontend.ast_nodes import Program
from repro.frontend.errors import (CompileError, ElaborationError,
                                   InterpError, LexError, LoweringError,
                                   ParseError, RateError, ScheduleError,
                                   SemanticError, SourceLocation)
from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse
from repro.frontend.semantic import analyze


def parse_and_check(source: str, filename: str = "<string>") -> Program:
    """Parse and type-check ``source`` in one step."""
    return analyze(parse(source, filename))


__all__ = [
    "CompileError", "ElaborationError", "InterpError", "LexError",
    "LoweringError", "ParseError", "Program", "RateError", "ScheduleError",
    "SemanticError", "SourceLocation", "Token", "analyze", "parse",
    "parse_and_check", "tokenize",
]
