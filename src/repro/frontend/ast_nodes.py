"""AST for the StreamIt-subset language.

Node classes are plain dataclasses.  Every node carries a source location;
expression nodes additionally get a ``ty`` slot filled in by semantic
analysis (:mod:`repro.frontend.semantic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend.errors import SourceLocation, UNKNOWN_LOCATION
from repro.frontend.types import Type


@dataclass
class Node:
    loc: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


# -- expressions -----------------------------------------------------------


@dataclass
class Expr(Node):
    ty: Type | None = field(default=None, kw_only=True)


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class FloatLit(Expr):
    value: float = 0.0


@dataclass
class BoolLit(Expr):
    value: bool = False


@dataclass
class StringLit(Expr):
    value: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class UnaryOp(Expr):
    op: str = ""  # "-", "!", "~"
    operand: Expr | None = None


@dataclass
class BinaryOp(Expr):
    op: str = ""  # arithmetic / comparison / logical / bitwise
    left: Expr | None = None
    right: Expr | None = None


@dataclass
class TernaryOp(Expr):
    cond: Expr | None = None
    then: Expr | None = None
    otherwise: Expr | None = None


@dataclass
class Cast(Expr):
    target: Type | None = None
    operand: Expr | None = None


@dataclass
class Call(Expr):
    """Intrinsic call (``sin``, ``sqrt``, …) or filter-helper call."""

    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr | None = None
    index: Expr | None = None


@dataclass
class PeekExpr(Expr):
    offset: Expr | None = None


@dataclass
class PopExpr(Expr):
    pass


# -- statements ------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class VarDecl(Stmt):
    var_type: Type | None = None
    name: str = ""
    # Unresolved per-dimension size expressions for array declarations;
    # scalar declarations leave this empty.
    dims: list[Expr] = field(default_factory=list)
    init: Expr | None = None


@dataclass
class Assign(Stmt):
    target: Expr | None = None  # Ident or Index chain
    op: str = "="  # "=", "+=", "-=", "*=", "/=", ...
    value: Expr | None = None


@dataclass
class ExprStmt(Stmt):
    expr: Expr | None = None


@dataclass
class PushStmt(Stmt):
    value: Expr | None = None


@dataclass
class PrintStmt(Stmt):
    value: Expr | None = None
    newline: bool = True


@dataclass
class IfStmt(Stmt):
    cond: Expr | None = None
    then: Stmt | None = None
    otherwise: Stmt | None = None


@dataclass
class ForStmt(Stmt):
    init: Stmt | None = None
    cond: Expr | None = None
    step: Stmt | None = None
    body: Stmt | None = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr | None = None
    body: Stmt | None = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt | None = None
    cond: Expr | None = None


@dataclass
class Block(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class ReturnStmt(Stmt):
    value: Expr | None = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


# -- stream declarations ----------------------------------------------------


@dataclass
class Param(Node):
    ty: Type | None = None
    name: str = ""


@dataclass
class FieldDecl(Node):
    ty: Type | None = None
    name: str = ""
    dims: list[Expr] = field(default_factory=list)
    init: Expr | None = None


@dataclass
class HelperFunc(Node):
    return_type: Type | None = None
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Block | None = None


@dataclass
class WorkDecl(Node):
    push_rate: Expr | None = None
    pop_rate: Expr | None = None
    peek_rate: Expr | None = None
    body: Block | None = None


@dataclass
class StreamDecl(Node):
    name: str = ""
    in_type: Type | None = None
    out_type: Type | None = None
    params: list[Param] = field(default_factory=list)


@dataclass
class FilterDecl(StreamDecl):
    fields: list[FieldDecl] = field(default_factory=list)
    helpers: list[HelperFunc] = field(default_factory=list)
    init: Block | None = None
    work: WorkDecl | None = None
    # Optional one-shot body executed as the filter's very first firing,
    # with its own rates (StreamIt `prework`); used e.g. by delay filters.
    prework: WorkDecl | None = None


@dataclass
class AddStmt(Stmt):
    """``add Child(args);`` inside a composite body."""

    child: str = ""
    args: list[Expr] = field(default_factory=list)
    anonymous: StreamDecl | None = None  # inline anonymous child


@dataclass
class SplitDecl(Node):
    kind: str = "duplicate"  # "duplicate" | "roundrobin"
    weights: list[Expr] = field(default_factory=list)


@dataclass
class JoinDecl(Node):
    kind: str = "roundrobin"
    weights: list[Expr] = field(default_factory=list)


@dataclass
class PipelineDecl(StreamDecl):
    body: Block | None = None  # AddStmt / VarDecl / ForStmt / IfStmt


@dataclass
class SplitJoinDecl(StreamDecl):
    split: SplitDecl | None = None
    join: JoinDecl | None = None
    body: Block | None = None


@dataclass
class EnqueueStmt(Stmt):
    value: Expr | None = None


@dataclass
class FeedbackLoopDecl(StreamDecl):
    join: JoinDecl | None = None
    split: SplitDecl | None = None
    body_add: AddStmt | None = None
    loop_add: AddStmt | None = None
    enqueues: list[EnqueueStmt] = field(default_factory=list)


@dataclass
class Program(Node):
    streams: list[StreamDecl] = field(default_factory=list)
    source: str = ""
    filename: str = "<string>"

    def stream(self, name: str) -> StreamDecl:
        for decl in self.streams:
            if decl.name == name:
                return decl
        raise KeyError(name)

    @property
    def top(self) -> StreamDecl:
        """The top-level stream: the last declaration, StreamIt-style."""
        if not self.streams:
            raise ValueError("empty program")
        return self.streams[-1]
