"""The telemetry bus: structured events and pluggable sinks.

The bus is the seam between the *producers* of telemetry (spans from
:mod:`repro.obs.trace`, metrics from :mod:`repro.obs.metrics`, and the
structured :class:`Event` records this module introduces) and its
*consumers* — :class:`TelemetrySink` implementations that stream it
somewhere durable (:mod:`repro.obs.sinks`: a JSONL event log, a Chrome
trace file, an OpenMetrics text exposition).

Three kinds of telemetry flow through:

* **Events** — discrete, point-in-time facts (``native.stall``,
  ``compile.done``).  Always recorded into a bounded in-process ring
  buffer (:meth:`TelemetryBus.recent_events`) and forwarded to every
  attached sink, independent of whether span tracing is enabled — an
  event like a watchdog stall must not vanish just because nobody asked
  for a profile.
* **Spans** — forwarded to sinks as they *close* (streamed, not
  buffered), via a hook the bus installs into :mod:`repro.obs.trace`
  while at least one sink is attached.  With no sinks the hook is
  ``None`` and span exit pays nothing extra.
* **Metric snapshots** — pushed at :meth:`TelemetryBus.flush` time so
  file sinks can persist a final registry snapshot.

Sinks must tolerate being called from any thread; the bus serializes
fan-out under one lock.

While a :class:`repro.obs.reqctx.RequestContext` is active, every
emitted event is stamped with that request's ``request_id``/``trace_id``
attributes and additionally appended to the context's own event list, so
a request's events can be read back without filtering the global ring.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs import reqctx, trace

EVENT_BUFFER = 256


@dataclass
class Event:
    """One structured, point-in-time telemetry record."""

    name: str
    wall_time: float = 0.0      # time.time() at publish (display only)
    monotonic_ns: int = 0       # time.monotonic_ns() at publish
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out: dict[str, object] = {
            "name": self.name,
            "wall_time": self.wall_time,
            "monotonic_ns": self.monotonic_ns,
        }
        if self.attrs:
            out["attrs"] = {key: _jsonable(value)
                            for key, value in self.attrs.items()}
        return out


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


class TelemetrySink:
    """Base class for telemetry consumers; every callback is optional.

    ``on_event`` receives each published :class:`Event`, ``on_span``
    each *closed* :class:`repro.obs.trace.Span`, and ``on_metrics`` a
    registry snapshot at flush time.  ``flush``/``close`` bracket the
    sink's lifetime; ``close`` implies a final flush.
    """

    def on_event(self, event: Event) -> None:
        pass

    def on_span(self, span) -> None:
        pass

    def on_metrics(self, snapshot: dict) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class TelemetryBus:
    """Fans telemetry out to attached sinks; thread-safe."""

    def __init__(self):
        self._lock = threading.Lock()
        self._sinks: list[TelemetrySink] = []
        self._events: deque[Event] = deque(maxlen=EVENT_BUFFER)

    # -- sink lifecycle -------------------------------------------------------

    def add_sink(self, sink: TelemetrySink) -> TelemetrySink:
        with self._lock:
            self._sinks.append(sink)
            trace.set_span_hook(self._span_closed)
        return sink

    def remove_sink(self, sink: TelemetrySink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            if not self._sinks:
                trace.set_span_hook(None)

    def sinks(self) -> list[TelemetrySink]:
        with self._lock:
            return list(self._sinks)

    # -- telemetry fan-out ----------------------------------------------------

    def emit(self, name: str, /, **attrs: object) -> Event:
        """Publish an event: buffered in-process and sent to every sink."""
        ctx = reqctx.current()
        if ctx is not None:
            attrs.setdefault("request_id", ctx.request_id)
            attrs.setdefault("trace_id", ctx.trace_id)
        event = Event(name=name, wall_time=time.time(),
                      monotonic_ns=time.monotonic_ns(), attrs=attrs)
        if ctx is not None:
            ctx.events.append(event)
        with self._lock:
            self._events.append(event)
            sinks = list(self._sinks)
        for sink in sinks:
            sink.on_event(event)
        return event

    def _span_closed(self, span) -> None:
        with self._lock:
            sinks = list(self._sinks)
        for sink in sinks:
            sink.on_span(span)

    def flush(self, metrics_snapshot: dict | None = None) -> None:
        """Push a metrics snapshot (when given) and flush every sink."""
        for sink in self.sinks():
            if metrics_snapshot is not None:
                sink.on_metrics(metrics_snapshot)
            sink.flush()

    # -- introspection --------------------------------------------------------

    def recent_events(self, name: str | None = None) -> list[Event]:
        """Buffered events, oldest first; optionally filtered by name."""
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [event for event in events if event.name == name]
        return events

    def reset_events(self) -> None:
        with self._lock:
            self._events.clear()


_BUS = TelemetryBus()


def get_bus() -> TelemetryBus:
    """The process-global telemetry bus."""
    return _BUS


def emit_event(name: str, /, **attrs: object) -> Event:
    """Publish one event on the global bus (see :meth:`TelemetryBus.emit`)."""
    return _BUS.emit(name, **attrs)
