"""Pipeline-wide observability: spans, metrics, events, sinks, a ledger.

The pieces work together:

* :mod:`repro.obs.trace` — hierarchical spans around every pipeline
  stage (parse → elaborate → flatten → schedule → lower → optimize →
  codegen, plus both interpreters and the native harness);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms the
  optimizer, scheduler, interpreters and native harness publish into;
* :mod:`repro.obs.bus` — the telemetry bus: structured point-in-time
  :class:`~repro.obs.bus.Event` records plus the
  :class:`~repro.obs.bus.TelemetrySink` fan-out seam;
* :mod:`repro.obs.sinks` — concrete sinks: JSONL event log, Chrome
  trace, OpenMetrics text exposition and its ``http.server`` endpoint
  (``python -m repro metrics-serve``);
* :mod:`repro.obs.export` — text-tree, JSON and Chrome trace-event
  renderings of a collected span forest;
* :mod:`repro.obs.ledger` — the persistent content-addressed run ledger
  behind ``python -m repro history`` / ``compare``;
* :mod:`repro.obs.reqctx` — per-request contextvars scoping: the serve
  daemon activates a :class:`~repro.obs.reqctx.RequestContext` per HTTP
  request so spans, metric deltas and events stay attributable under
  concurrency, with W3C ``traceparent`` propagation end-to-end.

Spans and metrics are off by default and near-free when disabled; turn
them on with ``REPRO_TRACE=1``, :func:`repro.obs.trace.enable`, the
:func:`repro.obs.trace.tracing` context manager, or the ``profile``
subcommand.  Events always flow (a ``native.stall`` must not vanish
because nobody asked for a profile).  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs import bus, export, ledger, metrics, reqctx, sinks, trace
from repro.obs.bus import (Event, TelemetryBus, TelemetrySink, emit_event,
                           get_bus)
from repro.obs.export import (format_tree, to_chrome_trace, to_json,
                              write_chrome_trace)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               counter, gauge, histogram, publish_counters,
                               registry)
from repro.obs.reqctx import (RequestContext, make_traceparent,
                              parse_traceparent)
from repro.obs.sinks import (ChromeTraceSink, JsonlAccessLog, JsonlEventSink,
                             MetricsServer, OpenMetricsSink, span_tree,
                             to_openmetrics)
from repro.obs.trace import (Span, Tracer, current_span, disable, enable,
                             get_trace, get_tracer, is_enabled, span,
                             traced, tracing)

__all__ = [
    "ChromeTraceSink", "Counter", "Event", "Gauge", "Histogram",
    "JsonlAccessLog", "JsonlEventSink", "MetricsRegistry", "MetricsServer",
    "OpenMetricsSink", "RequestContext", "Span", "TelemetryBus",
    "TelemetrySink", "Tracer", "bus", "counter", "current_span", "disable",
    "emit_event", "enable", "export", "format_tree", "gauge", "get_bus",
    "get_trace", "get_tracer", "histogram", "is_enabled", "ledger",
    "make_traceparent", "metrics", "parse_traceparent", "publish_counters",
    "registry", "reqctx", "sinks", "span", "span_tree", "to_chrome_trace",
    "to_json", "to_openmetrics", "trace", "traced", "tracing",
    "write_chrome_trace",
]
