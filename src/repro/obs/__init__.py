"""Pipeline-wide observability: span tracing, a metrics registry, exporters.

The three pieces work together:

* :mod:`repro.obs.trace` — hierarchical spans around every pipeline
  stage (parse → elaborate → flatten → schedule → lower → optimize →
  codegen, plus both interpreters and the native harness);
* :mod:`repro.obs.metrics` — named counters/gauges/histograms the
  optimizer, scheduler and interpreters publish into;
* :mod:`repro.obs.export` — text-tree, JSON and Chrome trace-event
  renderings of what was collected.

Everything is off by default and near-free when disabled.  Turn it on
with ``REPRO_TRACE=1``, :func:`repro.obs.trace.enable`, the
:func:`repro.obs.trace.tracing` context manager, or the
``python -m repro profile`` subcommand.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs import export, metrics, trace
from repro.obs.export import (format_tree, to_chrome_trace, to_json,
                              write_chrome_trace)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               counter, gauge, histogram, publish_counters,
                               registry)
from repro.obs.trace import (Span, Tracer, current_span, disable, enable,
                             get_trace, get_tracer, is_enabled, span,
                             traced, tracing)

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "Span", "Tracer",
    "counter", "current_span", "disable", "enable", "export",
    "format_tree", "gauge", "get_trace", "get_tracer", "histogram",
    "is_enabled", "metrics", "publish_counters", "registry", "span",
    "to_chrome_trace", "to_json", "trace", "traced", "tracing",
    "write_chrome_trace",
]
