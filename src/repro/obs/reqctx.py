"""Per-request observability context: contextvars-scoped telemetry.

One process-global tracer/metrics registry/telemetry bus is fine for a
CLI invocation — one command, one pipeline, one span tree.  A serving
process is different: the daemon handles many requests concurrently and
their span trees, metric increments and events would interleave into an
unattributable soup.  This module gives each request its own island:

* a :class:`RequestContext` bundles an isolated
  :class:`repro.obs.trace.Tracer` (every span stamped with the request
  and trace ids), an isolated :class:`repro.obs.metrics.MetricsRegistry`
  (merged into the process-wide registry when the request completes —
  counters add, histograms pool their samples, gauges last-write-wins)
  and a per-request event list (the global bus additionally stamps every
  event emitted under a context with the request/trace ids);
* the context travels via a :mod:`contextvars` variable, so it follows
  the request through nested calls without threading a parameter through
  every layer — and the **ambient default is preserved**: with no
  context active, :func:`repro.obs.trace.span` and the metric helpers
  behave exactly as before (CLI runs and tests are untouched);
* trace identity follows the W3C Trace Context ``traceparent`` header
  (``00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>``):
  :func:`parse_traceparent` / :func:`make_traceparent` are the only
  encoder/decoder in the tree, shared by :class:`repro.serve.ServeClient`
  (injects) and the daemon (extracts), so one trace id joins
  client → daemon → cache → build → run.

Threads do **not** inherit contextvars automatically — a worker thread
that should report into the current request must be started with
``contextvars.copy_context().run`` (the native runner's stderr reader
threads do exactly that, so heartbeat gauges land in the right request).
"""

from __future__ import annotations

import contextlib
import contextvars
import re
import uuid

TRACEPARENT_RE = re.compile(
    r"^([0-9a-f]{2})-([0-9a-f]{32})-([0-9a-f]{16})-([0-9a-f]{2})$")

_ZERO_TRACE = "0" * 32
_ZERO_SPAN = "0" * 16


def mint_trace_id() -> str:
    """A fresh 32-hex-char W3C trace id."""
    return uuid.uuid4().hex


def mint_span_id() -> str:
    """A fresh 16-hex-char W3C parent/span id (doubles as a request id)."""
    return uuid.uuid4().hex[:16]


def parse_traceparent(header: object) -> tuple[str, str, str] | None:
    """``(trace_id, parent_id, flags)`` from a ``traceparent`` header.

    Returns ``None`` for anything invalid — wrong shape, uppercase hex,
    the reserved ``ff`` version, or all-zero ids — so callers fall back
    to minting a fresh trace instead of propagating garbage.
    """
    if not isinstance(header, str):
        return None
    match = TRACEPARENT_RE.match(header.strip())
    if match is None:
        return None
    version, trace_id, parent_id, flags = match.groups()
    if version == "ff" or trace_id == _ZERO_TRACE \
            or parent_id == _ZERO_SPAN:
        return None
    return trace_id, parent_id, flags


def make_traceparent(trace_id: str | None = None,
                     span_id: str | None = None,
                     flags: str = "01") -> str:
    """Render a ``traceparent`` header (fresh ids unless given)."""
    return (f"00-{trace_id or mint_trace_id()}-"
            f"{span_id or mint_span_id()}-{flags}")


class RequestContext:
    """Isolated telemetry for one request, plus its trace identity.

    ``request_id`` is the daemon's own 16-hex span id for the request —
    it becomes the ``parent-id`` of the outgoing :attr:`traceparent` and
    the key of ``GET /debug/trace/<request-id>``.  ``trace_id`` is
    either continued from a valid incoming ``traceparent`` or freshly
    minted, so every record of the request — spans, events, access log,
    ledger — carries the id the *client* can correlate on.
    """

    __slots__ = ("request_id", "trace_id", "parent_id", "flags",
                 "traceparent_in", "tracer", "registry", "events", "info")

    def __init__(self, *, traceparent: str | None = None,
                 request_id: str | None = None):
        from repro.obs.metrics import MetricsRegistry
        from repro.obs.trace import Tracer

        parsed = parse_traceparent(traceparent) if traceparent else None
        if parsed is not None:
            self.trace_id, self.parent_id, self.flags = parsed
            self.traceparent_in: str | None = traceparent
        else:
            self.trace_id = mint_trace_id()
            self.parent_id = None
            self.flags = "01"
            self.traceparent_in = None
        self.request_id = request_id or mint_span_id()
        self.tracer = Tracer(stamp={"request_id": self.request_id,
                                    "trace_id": self.trace_id})
        self.registry = MetricsRegistry()
        self.events: list = []
        # Free-form facts the request handlers record for the access
        # log (backend, cache hit, dedup, degraded, ...).
        self.info: dict = {}

    @property
    def traceparent(self) -> str:
        """The outgoing header continuing this request's trace."""
        return make_traceparent(self.trace_id, self.request_id, self.flags)


_CONTEXT: contextvars.ContextVar[RequestContext | None] = \
    contextvars.ContextVar("repro_request_context", default=None)


def current() -> RequestContext | None:
    """The active request context, or ``None`` (ambient mode)."""
    return _CONTEXT.get()


def note(**facts: object) -> None:
    """Record access-log facts on the active context (no-op without one)."""
    ctx = _CONTEXT.get()
    if ctx is not None:
        ctx.info.update(facts)


@contextlib.contextmanager
def activate(ctx: RequestContext):
    """Make ``ctx`` the active context for the duration of the block."""
    token = _CONTEXT.set(ctx)
    try:
        yield ctx
    finally:
        _CONTEXT.reset(token)
