"""Hierarchical span tracing for the compilation/execution pipeline.

A *span* is a named, timed region of work.  Spans nest: entering a span
while another is open makes it a child, so one traced run yields a tree
mirroring the pipeline (compile → parse/elaborate/flatten/schedule,
lower → optimize → per-pass rounds, run.fifo / run.laminar, native
compile+run).  Each span records wall-clock start time (display only),
a monotonic start/duration (``time.monotonic_ns`` — wall-clock deltas
can go negative under NTP slew, integer nanoseconds cannot), the owning
thread, and free-form attributes.

Tracing is **off by default** and designed for near-zero overhead when
disabled: :func:`span` then returns a shared no-op singleton, so the cost
of an instrumentation site is one global check plus a ``with`` on a
no-op object — no allocation, no locking, no timing calls.  Enable it
with the ``REPRO_TRACE`` environment variable (any value other than
``0``/``false``/``off``) or programmatically via :func:`enable` /
:func:`tracing`.

The tracer is thread-safe: every thread keeps its own span stack, and
spans opened on a thread with no enclosing span become additional roots.
Exporters for the collected tree live in :mod:`repro.obs.export`; closed
spans are additionally forwarded to the telemetry bus
(:mod:`repro.obs.bus`) whenever a sink is attached.

Tracing is also **context-local**: while a
:class:`repro.obs.reqctx.RequestContext` is active (the serve daemon
activates one per HTTP request), :func:`span` and friends route to that
request's private :class:`Tracer` — whose every span is stamped with the
request/trace ids — instead of the ambient process-global one.  With no
context active, behaviour is exactly as before.
"""

from __future__ import annotations

import contextlib
import functools
import os
import threading
import time

from repro.obs import reqctx


class Span:
    """One timed region of the pipeline.  Use via ``with trace.span(...)``."""

    __slots__ = ("name", "attrs", "wall_start", "start_ns", "duration_ns",
                 "children", "thread_id", "_tracer")

    def __init__(self, name: str, attrs: dict, tracer: "Tracer"):
        self.name = name
        self.attrs = attrs
        self.wall_start = 0.0        # time.time() at __enter__ (display only)
        self.start_ns = 0            # time.monotonic_ns() at __enter__
        self.duration_ns: int | None = None
        self.children: list[Span] = []
        self.thread_id = 0
        self._tracer = tracer

    @property
    def start(self) -> float:
        """Monotonic start in seconds (derived from ``start_ns``)."""
        return self.start_ns / 1e9

    @property
    def duration(self) -> float | None:
        """Duration in seconds (derived from ``duration_ns``)."""
        if self.duration_ns is None:
            return None
        return self.duration_ns / 1e9

    def annotate(self, **attrs: object) -> None:
        """Attach additional attributes to this span."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        self.thread_id = threading.get_ident()
        self._tracer._push(self)
        self.wall_start = time.time()
        self.start_ns = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_ns = time.monotonic_ns() - self.start_ns
        self._tracer._pop(self)
        hook = _span_hook
        if hook is not None:
            hook(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        took = "open" if self.duration is None else f"{self.duration:.6f}s"
        return f"<Span {self.name} {took} children={len(self.children)}>"


class _NullSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()
    name = "<tracing disabled>"
    attrs: dict = {}
    children: list = []
    start_ns = 0
    duration_ns = 0
    start = 0.0
    duration = 0.0

    def annotate(self, **attrs: object) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects a forest of spans; thread-safe.

    ``stamp`` attributes (if given) are merged into every span opened on
    this tracer — request-scoped tracers use it to mark each span with
    the owning request/trace ids.
    """

    def __init__(self, stamp: dict | None = None):
        self._local = threading.local()
        self._lock = threading.Lock()
        self.stamp = dict(stamp) if stamp else None
        self.roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, /, **attrs: object) -> Span:
        """A new span; it attaches to the tree when entered."""
        if self.stamp:
            attrs = {**self.stamp, **attrs}
        return Span(name, attrs, self)

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        # Defensive: tolerate out-of-order exits instead of corrupting
        # the stack (e.g. a span closed twice).
        while stack:
            if stack.pop() is span:
                break

    def current(self) -> Span | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def reset(self) -> None:
        with self._lock:
            self.roots = []
        self._local = threading.local()


def _env_enabled() -> bool:
    return os.environ.get("REPRO_TRACE", "").lower() not in \
        ("", "0", "false", "off")


_TRACER = Tracer()
_enabled = _env_enabled()

# Installed by the telemetry bus while at least one sink is attached:
# called with every closed span so sinks can stream them out live.
_span_hook = None


def set_span_hook(hook) -> None:
    """Install (or clear, with ``None``) the closed-span callback."""
    global _span_hook
    _span_hook = hook


def is_enabled() -> bool:
    """Whether spans and metrics are being recorded."""
    return _enabled


def enable(reset: bool = True) -> None:
    """Turn tracing (and metric recording) on.

    ``reset`` clears previously collected spans and metrics so the next
    :func:`get_trace` reflects only work done after this call.
    """
    global _enabled
    if reset:
        _reset_all()
    _enabled = True


def disable() -> None:
    """Turn tracing off; already-collected spans stay readable."""
    global _enabled
    _enabled = False


def _reset_all() -> None:
    _TRACER.reset()
    from repro.obs import metrics as _metrics
    _metrics.registry().reset()
    from repro.obs import bus as _bus
    _bus.get_bus().reset_events()


def reset() -> None:
    """Drop all collected spans, metrics and buffered events without
    changing enablement (attached sinks stay attached)."""
    _reset_all()


def _active_tracer() -> Tracer:
    """The request-scoped tracer when a context is active, else ambient."""
    ctx = reqctx.current()
    if ctx is not None:
        return ctx.tracer
    return _TRACER


def get_tracer() -> Tracer:
    return _active_tracer()


def get_trace() -> list[Span]:
    """The collected root spans (a forest, usually a single tree)."""
    return list(_active_tracer().roots)


def span(name: str, /, **attrs: object) -> Span | _NullSpan:
    """Open a span: ``with trace.span("lower", stream=name) as sp: ...``

    When tracing is disabled this returns a shared no-op singleton, so
    instrumentation sites cost almost nothing.
    """
    if not _enabled:
        return NULL_SPAN
    return _active_tracer().span(name, **attrs)


def current_span() -> Span | _NullSpan:
    """The innermost open span on this thread (no-op span if none)."""
    if not _enabled:
        return NULL_SPAN
    return _active_tracer().current() or NULL_SPAN


def traced(name=None, **attrs):
    """Decorator form: trace every call of the wrapped function.

    Usable bare (``@traced``) or with a custom span name and attributes
    (``@traced("schedule.build", kind="sdf")``).
    """
    if callable(name):  # bare @traced
        return traced(None)(name)

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            if not _enabled:
                return fn(*args, **kwargs)
            with _active_tracer().span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


@contextlib.contextmanager
def tracing(reset: bool = True):
    """Temporarily enable tracing; yields the tracer, restores on exit."""
    previous = _enabled
    enable(reset=reset)
    try:
        yield _TRACER
    finally:
        if not previous:
            disable()
