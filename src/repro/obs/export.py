"""Exporters for collected spans and metrics.

Three formats:

* :func:`format_tree` — a human-readable tree with durations and
  attributes, plus an aligned metrics section (the default output of
  ``python -m repro profile``);
* :func:`to_json` — a plain-dict form (span forest + metric snapshot)
  for machine consumption;
* :func:`to_chrome_trace` — the Chrome trace-event format, loadable in
  ``chrome://tracing`` and https://ui.perfetto.dev (complete ``"X"``
  events in microseconds plus ``"M"`` metadata records).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.obs.trace import Span


def _jsonable(value: object) -> object:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def _fmt_duration(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f} ms"
    return f"{seconds * 1e6:.0f} us"


def _walk(roots: list[Span]):
    stack = list(reversed(roots))
    while stack:
        span = stack.pop()
        yield span
        stack.extend(reversed(span.children))


def _epoch(roots: list[Span]) -> float:
    starts = [span.start for span in _walk(roots)]
    return min(starts) if starts else 0.0


# -- human-readable tree ------------------------------------------------------

def format_tree(roots: list[Span], metrics: dict[str, object] | None = None,
                title: str = "") -> str:
    """Render the span forest (and optional metric snapshot) as text."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if not roots:
        lines.append("(no spans recorded — is tracing enabled?)")
    for root in roots:
        _render(root, lines, prefix="", connector="")
    if metrics:
        lines.append("")
        lines.append("metrics:")
        width = max(len(name) for name in metrics)
        for name, value in metrics.items():
            if isinstance(value, dict):  # histogram summary
                value = " ".join(f"{k}={_round(v)}"
                                 for k, v in value.items())
            lines.append(f"  {name:<{width}}  {_round(value)}")
    return "\n".join(lines)


def _round(value: object) -> object:
    if isinstance(value, float):
        return round(value, 6)
    return value


def _render(span: Span, lines: list[str], prefix: str,
            connector: str) -> None:
    label = f"{prefix}{connector}{span.name}"
    duration = _fmt_duration(span.duration or 0.0)
    attrs = " ".join(f"{key}={value}" for key, value in span.attrs.items())
    line = f"{label:<44} {duration:>10}"
    if attrs:
        line += f"  [{attrs}]"
    lines.append(line)
    if connector == "":
        child_prefix = prefix
    elif connector == "└─ ":
        child_prefix = prefix + "   "
    else:
        child_prefix = prefix + "│  "
    for index, child in enumerate(span.children):
        last = index == len(span.children) - 1
        _render(child, lines, child_prefix, "└─ " if last else "├─ ")


# -- JSON ---------------------------------------------------------------------

def span_to_dict(span: Span, epoch: float = 0.0) -> dict:
    out: dict[str, object] = {
        "name": span.name,
        "start_s": span.start - epoch,
        "duration_s": span.duration if span.duration is not None else 0.0,
        "wall_start": span.wall_start,
        "thread": span.thread_id,
    }
    if span.attrs:
        out["attrs"] = {key: _jsonable(value)
                        for key, value in span.attrs.items()}
    if span.children:
        out["children"] = [span_to_dict(child, epoch)
                           for child in span.children]
    return out


def to_json(roots: list[Span],
            metrics: dict[str, object] | None = None) -> dict:
    """Span forest + metric snapshot as a JSON-serializable dict."""
    epoch = _epoch(roots)
    return {
        "spans": [span_to_dict(root, epoch) for root in roots],
        "metrics": {key: _jsonable(value) if not isinstance(value, dict)
                    else value
                    for key, value in (metrics or {}).items()},
    }


# -- Chrome trace-event format ------------------------------------------------

def _counter_tracks(metrics: dict[str, object]) -> dict[str, dict]:
    """Group ``<prefix>.filter.<name>.<metric>`` gauges into counter tracks.

    Returns ``{"<prefix>.<metric>": {"<name>": value, ...}, ...}`` — one
    Chrome counter track per metric family, one series per filter.
    """
    tracks: dict[str, dict] = {}
    for name, value in sorted(metrics.items()):
        if isinstance(value, dict) or ".filter." not in name:
            continue
        prefix, rest = name.split(".filter.", 1)
        if "." not in rest:
            continue
        filter_name, metric = rest.rsplit(".", 1)
        tracks.setdefault(f"{prefix}.{metric}", {})[filter_name] = \
            _jsonable(value)
    return tracks


def to_chrome_trace(roots: list[Span], pid: int | None = None,
                    metrics: dict[str, object] | None = None) -> dict:
    """Spans as Chrome trace-event JSON (``chrome://tracing`` / Perfetto).

    Every span becomes one complete ("X") event with microsecond
    timestamps relative to the earliest span; process/thread names and
    sort indices go in as metadata ("M") records.  When a metric
    snapshot is passed, per-filter gauges (``*.filter.<name>.<metric>``)
    become counter ("C") tracks — one track per metric family with one
    series per filter.
    """
    if pid is None:
        pid = os.getpid()
    epoch = _epoch(roots)
    events: list[dict] = [{
        "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
        "args": {"name": "repro"},
    }]
    threads_seen: set[int] = set()
    trace_end = 0.0
    for span in _walk(roots):
        if span.thread_id not in threads_seen:
            # The first thread seen owns the root span — label it "main"
            # and keep threads in first-seen order in the timeline.
            order = len(threads_seen)
            threads_seen.add(span.thread_id)
            events.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": span.thread_id,
                "args": {"name": "main" if order == 0
                         else f"thread-{span.thread_id}"},
            })
            events.append({
                "name": "thread_sort_index", "ph": "M", "pid": pid,
                "tid": span.thread_id,
                "args": {"sort_index": order},
            })
        start = (span.start - epoch) * 1e6
        duration = (span.duration or 0.0) * 1e6
        trace_end = max(trace_end, start + duration)
        events.append({
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": start,
            "dur": duration,
            "pid": pid,
            "tid": span.thread_id,
            "args": {key: _jsonable(value)
                     for key, value in span.attrs.items()},
        })
    if metrics:
        for track, series in _counter_tracks(metrics).items():
            events.append({
                "name": track, "cat": "repro", "ph": "C",
                "ts": trace_end, "pid": pid, "tid": 0, "args": series,
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(roots: list[Span], path: str | Path,
                       metrics: dict[str, object] | None = None) -> Path:
    """Serialize :func:`to_chrome_trace` to ``path``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(roots, metrics=metrics)))
    return path
