"""Concrete telemetry sinks: JSONL event log, Chrome trace, OpenMetrics.

Every sink implements the :class:`repro.obs.bus.TelemetrySink`
interface; attach them with ``bus.get_bus().add_sink(...)`` (the CLI's
``--event-log`` flag does exactly that).

* :class:`JsonlEventSink` — appends one JSON object per line: every
  published event (``{"type": "event", ...}``), every closed span
  (``{"type": "span", ...}``, flat — nesting is recoverable from the
  Chrome trace or the span forest) and a final metrics snapshot
  (``{"type": "metrics", ...}``) at flush.  The durable, greppable,
  diffable form of what PR 1's in-process tracer kept only in memory.
* :class:`ChromeTraceSink` — the existing Chrome trace-event exporter
  (:mod:`repro.obs.export`) ported onto the sink interface: buffers the
  last metrics snapshot and serializes the collected span forest at
  close.
* :class:`OpenMetricsSink` / :func:`to_openmetrics` — the metrics
  registry rendered as Prometheus/OpenMetrics text exposition
  (``repro_``-prefixed families; counters as ``_total``, histograms as
  summaries with ``quantile`` labels, terminated by ``# EOF``).
* :class:`MetricsServer` — a stdlib ``http.server`` thread serving the
  exposition at ``/metrics`` (``python -m repro metrics-serve``); the
  scrape endpoint the compile-service daemon on the roadmap will reuse.
* :class:`JsonlAccessLog` — the serve daemon's structured request log:
  one JSON object per request, flushed per line so ``repro tail
  --follow`` and CI greps see entries the moment they land.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs.bus import Event, TelemetrySink, _jsonable

OPENMETRICS_CONTENT_TYPE = \
    "application/openmetrics-text; version=1.0.0; charset=utf-8"


def span_record(span) -> dict:
    """A flat JSON-serializable record of one closed span."""
    out: dict[str, object] = {
        "name": span.name,
        "wall_start": span.wall_start,
        "start_ns": span.start_ns,
        "duration_ns": span.duration_ns if span.duration_ns is not None
        else 0,
        "thread": span.thread_id,
        "children": len(span.children),
    }
    if span.attrs:
        out["attrs"] = {key: _jsonable(value)
                        for key, value in span.attrs.items()}
    return out


def span_tree(span) -> dict:
    """A nested JSON-serializable record of a span and its descendants
    (what ``GET /debug/trace/<request-id>`` returns)."""
    record = span_record(span)
    record["children"] = [span_tree(child) for child in span.children]
    return record


class JsonlEventSink(TelemetrySink):
    """Append-only JSONL log of events, closed spans and metric snapshots."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file = None

    def _write(self, payload: dict) -> None:
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(json.dumps(payload, sort_keys=True) + "\n")

    def on_event(self, event: Event) -> None:
        self._write({"type": "event", **event.to_dict()})

    def on_span(self, span) -> None:
        self._write({"type": "span", **span_record(span)})

    def on_metrics(self, snapshot: dict) -> None:
        self._write({"type": "metrics", "metrics": snapshot})

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class JsonlAccessLog:
    """Append-only JSONL request log for the serve daemon.

    Unlike :class:`JsonlEventSink` (buffered until flush), every record
    is flushed as it is written: tailers (``repro tail --follow``) and
    CI greps must see a request the moment it completes, and the daemon
    may be killed without a clean shutdown.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._file = None

    def write(self, record: dict) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._file is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._file = self.path.open("a", encoding="utf-8")
            self._file.write(line)
            self._file.flush()

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None


class ChromeTraceSink(TelemetrySink):
    """Writes the collected span forest as Chrome trace-event JSON at close."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._snapshot: dict | None = None

    def on_metrics(self, snapshot: dict) -> None:
        self._snapshot = snapshot

    def close(self) -> None:
        from repro.obs import export, trace
        export.write_chrome_trace(trace.get_trace(), self.path,
                                  metrics=self._snapshot)


# -- OpenMetrics text exposition ----------------------------------------------

def _metric_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


# OpenMetrics escaping: HELP text escapes backslash and newline; label
# values additionally escape the double quote.
_ESCAPE_HELP = str.maketrans({"\\": "\\\\", "\n": "\\n"})
_ESCAPE_LABEL = str.maketrans({"\\": "\\\\", '"': '\\"', "\n": "\\n"})


def _escape_help(text: str) -> str:
    return text.translate(_ESCAPE_HELP)


def _escape_label(value: object) -> str:
    return str(value).translate(_ESCAPE_LABEL)


def _labelset(labels, extra=()) -> str:
    """``{k="v",...}`` with escaped values, or ``""`` when unlabeled."""
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in pairs)
    return "{" + inner + "}"


def _unit_of(family: str) -> str | None:
    for unit in ("seconds", "bytes"):
        if family.endswith("_" + unit):
            return unit
    return None


def to_openmetrics(registry: "obs_metrics.MetricsRegistry | None" = None
                   ) -> str:
    """Render the metrics registry as OpenMetrics text exposition.

    Counters become ``<name>_total`` counter families, gauges gauge
    families, histograms summary families (``quantile`` labels for
    p50/p90/p99 plus ``_count``/``_sum``).  Metric names are the
    registry's dotted names with ``repro_`` prefixed and every
    non-``[a-zA-Z0-9_:]`` character mapped to ``_``.  Instruments
    sharing a name but differing in labels render as one family with
    one sample line per label set; label values and HELP text are
    escaped per the OpenMetrics spec, and families measuring seconds or
    bytes get a ``# UNIT`` line.  The exposition is terminated by the
    mandatory ``# EOF`` line.
    """
    if registry is None:
        registry = obs_metrics.registry()
    lines: list[str] = []
    seen: set[str] = set()
    for instrument in registry.instruments().values():
        family = _metric_name(instrument.name)
        if family not in seen:
            seen.add(family)
            kind = {obs_metrics.Counter: "counter",
                    obs_metrics.Gauge: "gauge",
                    obs_metrics.Histogram: "summary"}[type(instrument)]
            lines.append(f"# TYPE {family} {kind}")
            unit = _unit_of(family)
            if unit is not None:
                lines.append(f"# UNIT {family} {unit}")
            lines.append(
                f"# HELP {family} {_escape_help(instrument.name)}")
        labels = _labelset(instrument.labels)
        if isinstance(instrument, obs_metrics.Counter):
            lines.append(
                f"{family}_total{labels} {_fmt(instrument.value)}")
        elif isinstance(instrument, obs_metrics.Gauge):
            lines.append(f"{family}{labels} {_fmt(instrument.value)}")
        elif isinstance(instrument, obs_metrics.Histogram):
            for q in (0.5, 0.9, 0.99):
                value = instrument.percentile(q * 100)
                qlabels = _labelset(instrument.labels,
                                    (("quantile", q),))
                lines.append(f"{family}{qlabels} {_fmt(value)}")
            lines.append(
                f"{family}_count{labels} {_fmt(instrument.count)}")
            lines.append(
                f"{family}_sum{labels} {_fmt(instrument.total)}")
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


class OpenMetricsSink(TelemetrySink):
    """Writes the OpenMetrics exposition to a file at every flush."""

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def flush(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(to_openmetrics())

    def close(self) -> None:
        self.flush()


# -- the scrape endpoint ------------------------------------------------------

class _MetricsHandler(BaseHTTPRequestHandler):
    def do_GET(self):  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/metrics"):
            body = to_openmetrics().encode("utf-8")
            self.send_response(200)
            self.send_header("Content-Type", OPENMETRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        elif path == "/healthz":
            body = b"ok\n"
            self.send_response(200)
            self.send_header("Content-Type", "text/plain")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
        else:
            self.send_error(404)

    def log_message(self, format, *args):  # noqa: A002 - http.server API
        pass  # scrapes are routine; don't spam stderr


class MetricsServer:
    """A ``/metrics`` OpenMetrics endpoint on a background thread.

    ``port=0`` binds an ephemeral port; read the actual one from
    ``server.port`` (or ``server.url``).  ``serve_forever`` handles
    requests until :meth:`stop`; ``handle_request`` serves exactly one
    (for scripted single-scrape smoke tests).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self._server = ThreadingHTTPServer((host, port), _MetricsHandler)
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics-serve",
                                        daemon=True)
        self._thread.start()
        return self

    def handle_request(self) -> None:
        self._server.handle_request()

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5)
            self._thread = None
        self._server.server_close()


def serve_metrics(host: str = "127.0.0.1", port: int = 0) -> MetricsServer:
    """Start a background :class:`MetricsServer`; caller must ``stop()``."""
    return MetricsServer(host, port).start()
