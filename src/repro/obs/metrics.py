"""Named metrics the pipeline publishes into: counters, gauges, histograms.

The registry is a process-global, thread-safe map from metric name to
instrument.  Producers across the stack publish through the module-level
helpers — the optimizer records per-pass op deltas and fixpoint round
counts, the scheduler records repetition-vector and schedule sizes, the
interpreters record steady-state :class:`repro.interp.counters.Counters`
snapshots — and consumers (the ``profile`` CLI subcommand, exporters,
benchmarks) read them back via :func:`registry`.

Recording follows the same switch as :mod:`repro.obs.trace`: while
tracing is disabled, :func:`counter` / :func:`gauge` / :func:`histogram`
return a shared no-op instrument, so instrumentation sites stay
near-free on hot paths.

Naming convention: dot-separated, lowest-frequency prefix first —
``opt.constant_folding.ops``, ``schedule.steady_firings``,
``interp.laminar.steady.total_ops``.

Instruments may carry **labels** (``histogram("serve.request.seconds",
route="/run", status="200")``): each distinct label set is its own
instrument, rendered as OpenMetrics label pairs by
:func:`repro.obs.sinks.to_openmetrics`.  Keep label values low-cardinality
(routes, statuses, backend names — never keys, ids or paths); every new
value mints a time series that lives for the life of the process.

Like tracing, recording is **context-local**: while a
:class:`repro.obs.reqctx.RequestContext` is active the module helpers
publish into that request's private registry, which the daemon merges
into the process-global one when the request completes (counters add,
gauges last-write-wins, histograms pool their samples).
"""

from __future__ import annotations

import math
import threading

from repro.obs import reqctx, trace

Labels = tuple[tuple[str, str], ...]


def _label_items(labels: dict | None) -> Labels:
    """Canonical (sorted, stringified) form of a label mapping."""
    if not labels:
        return ()
    return tuple(sorted((str(key), str(value))
                        for key, value in labels.items()))


def _display_name(name: str, labels: Labels) -> str:
    """``name`` or ``name{k="v",...}`` — how a labeled metric is shown
    in :meth:`MetricsRegistry.as_dict`, ledger snapshots and reports."""
    if not labels:
        return name
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Running count/sum/min/max/percentile summary of observed values.

    Percentiles come from a bounded, deterministic sample reservoir:
    every ``_stride``-th observation is kept, and when the reservoir
    exceeds :data:`Histogram.MAX_SAMPLES` it is decimated (every second
    sample dropped, stride doubled).  The same observation sequence
    always yields the same percentile estimates.
    """

    MAX_SAMPLES = 512

    __slots__ = ("name", "labels", "count", "total", "min", "max",
                 "_samples", "_stride")

    def __init__(self, name: str, labels: Labels = ()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        if self.count % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.MAX_SAMPLES:
                self._samples = self._samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]).

        While every observation is still in the reservoir (``n`` below
        :data:`MAX_SAMPLES`, stride 1) this is the *exact* nearest-rank
        percentile — p99 of 10 samples is the max, not an interpolated
        reservoir artifact.  After decimation it degrades to the same
        nearest-rank rule over the deterministic sample reservoir.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, rank))]

    def summary(self) -> dict[str, float]:
        out = {"count": self.count, "total": self.total,
               "mean": self.mean, "min": self.min or 0.0,
               "max": self.max or 0.0}
        if self.count:
            out["p50"] = self.percentile(50)
            out["p90"] = self.percentile(90)
            out["p99"] = self.percentile(99)
        return out

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Count/total/min/max combine exactly; the sample reservoirs are
        concatenated and re-decimated, so percentiles stay the usual
        bounded-reservoir estimates.
        """
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max
        self._samples.extend(other._samples)
        self._stride = max(self._stride, other._stride)
        while len(self._samples) > self.MAX_SAMPLES:
            self._samples = self._samples[::2]
            self._stride *= 2


class _NullInstrument:
    """Shared do-nothing instrument returned while recording is off."""

    __slots__ = ()
    name = "<metrics disabled>"
    labels: Labels = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def add(self, delta: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Thread-safe (name, labels) → instrument map, get-or-create.

    A *family* (all instruments sharing a name, across label sets) has a
    single type — asking for ``counter("x")`` after ``gauge("x", ...)``
    raises ``TypeError`` regardless of labels.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, Labels],
                            Counter | Gauge | Histogram] = {}
        self._family_types: dict[str, type] = {}

    def _get(self, name: str, cls, labels: dict | None = None):
        key = (name, _label_items(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    existing = self._family_types.get(name)
                    if existing is not None and existing is not cls:
                        raise TypeError(
                            f"metric {name!r} already registered as "
                            f"{existing.__name__}, requested {cls.__name__}")
                    self._family_types[name] = cls
                    metric = self._metrics[key] = cls(name, key[1])
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}")
        return metric

    def counter(self, name: str, /, **labels: object) -> Counter:
        return self._get(name, Counter, labels)

    def gauge(self, name: str, /, **labels: object) -> Gauge:
        return self._get(name, Gauge, labels)

    def histogram(self, name: str, /, **labels: object) -> Histogram:
        return self._get(name, Histogram, labels)

    def _sorted(self) -> list[Counter | Gauge | Histogram]:
        with self._lock:
            return [self._metrics[key] for key in sorted(self._metrics)]

    def names(self) -> list[str]:
        """Sorted display names (labeled metrics render as
        ``name{k="v"}``)."""
        return [_display_name(metric.name, metric.labels)
                for metric in self._sorted()]

    def instruments(self) -> dict[str, Counter | Gauge | Histogram]:
        """Display name → instrument snapshot (sorted), for exporters."""
        return {_display_name(metric.name, metric.labels): metric
                for metric in self._sorted()}

    def as_dict(self) -> dict[str, object]:
        """Snapshot of every metric, sorted by name then label set.

        Counters and gauges map to their value, histograms to their
        summary dict — directly JSON-serializable.
        """
        out: dict[str, object] = {}
        for metric in self._sorted():
            value = metric.summary() if isinstance(metric, Histogram) \
                else metric.value
            out[_display_name(metric.name, metric.labels)] = value
        return out

    def merge_into(self, target: "MetricsRegistry") -> None:
        """Fold this registry into ``target``: counters add, gauges
        last-write-wins, histograms pool their samples.

        This is how per-request deltas land in the process-wide
        aggregates when a daemon request completes."""
        for metric in self._sorted():
            labels = dict(metric.labels)
            if isinstance(metric, Counter):
                if metric.value:
                    target.counter(metric.name, **labels).inc(metric.value)
            elif isinstance(metric, Gauge):
                target.gauge(metric.name, **labels).set(metric.value)
            else:
                target.histogram(metric.name, **labels).merge(metric)

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}
            self._family_types = {}


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (always readable, even when disabled).

    Note this is deliberately *not* context-local: scrapers (``/metrics``,
    exporters, ``profile``) read process-wide aggregates here.  The
    recording helpers below are what route to a request's registry."""
    return _REGISTRY


def _active_registry() -> MetricsRegistry:
    """The request-scoped registry when a context is active, else global."""
    ctx = reqctx.current()
    if ctx is not None:
        return ctx.registry
    return _REGISTRY


def counter(name: str, /, **labels: object) -> Counter | _NullInstrument:
    if not trace.is_enabled():
        return NULL_INSTRUMENT
    return _active_registry().counter(name, **labels)


def gauge(name: str, /, **labels: object) -> Gauge | _NullInstrument:
    if not trace.is_enabled():
        return NULL_INSTRUMENT
    return _active_registry().gauge(name, **labels)


def histogram(name: str, /, **labels: object) -> Histogram | _NullInstrument:
    if not trace.is_enabled():
        return NULL_INSTRUMENT
    return _active_registry().histogram(name, **labels)


def publish_counters(prefix: str, counters) -> None:
    """Publish an interpreter ``Counters`` snapshot as gauges.

    ``counters`` is anything with ``as_dict()`` (or a plain mapping);
    derived totals (``total_ops``, ``memory_accesses``) are published
    alongside the raw fields when available.
    """
    if not trace.is_enabled():
        return
    target = _active_registry()
    mapping = counters.as_dict() if hasattr(counters, "as_dict") \
        else dict(counters)
    for key, value in mapping.items():
        target.gauge(f"{prefix}.{key}").set(value)
    if hasattr(counters, "total_ops"):
        target.gauge(f"{prefix}.total_ops").set(counters.total_ops)
    if hasattr(counters, "memory_accesses"):
        target.gauge(f"{prefix}.memory_accesses").set(
            counters.memory_accesses)
