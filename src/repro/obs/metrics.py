"""Named metrics the pipeline publishes into: counters, gauges, histograms.

The registry is a process-global, thread-safe map from metric name to
instrument.  Producers across the stack publish through the module-level
helpers — the optimizer records per-pass op deltas and fixpoint round
counts, the scheduler records repetition-vector and schedule sizes, the
interpreters record steady-state :class:`repro.interp.counters.Counters`
snapshots — and consumers (the ``profile`` CLI subcommand, exporters,
benchmarks) read them back via :func:`registry`.

Recording follows the same switch as :mod:`repro.obs.trace`: while
tracing is disabled, :func:`counter` / :func:`gauge` / :func:`histogram`
return a shared no-op instrument, so instrumentation sites stay
near-free on hot paths.

Naming convention: dot-separated, lowest-frequency prefix first —
``opt.constant_folding.ops``, ``schedule.steady_firings``,
``interp.laminar.steady.total_ops``.
"""

from __future__ import annotations

import math
import threading

from repro.obs import trace


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins measurement."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Running count/sum/min/max/percentile summary of observed values.

    Percentiles come from a bounded, deterministic sample reservoir:
    every ``_stride``-th observation is kept, and when the reservoir
    exceeds :data:`Histogram.MAX_SAMPLES` it is decimated (every second
    sample dropped, stride doubled).  The same observation sequence
    always yields the same percentile estimates.
    """

    MAX_SAMPLES = 512

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_stride")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self._samples: list[float] = []
        self._stride = 1

    def observe(self, value: float) -> None:
        if self.count % self._stride == 0:
            self._samples.append(value)
            if len(self._samples) > self.MAX_SAMPLES:
                self._samples = self._samples[::2]
                self._stride *= 2
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]).

        While every observation is still in the reservoir (``n`` below
        :data:`MAX_SAMPLES`, stride 1) this is the *exact* nearest-rank
        percentile — p99 of 10 samples is the max, not an interpolated
        reservoir artifact.  After decimation it degrades to the same
        nearest-rank rule over the deterministic sample reservoir.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = math.ceil(q / 100.0 * len(ordered)) - 1
        return ordered[max(0, min(len(ordered) - 1, rank))]

    def summary(self) -> dict[str, float]:
        out = {"count": self.count, "total": self.total,
               "mean": self.mean, "min": self.min or 0.0,
               "max": self.max or 0.0}
        if self.count:
            out["p50"] = self.percentile(50)
            out["p90"] = self.percentile(90)
            out["p99"] = self.percentile(99)
        return out


class _NullInstrument:
    """Shared do-nothing instrument returned while recording is off."""

    __slots__ = ()
    name = "<metrics disabled>"
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Thread-safe name → instrument map with get-or-create semantics."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = self._metrics[name] = cls(name)
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, requested {cls.__name__}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def instruments(self) -> dict[str, Counter | Gauge | Histogram]:
        """Name → instrument snapshot (sorted), for typed exporters."""
        return {name: self._metrics[name] for name in self.names()}

    def as_dict(self) -> dict[str, object]:
        """Snapshot of every metric, sorted by name.

        Counters and gauges map to their value, histograms to their
        summary dict — directly JSON-serializable.
        """
        out: dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            out[name] = metric.summary() if isinstance(metric, Histogram) \
                else metric.value
        return out

    def reset(self) -> None:
        with self._lock:
            self._metrics = {}


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry (always readable, even when disabled)."""
    return _REGISTRY


def counter(name: str) -> Counter | _NullInstrument:
    if not trace.is_enabled():
        return NULL_INSTRUMENT
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge | _NullInstrument:
    if not trace.is_enabled():
        return NULL_INSTRUMENT
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram | _NullInstrument:
    if not trace.is_enabled():
        return NULL_INSTRUMENT
    return _REGISTRY.histogram(name)


def publish_counters(prefix: str, counters) -> None:
    """Publish an interpreter ``Counters`` snapshot as gauges.

    ``counters`` is anything with ``as_dict()`` (or a plain mapping);
    derived totals (``total_ops``, ``memory_accesses``) are published
    alongside the raw fields when available.
    """
    if not trace.is_enabled():
        return
    mapping = counters.as_dict() if hasattr(counters, "as_dict") \
        else dict(counters)
    for key, value in mapping.items():
        _REGISTRY.gauge(f"{prefix}.{key}").set(value)
    if hasattr(counters, "total_ops"):
        _REGISTRY.gauge(f"{prefix}.total_ops").set(counters.total_ops)
    if hasattr(counters, "memory_accesses"):
        _REGISTRY.gauge(f"{prefix}.memory_accesses").set(
            counters.memory_accesses)
