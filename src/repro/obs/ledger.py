"""Persistent, content-addressed run ledger with regression comparison.

Every ``run``/``report``/``profile``/``fuzz`` invocation (and every
benchmark driver, via ``benchmarks/common.py``) appends one record under
``.repro/ledger/`` — override the location with the
``REPRO_LEDGER_DIR`` environment variable.  A record is an envelope::

    {
      "record_id": "<sha256 of the canonical body JSON>",
      "seq": 17,
      "wall_time": 1754650000.123,
      "body": {
        "kind": "report", "target": "filterbank",
        "spec_hash": "...", "backend": "laminar-c",
        "pipeline": "cp,promote,fold,cse,dce", "iterations": 4,
        "flags": {...}, "checksum": "0123abcd...",
        "seconds": 0.8431, "metrics": {...}
      }
    }

The **body** is what is content-addressed: two runs with identical
configuration and identical measurements share a ``record_id``, while
``seq``/``wall_time`` (assigned at append time) order the trajectory.
``python -m repro history TARGET`` lists a target's records,
``python -m repro compare A B`` diffs two of them and signals a
regression (exit 1) when the primary metric grew past the threshold.

Record references accepted by :func:`resolve`:

* a ``record_id`` prefix (≥ 6 hex chars);
* a target name — its most recent record;
* ``TARGET~N`` — the N-th record before the most recent (``~0`` ≡
  latest, like git revision suffixes).
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

LEDGER_ENV = "REPRO_LEDGER_DIR"
DEFAULT_LEDGER_DIR = Path(".repro") / "ledger"


class LedgerError(Exception):
    """A ledger reference did not resolve (missing dir, unknown ref)."""


def ledger_dir() -> Path:
    """The active ledger directory (not necessarily existing yet)."""
    override = os.environ.get(LEDGER_ENV)
    if override:
        return Path(override)
    return DEFAULT_LEDGER_DIR


def canonical_json(value: object) -> str:
    """Deterministic JSON used for hashing record bodies."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def record_id(body: dict) -> str:
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def make_body(kind: str, target: str, *, spec_hash: str | None = None,
              backend: str | None = None, pipeline: str | None = None,
              iterations: int | None = None,
              flags: dict | None = None, checksum: str | None = None,
              seconds: float | None = None,
              metrics: dict | None = None,
              request_id: str | None = None,
              trace_id: str | None = None) -> dict:
    """The content-addressed part of a record; ``None`` fields dropped.

    ``request_id``/``trace_id`` tie a serve-daemon record back to the
    HTTP request (and the client's ``traceparent``) that produced it —
    note they make otherwise-identical runs distinct records, which is
    the point: each request is its own trajectory entry.
    """
    body = {
        "kind": kind,
        "target": target,
        "spec_hash": spec_hash,
        "backend": backend,
        "pipeline": pipeline,
        "iterations": iterations,
        "flags": flags or {},
        "checksum": checksum,
        "seconds": seconds,
        "metrics": metrics or {},
        "request_id": request_id,
        "trace_id": trace_id,
    }
    return {key: value for key, value in body.items() if value is not None}


# Current records are keyed by sequence number alone; the legacy
# ``NNNNNN-rid12.json`` form (PR 6) is still read, and still counts when
# scanning for the next free sequence number.
_FILE_RE = re.compile(r"^(\d{6})(?:-([0-9a-f]{12}))?\.json$")


def append(body: dict, directory: Path | None = None) -> dict:
    """Append one record to the ledger; returns the stored envelope."""
    directory = directory or ledger_dir()
    directory.mkdir(parents=True, exist_ok=True)
    rid = record_id(body)
    seq = _next_seq(directory)
    while True:
        # The claim file is keyed by the sequence number *alone*, so two
        # concurrent appends can never both own one seq.  (The legacy
        # rid-suffixed naming only collided when two racing records
        # shared a 12-hex record-id prefix, which is to say never — both
        # writers then minted the same seq under different filenames.)
        if any(directory.glob(f"{seq:06d}-*.json")):
            seq += 1  # a legacy record already owns this seq
            continue
        path = directory / f"{seq:06d}.json"
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
        except FileExistsError:
            seq += 1
            continue
        envelope = {"record_id": rid, "seq": seq,
                    "wall_time": time.time(), "body": body}
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(envelope, handle, sort_keys=True, indent=1)
            handle.write("\n")
            # A ledger record claims its seq forever; make it durable
            # before reporting success so a crash right after the append
            # cannot lose (or half-write) an acknowledged record.
            handle.flush()
            try:
                os.fsync(handle.fileno())
            except OSError:
                pass
        return envelope


def _next_seq(directory: Path) -> int:
    highest = 0
    for entry in directory.iterdir():
        match = _FILE_RE.match(entry.name)
        if match:
            highest = max(highest, int(match.group(1)))
    return highest + 1


def load_records(directory: Path | None = None,
                 target: str | None = None) -> list[dict]:
    """Every ledger envelope, oldest first; optionally one target's."""
    directory = directory or ledger_dir()
    if not directory.is_dir():
        raise LedgerError(
            f"no ledger at {directory} (set {LEDGER_ENV} or run a "
            "command that records one, e.g. `python -m repro report "
            "filterbank`)")
    records = []
    for entry in sorted(directory.iterdir()):
        if not _FILE_RE.match(entry.name):
            continue
        try:
            envelope = json.loads(entry.read_text())
        except OSError:
            continue  # vanished mid-scan (concurrent cleanup)
        except json.JSONDecodeError as error:
            # A torn write (crash mid-append) must not poison the whole
            # history — but it should not be silent either.
            warnings.warn(
                f"skipping unparseable ledger record {entry}: {error}",
                RuntimeWarning, stacklevel=2)
            continue
        if isinstance(envelope, dict) and "body" in envelope:
            records.append(envelope)
    records.sort(key=lambda env: (env.get("seq", 0),
                                  env.get("record_id", "")))
    if target is not None:
        records = [env for env in records
                   if env["body"].get("target") == target]
    return records


_HEX_RE = re.compile(r"^[0-9a-f]{6,64}$")


def resolve(ref: str, directory: Path | None = None) -> dict:
    """Resolve a record reference (see module docstring) to an envelope."""
    records = load_records(directory)
    base, back = ref, 0
    if "~" in ref:
        base, _, suffix = ref.rpartition("~")
        try:
            back = int(suffix)
        except ValueError:
            raise LedgerError(f"bad record reference {ref!r}: expected "
                              "TARGET~N with integer N") from None
    matching = [env for env in records if env["body"].get("target") == base]
    if matching:
        if back >= len(matching):
            raise LedgerError(
                f"{ref!r} reaches past the ledger: only {len(matching)} "
                f"record(s) for target {base!r}")
        return matching[-1 - back]
    if _HEX_RE.match(base):
        by_id = [env for env in records
                 if env["record_id"].startswith(base)]
        if len(by_id) == 1:
            return by_id[0]
        if len(by_id) > 1:
            raise LedgerError(f"record id prefix {base!r} is ambiguous "
                              f"({len(by_id)} matches)")
    raise LedgerError(f"no ledger record matches {ref!r} (not a known "
                      "target or record-id prefix)")


# -- comparison ---------------------------------------------------------------

@dataclass
class MetricDelta:
    name: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before


@dataclass
class Comparison:
    """Outcome of diffing two ledger records."""

    before: dict
    after: dict
    metric: str
    threshold: float
    regression: bool
    metric_before: float | None
    metric_after: float | None
    checksum_changed: bool
    deltas: list[MetricDelta] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "before": self.before["record_id"],
            "after": self.after["record_id"],
            "metric": self.metric,
            "threshold": self.threshold,
            "regression": self.regression,
            "metric_before": self.metric_before,
            "metric_after": self.metric_after,
            "checksum_changed": self.checksum_changed,
            "deltas": [{"name": delta.name, "before": delta.before,
                        "after": delta.after, "ratio": delta.ratio}
                       for delta in self.deltas],
        }


def _metric_value(body: dict, metric: str) -> float | None:
    if metric in body and isinstance(body[metric], (int, float)):
        return float(body[metric])
    value = body.get("metrics", {}).get(metric)
    if isinstance(value, dict):  # histogram summary: compare the mean
        value = value.get("mean")
    if isinstance(value, (int, float)):
        return float(value)
    return None


def compare(before: dict, after: dict, *, metric: str = "seconds",
            threshold: float = 0.25) -> Comparison:
    """Diff two envelopes; flag a regression when the primary ``metric``
    grew by more than ``threshold`` (fractional, 0.25 = +25%)."""
    value_before = _metric_value(before["body"], metric)
    value_after = _metric_value(after["body"], metric)
    regression = (value_before is not None and value_after is not None
                  and value_before > 0
                  and value_after > value_before * (1.0 + threshold))
    deltas = []
    metrics_before = before["body"].get("metrics", {})
    metrics_after = after["body"].get("metrics", {})
    for name in sorted(set(metrics_before) & set(metrics_after)):
        lhs = _metric_value(before["body"], name)
        rhs = _metric_value(after["body"], name)
        if lhs is None or rhs is None or lhs == rhs:
            continue
        deltas.append(MetricDelta(name=name, before=lhs, after=rhs))
    checksum_changed = (
        before["body"].get("checksum") is not None
        and after["body"].get("checksum") is not None
        and before["body"]["checksum"] != after["body"]["checksum"])
    return Comparison(before=before, after=after, metric=metric,
                      threshold=threshold, regression=regression,
                      metric_before=value_before, metric_after=value_after,
                      checksum_changed=checksum_changed, deltas=deltas)


def format_comparison(result: Comparison) -> str:
    lines = []
    before, after = result.before, result.after
    lines.append(f"before: {before['record_id'][:12]} seq={before['seq']} "
                 f"({before['body'].get('kind')} "
                 f"{before['body'].get('target')})")
    lines.append(f"after:  {after['record_id'][:12]} seq={after['seq']} "
                 f"({after['body'].get('kind')} "
                 f"{after['body'].get('target')})")
    if result.metric_before is None or result.metric_after is None:
        lines.append(f"{result.metric}: not recorded in both records")
    else:
        ratio = (result.metric_after / result.metric_before
                 if result.metric_before else float("inf"))
        lines.append(f"{result.metric}: {result.metric_before:g} -> "
                     f"{result.metric_after:g} ({ratio:.2f}x, threshold "
                     f"{1.0 + result.threshold:.2f}x)")
    if result.checksum_changed:
        lines.append("warning: output checksums differ — the runs are "
                     "not computing the same thing")
    for delta in result.deltas:
        lines.append(f"  {delta.name}: {delta.before:g} -> "
                     f"{delta.after:g} ({delta.ratio:.2f}x)")
    lines.append("regression: " + ("YES" if result.regression else "no"))
    return "\n".join(lines)


def format_history(records: list[dict]) -> str:
    """A one-line-per-record table, newest first, with ~N refs."""
    lines = []
    newest_first = list(reversed(records))
    for back, envelope in enumerate(newest_first):
        body = envelope["body"]
        stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.localtime(envelope["wall_time"]))
        seconds = body.get("seconds")
        took = f"{seconds:8.3f}s" if isinstance(seconds, (int, float)) \
            else "       --"
        checksum = body.get("checksum") or "-"
        lines.append(f"~{back:<3} {envelope['record_id'][:12]} {stamp} "
                     f"{body.get('kind', '?'):<8} "
                     f"{body.get('backend') or '-':<12} {took} "
                     f"{str(checksum)[:16]}")
    return "\n".join(lines)
