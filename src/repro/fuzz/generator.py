"""Seeded random-program generator for differential fuzzing.

Programs are generated in two phases: :func:`random_spec` draws a
structured :class:`ProgramSpec` (so the shrinker can edit it), and
:func:`render` turns a spec into StreamIt source text.  Every generated
program is well-typed and schedulable by construction:

* the top-level ``void->void`` pipeline is the **last** declaration
  (StreamIt picks the last stream in the file as the top);
* effectful operations (``rand``, ``push``/``pop``, prints) never sit
  under a data-dependent condition — ternaries keep their branches
  pure — so the symbolic LaminarIR lowering accepts every program;
* integer division/modulo denominators are forced odd via ``| 1``
  (never zero, and ``-1`` deliberately remains reachable to exercise
  the wrap-around paths);
* no float→int casts are emitted (out-of-range double→int conversion
  is undefined in C), and float magnitudes stay bounded so ``inf``/
  ``NaN`` cannot appear.

Covered surface: pipelines, splitjoins (duplicate and weighted
round-robin including weight-0 ports), feedbackloops, peeking filters,
prework (with rates different from steady rates), int/float/array
state, and the ``randf``/``randi`` intrinsics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

__all__ = ["BodySpec", "FeedbackSpec", "FilterSpec", "GeneratorOptions",
           "ProgramSpec", "SplitJoinSpec", "generate_program",
           "random_spec", "render"]

INT, FLOAT = "int", "float"


# ---------------------------------------------------------------------------
# spec model
# ---------------------------------------------------------------------------

@dataclass
class BodySpec:
    """One work/prework body: declared rates plus generated statements."""

    push: int
    pop: int
    peek: int                      # declared peek window (>= pop)
    stmts: list[str] = field(default_factory=list)   # droppable compute
    push_exprs: list[str] = field(default_factory=list)
    prints: bool = False           # sinks print every popped token


@dataclass
class FilterSpec:
    name: str
    in_ty: str | None              # None == void
    out_ty: str | None
    work: BodySpec
    prework: BodySpec | None = None
    fields: list[tuple[str, str, int | None]] = field(default_factory=list)
    init_stmts: list[str] = field(default_factory=list)
    counter: bool = False          # sources carry an auto-incremented `t`


@dataclass
class SplitJoinSpec:
    kind: str                      # "duplicate" | "roundrobin"
    split_weights: list[int]       # empty for duplicate
    join_weights: list[int]
    branches: list[list[FilterSpec]]   # each branch: 1..2 chained filters


@dataclass
class FeedbackSpec:
    body: FilterSpec               # T->T, pop 2 push 2
    loop: FilterSpec               # T->T, pop 1 push 1
    enqueue: str                   # literal for the seeded back edge


Stage = "FilterSpec | SplitJoinSpec | FeedbackSpec"


@dataclass
class ProgramSpec:
    stages: list[object]           # Source filter ... Sink filter
    features: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class GeneratorOptions:
    max_stages: int = 4            # interior stages between source and sink
    max_rate: int = 3
    allow_feedback: bool = True
    allow_splitjoin: bool = True
    # Fraction of specs drawn in "large-repeat" mode: rate declarations
    # are boosted past ``max_rate`` and splitjoins widen, so the steady
    # schedule repeats filters many times in a row — the shape the
    # re-roll pass collapses into loop regions (and the shape most
    # likely to expose its bugs).
    large_repeat_bias: float = 0.25
    large_rate_factor: int = 3     # boosted rate cap = max_rate * this
    wide_splitjoin_max: int = 5    # branch cap in large-repeat mode


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------

_INT_BIN = ("+", "-", "*", "&", "|", "^")
_FLOAT_BIN = ("+", "-", "*")
_CMP = ("==", "!=", "<", "<=", ">", ">=")


class _Exprs:
    """Typed random expression builder over a set of in-scope atoms."""

    def __init__(self, rng: random.Random, ints: list[str],
                 floats: list[str], features: set[str]):
        self.rng = rng
        self.ints = ints
        self.floats = floats
        self.features = features

    def _int_const(self) -> str:
        value = self.rng.choice(
            [0, 1, 2, 3, 5, 7, -1, -2, -3, 13, 255,
             self.rng.randint(-64, 64)])
        return str(value) if value >= 0 else f"(0 - {-value})"

    def _float_const(self) -> str:
        value = round(self.rng.uniform(-8.0, 8.0), 3)
        text = f"{abs(value)!r}"
        if "." not in text and "e" not in text:
            text += ".0"
        return text if value >= 0 else f"(0.0 - {text})"

    def gen(self, ty: str, depth: int, impure: bool) -> str:
        if ty == INT:
            return self._int(depth, impure)
        return self._float(depth, impure)

    def _atom(self, ty: str) -> str:
        pool = self.ints if ty == INT else self.floats
        if pool and self.rng.random() < 0.75:
            return self.rng.choice(pool)
        return self._int_const() if ty == INT else self._float_const()

    def _cond(self, depth: int) -> str:
        ty = INT if (self.ints or not self.floats) else FLOAT
        lhs = self.gen(ty, depth, False)
        rhs = self.gen(ty, depth, False)
        return f"({lhs} {self.rng.choice(_CMP)} {rhs})"

    def _int(self, depth: int, impure: bool) -> str:
        if depth <= 0:
            return self._atom(INT)
        roll = self.rng.random()
        if roll < 0.40:
            op = self.rng.choice(_INT_BIN)
            return (f"({self._int(depth - 1, impure)} {op} "
                    f"{self._int(depth - 1, impure)})")
        if roll < 0.50:
            shift = self.rng.randint(0, 7)
            op = self.rng.choice(("<<", ">>"))
            return f"({self._int(depth - 1, impure)} {op} {shift})"
        if roll < 0.62:
            # Odd denominator: never zero, and -1 stays reachable so the
            # INT_MIN wrap-around division paths get exercised.
            op = self.rng.choice(("/", "%"))
            num = self._int(depth - 1, impure)
            den = f"({self._int(depth - 1, False)} | 1)"
            self.features.add("int-div")
            return f"({num} {op} {den})"
        if roll < 0.72 and impure:
            bound = self.rng.choice(
                [self.rng.randint(1, 100), self.rng.randint(1, 100),
                 f"(0 - {self.rng.randint(1, 20)})"])
            self.features.add("randi")
            return f"randi({bound})"
        if roll < 0.82:
            fn = self.rng.choice(("min", "max"))
            return (f"{fn}({self._int(depth - 1, impure)}, "
                    f"{self._int(depth - 1, impure)})")
        if roll < 0.92:
            self.features.add("ternary")
            return (f"({self._cond(depth - 1)} ? "
                    f"{self._int(depth - 1, False)} : "
                    f"{self._int(depth - 1, False)})")
        return f"(- {self._int(depth - 1, impure)})"

    def _float(self, depth: int, impure: bool) -> str:
        if depth <= 0:
            return self._atom(FLOAT)
        roll = self.rng.random()
        if roll < 0.40:
            op = self.rng.choice(_FLOAT_BIN)
            return (f"({self._float(depth - 1, impure)} {op} "
                    f"{self._float(depth - 1, impure)})")
        if roll < 0.52:
            den = self._float(depth - 1, False)
            return (f"({self._float(depth - 1, impure)} / "
                    f"(({den}) * ({den}) + 1.0))")
        if roll < 0.64 and impure:
            self.features.add("randf")
            return "randf()"
        if roll < 0.76:
            fn = self.rng.choice(("sin", "cos", "atan"))
            self.features.add("transcendental")
            return f"{fn}({self._float(depth - 1, impure)})"
        if roll < 0.84 and self.ints:
            self.features.add("int-to-float")
            return f"((float) {self._int(depth - 1, impure)})"
        if roll < 0.94:
            self.features.add("ternary")
            return (f"({self._cond(depth - 1)} ? "
                    f"{self._float(depth - 1, False)} : "
                    f"{self._float(depth - 1, False)})")
        return f"(0.0 - {self._float(depth - 1, impure)})"


# ---------------------------------------------------------------------------
# filter generation
# ---------------------------------------------------------------------------

class _Gen:
    def __init__(self, rng: random.Random, options: GeneratorOptions):
        self.rng = rng
        self.options = options
        self.counter = 0
        self.features: set[str] = set()
        # Set per spec by random_spec: bias rates/widths upward so the
        # steady schedule contains long same-filter firing runs.
        self.large_repeat = False

    def name(self, prefix: str = "F") -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _rate(self) -> int:
        """One rate declaration draw, honoring large-repeat mode."""
        rng = self.rng
        if self.large_repeat and rng.random() < 0.8:
            cap = self.options.max_rate * self.options.large_rate_factor
            return rng.randint(2, max(2, cap))
        return rng.randint(1, self.options.max_rate)

    def _body(self, in_ty: str | None, out_ty: str | None, push: int,
              pop: int, peek: int, atoms_seed: list[tuple[str, str]],
              prints: bool = False) -> BodySpec:
        """Generate one body.  ``atoms_seed`` are (name, ty) pairs of
        fields already in scope."""
        rng = self.rng
        ints = [n for n, t in atoms_seed if t == INT]
        floats = [n for n, t in atoms_seed if t == FLOAT]
        stmts: list[str] = []
        # Peek reads come first (offsets measured before any pop moves
        # the read pointer), then the pops.
        if in_ty is not None and peek > pop and rng.random() < 0.9:
            for k in range(rng.randint(1, 2)):
                offset = rng.randint(0, peek - 1)
                stmts.append(f"{in_ty} pk{k} = peek({offset});")
                (ints if in_ty == INT else floats).append(f"pk{k}")
                self.features.add("peek")
        for i in range(pop):
            stmts.append(f"{in_ty} x{i} = pop();")
            (ints if in_ty == INT else floats).append(f"x{i}")
        exprs = _Exprs(rng, ints, floats, self.features)
        for j in range(rng.randint(0, 2)):
            ty = rng.choice([INT, FLOAT])
            stmts.append(
                f"{ty} y{j} = {exprs.gen(ty, rng.randint(1, 3), True)};")
            (ints if ty == INT else floats).append(f"y{j}")
        push_exprs = []
        if out_ty is not None:
            for _ in range(push):
                push_exprs.append(exprs.gen(out_ty, self.rng.randint(1, 2),
                                            True))
        return BodySpec(push=push, pop=pop, peek=peek, stmts=stmts,
                        push_exprs=push_exprs, prints=prints)

    def _maybe_array_field(self, fields, init_stmts, atoms) -> None:
        if self.rng.random() >= 0.3:
            return
        ty = self.rng.choice([INT, FLOAT])
        size = self.rng.randint(2, 4)
        fields.append(("a0", ty, size))
        start = "1.0" if ty == FLOAT else "1"
        step = "0.5" if ty == FLOAT else "2"
        init_stmts.append(f"for (int i = 0; i < {size}; i++) "
                          f"{{ a0[i] = {start} + i * {step}; }}")
        atoms.append((f"a0[{self.rng.randint(0, size - 1)}]", ty))
        self.features.add("array")

    def source(self, out_ty: str) -> FilterSpec:
        rng = self.rng
        push = rng.randint(1, 2)
        fields = [("t", INT, None)]
        init_stmts = [f"t = {rng.randint(0, 5)};"]
        atoms: list[tuple[str, str]] = [("t", INT)]
        self._maybe_array_field(fields, init_stmts, atoms)
        body = self._body(None, out_ty, push, 0, 0, atoms)
        spec = FilterSpec(name=self.name("Src"), in_ty=None, out_ty=out_ty,
                          work=body, fields=fields, init_stmts=init_stmts,
                          counter=True)
        if rng.random() < 0.25:
            pre = self._body(None, out_ty, rng.randint(1, 2), 0, 0, atoms)
            spec.prework = pre
            self.features.add("prework")
        return spec

    def sink(self, in_ty: str) -> FilterSpec:
        pop = self.rng.randint(1, 2)
        body = BodySpec(push=0, pop=pop, peek=pop,
                        stmts=[f"{in_ty} x{i} = pop();" for i in range(pop)],
                        prints=True)
        return FilterSpec(name=self.name("Sink"), in_ty=in_ty, out_ty=None,
                          work=body)

    def mid_filter(self, in_ty: str, out_ty: str, pop: int | None = None,
                   push: int | None = None, allow_prework: bool = True,
                   allow_peek: bool = True) -> FilterSpec:
        rng = self.rng
        pop = self._rate() if pop is None else pop
        push = self._rate() if push is None else push
        peek = pop
        if allow_peek and pop > 0 and rng.random() < 0.35:
            peek = pop + rng.randint(1, 2)
            self.features.add("peeking-filter")
        fields: list[tuple[str, str, int | None]] = []
        init_stmts: list[str] = []
        atoms: list[tuple[str, str]] = []
        if rng.random() < 0.5 and out_ty is not None:
            fields.append(("acc", out_ty, None))
            zero = "0.0" if out_ty == FLOAT else "0"
            init_stmts.append(f"acc = {zero};")
            atoms.append(("acc", out_ty))
        self._maybe_array_field(fields, init_stmts, atoms)
        body = self._body(in_ty, out_ty, push, pop, peek, atoms)
        if atoms and rng.random() < 0.6 and atoms[0][0] == "acc":
            exprs = _Exprs(rng,
                           [a for a, t in atoms if t == INT]
                           + [f"x{i}" for i in range(pop)
                              if in_ty == INT],
                           [a for a, t in atoms if t == FLOAT]
                           + [f"x{i}" for i in range(pop)
                              if in_ty == FLOAT],
                           self.features)
            body.stmts.append(
                f"acc = {exprs.gen(out_ty, 1, True)};")
        spec = FilterSpec(name=self.name(), in_ty=in_ty, out_ty=out_ty,
                          work=body, fields=fields, init_stmts=init_stmts)
        if allow_prework and rng.random() < 0.3:
            pre_pop = rng.randint(0, pop)
            pre_peek = max(pre_pop, rng.randint(0, peek + 1))
            pre_push = rng.randint(0, 2)
            spec.prework = self._body(in_ty, out_ty, pre_push, pre_pop,
                                      pre_peek, atoms)
            self.features.add("prework")
            if (pre_push, pre_pop, pre_peek) != (body.push, body.pop,
                                                 body.peek):
                self.features.add("prework-rates-differ")
        return spec

    def inject_filter(self, in_ty: str, out_ty: str) -> FilterSpec:
        """A weight-0 split branch: typed input, consumes nothing."""
        rng = self.rng
        fields = [("k", out_ty, None)]
        start = "2.0" if out_ty == FLOAT else str(rng.randint(1, 9))
        init_stmts = [f"k = {start};"]
        body = self._body(in_ty, out_ty, rng.randint(1, 2), 0, 0,
                          [("k", out_ty)])
        return FilterSpec(name=self.name("Inj"), in_ty=in_ty,
                          out_ty=out_ty, work=body, fields=fields,
                          init_stmts=init_stmts)

    def discard_filter(self, in_ty: str, out_ty: str) -> FilterSpec:
        """A weight-0 join branch: consumes tokens, produces nothing."""
        pop = self.rng.randint(1, 2)
        body = BodySpec(push=0, pop=pop, peek=pop,
                        stmts=[f"{in_ty} x{i} = pop();"
                               for i in range(pop)])
        return FilterSpec(name=self.name("Drop"), in_ty=in_ty,
                          out_ty=out_ty, work=body)

    # -- composite stages ---------------------------------------------------

    def splitjoin(self, in_ty: str, out_ty: str) -> SplitJoinSpec:
        rng = self.rng
        wide = self.large_repeat and self.options.wide_splitjoin_max > 3
        n = rng.randint(2, self.options.wide_splitjoin_max if wide else 3)
        if n > 3:
            self.features.add("wide-splitjoin")
        duplicate = rng.random() < 0.4
        if duplicate:
            split_weights: list[int] = []
        else:
            while True:
                split_weights = [rng.randint(0, 3) for _ in range(n)]
                if sum(split_weights) > 0:
                    break
        while True:
            join_weights = [rng.randint(0, 3) for _ in range(n)]
            if sum(join_weights) == 0:
                continue
            ok = False
            for i in range(n):
                s = 1 if duplicate else split_weights[i]
                if s == 0 and join_weights[i] == 0:
                    ok = False   # branch would be rate-unconstrained
                    break
                if s > 0 and join_weights[i] > 0:
                    ok = True    # at least one branch must bridge the
                                 # splitter to the joiner, or the graph
                                 # falls into two rate-independent halves
            if ok:
                break
        # The diamond is over-constrained: branch i's repetition ratio
        # implied by the split side (w_i / pop_i) times its push/join
        # ratio (push_i / v_i) must match across branches.  Tying the
        # rates to the weights — pop_i = w_i * m, push_i = v_i * m for a
        # per-branch multiplier m — makes every branch's ratio exactly 1,
        # so any weight vector yields a consistent graph.
        branches: list[list[FilterSpec]] = []
        for i in range(n):
            s = 1 if duplicate else split_weights[i]
            j = join_weights[i]
            if s == 0:
                branches.append([self.inject_filter(in_ty, out_ty)])
                self.features.add("weight0-split")
            elif j == 0:
                branches.append([self.discard_filter(in_ty, out_ty)])
                self.features.add("weight0-join")
            elif rng.random() < 0.3 and in_ty == out_ty:
                m = rng.randint(1, 2)
                mid = rng.randint(1, 3)
                branches.append([
                    self.mid_filter(in_ty, in_ty, pop=s * m, push=mid,
                                    allow_prework=False),
                    self.mid_filter(in_ty, out_ty, pop=mid, push=j * m,
                                    allow_prework=False)])
            else:
                m = rng.randint(1, 2)
                branches.append([self.mid_filter(in_ty, out_ty, pop=s * m,
                                                 push=j * m,
                                                 allow_prework=False)])
        self.features.add("duplicate" if duplicate else
                          "roundrobin-splitjoin")
        return SplitJoinSpec(kind="duplicate" if duplicate else "roundrobin",
                             split_weights=split_weights,
                             join_weights=join_weights, branches=branches)

    def feedback(self, ty: str) -> FeedbackSpec:
        # No peeking inside the loop: a peek window on the cycle would
        # make the init demands circular (the back edge only carries the
        # enqueued tokens before the first body firing).
        body = self.mid_filter(ty, ty, pop=2, push=2, allow_prework=False,
                               allow_peek=False)
        loop = self.mid_filter(ty, ty, pop=1, push=1, allow_prework=False,
                               allow_peek=False)
        if self.rng.random() < 0.5:
            seed = "0.0" if ty == FLOAT else "0"
            loop.prework = BodySpec(push=1, pop=0, peek=0,
                                    push_exprs=[seed])
            self.features.add("prework")
        enqueue = "1.0" if ty == FLOAT else "1"
        self.features.add("feedbackloop")
        return FeedbackSpec(body=body, loop=loop, enqueue=enqueue)


def random_spec(seed: int | str,
                options: GeneratorOptions | None = None) -> ProgramSpec:
    """Draw a random program spec.  Same seed → identical spec."""
    options = options or GeneratorOptions()
    rng = random.Random(str(seed))
    gen = _Gen(rng, options)
    gen.large_repeat = rng.random() < options.large_repeat_bias
    if gen.large_repeat:
        gen.features.add("large-repeat")

    ty = rng.choice([INT, FLOAT])
    stages: list[object] = [gen.source(ty)]
    for _ in range(rng.randint(1, options.max_stages)):
        nxt = FLOAT if (ty == INT and rng.random() < 0.25) else ty
        roll = rng.random()
        if roll < 0.22 and options.allow_splitjoin:
            stages.append(gen.splitjoin(ty, nxt))
        elif roll < 0.32 and options.allow_feedback:
            stages.append(gen.feedback(ty))
            nxt = ty
        else:
            stages.append(gen.mid_filter(ty, nxt))
        ty = nxt
    stages.append(gen.sink(ty))
    gen.features.add(f"type-{ty}")
    return ProgramSpec(stages=stages, features=set(gen.features))


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

def _render_body(body: BodySpec, keyword: str, in_ty: str | None,
                 out_ty: str | None) -> list[str]:
    decl = [keyword]
    if out_ty is not None:
        decl.append(f"push {body.push}")
    if in_ty is not None:
        decl.append(f"pop {body.pop}")
        if body.peek > body.pop:
            decl.append(f"peek {body.peek}")
    lines = ["  " + " ".join(decl) + " {"]
    for stmt in body.stmts:
        lines.append(f"    {stmt}")
    for expr in body.push_exprs:
        lines.append(f"    push({expr});")
    if body.prints:
        for i in range(body.pop):
            lines.append(f"    println(x{i});")
    lines.append("  }")
    return lines


def _render_filter(spec: FilterSpec) -> str:
    in_ty = spec.in_ty or "void"
    out_ty = spec.out_ty or "void"
    lines = [f"{in_ty}->{out_ty} filter {spec.name}() {{"]
    for name, ty, size in spec.fields:
        suffix = f"[{size}]" if size is not None else ""
        lines.append(f"  {ty} {name}{suffix};")
    init = list(spec.init_stmts)
    if init:
        lines.append("  init {")
        for stmt in init:
            lines.append(f"    {stmt}")
        lines.append("  }")
    if spec.prework is not None:
        lines.extend(_render_body(spec.prework, "prework", spec.in_ty,
                                  spec.out_ty))
    work = spec.work
    if spec.counter:
        work = replace(work, stmts=list(work.stmts) + ["t = t + 1;"])
    lines.extend(_render_body(work, "work", spec.in_ty, spec.out_ty))
    lines.append("}")
    return "\n".join(lines)


def _stage_filters(stage: object) -> list[FilterSpec]:
    if isinstance(stage, FilterSpec):
        return [stage]
    if isinstance(stage, SplitJoinSpec):
        return [f for branch in stage.branches for f in branch]
    assert isinstance(stage, FeedbackSpec)
    return [stage.body, stage.loop]


def _render_stage_add(stage: object) -> list[str]:
    if isinstance(stage, FilterSpec):
        return [f"  add {stage.name}();"]
    if isinstance(stage, SplitJoinSpec):
        lines = ["  add splitjoin {"]
        if stage.kind == "duplicate":
            lines.append("    split duplicate;")
        else:
            weights = ", ".join(str(w) for w in stage.split_weights)
            lines.append(f"    split roundrobin({weights});")
        for branch in stage.branches:
            if len(branch) == 1:
                lines.append(f"    add {branch[0].name}();")
            else:
                lines.append("    add pipeline {")
                for f in branch:
                    lines.append(f"      add {f.name}();")
                lines.append("    };")
        weights = ", ".join(str(w) for w in stage.join_weights)
        lines.append(f"    join roundrobin({weights});")
        lines.append("  };")
        return lines
    assert isinstance(stage, FeedbackSpec)
    return ["  add feedbackloop {",
            "    join roundrobin(1, 1);",
            f"    body {stage.body.name}();",
            f"    loop {stage.loop.name}();",
            "    split roundrobin(1, 1);",
            f"    enqueue {stage.enqueue};",
            "  };"]


def render(spec: ProgramSpec) -> str:
    """Render a spec to StreamIt source.  The top pipeline comes last —
    the frontend treats the final declaration as the top-level stream."""
    chunks = []
    for stage in spec.stages:
        for f in _stage_filters(stage):
            chunks.append(_render_filter(f))
    top = ["void->void pipeline FuzzTop {"]
    for stage in spec.stages:
        top.extend(_render_stage_add(stage))
    top.append("}")
    chunks.append("\n".join(top))
    return "\n\n".join(chunks) + "\n"


def generate_program(seed: int | str,
                     options: GeneratorOptions | None = None) -> str:
    """Random well-typed StreamIt source for ``seed`` (deterministic)."""
    return render(random_spec(seed, options))
