"""The differential oracle: one program, every execution route.

Routes (in order):

1. **fifo-interp** — the FIFO baseline interpreter (the reference).
2. **laminar-interp** — LaminarIR lowering, optimizer off.
3. **laminar-opt** — LaminarIR lowering, full optimizer.
4. **fifo-c** / **laminar-c** — both native backends, compiled and run
   when a C compiler is on PATH (``native=True``).

Outputs are compared token-by-token and bit-exactly (floats by their
IEEE-754 pattern, so an identical NaN cannot raise a false alarm), and
the paper's headline counter invariant is asserted: the optimized
LaminarIR route must not perform more data communication
(``token_transfers``) than the FIFO baseline.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.api import compile_source
from repro.backend.runner import (NativeCompileError, NativeToolchainError,
                                  compile_and_run, find_compiler)
from repro.faults import degrade
from repro.faults.limits import ResourceExhausted
from repro.frontend.errors import CompileError
from repro.lir import LoweringOptions
from repro.obs import trace
from repro.opt import OptOptions

__all__ = ["Divergence", "OracleReport", "run_source"]

# Programs whose steady schedule explodes (unlucky rate combinations)
# are skipped rather than fuzzed slowly.
MAX_STEADY_FIRINGS = 600


@dataclass
class Divergence:
    """One disagreement between execution routes."""

    kind: str      # compile-error | route-error | output-mismatch |
                   # counter-invariant | native-error
    route: str
    detail: str

    def signature(self) -> tuple[str, str, str]:
        """Stable identity for delta debugging: two programs diverge
        "the same way" when their signatures match."""
        head = self.detail.split(":", 1)[0] if self.kind in (
            "compile-error", "route-error", "native-error") else ""
        return (self.kind, self.route, head)

    def __str__(self) -> str:
        return f"[{self.kind}] route={self.route}: {self.detail}"


@dataclass
class OracleReport:
    divergence: Divergence | None
    skipped: str | None = None
    output_count: int = 0
    # Set when the native routes were requested but fell back to the
    # interpreter verdict because the toolchain failed (not the program).
    degraded: str | None = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


def _token(value: object) -> tuple:
    """Bit-exact comparison key for one output token."""
    if isinstance(value, bool):
        return ("i", int(value))
    if isinstance(value, int):
        return ("i", value)
    return ("f", struct.pack("<d", float(value)))


def _diff(reference: list, candidate: list, route: str,
          coerce: bool = False) -> Divergence | None:
    """``coerce`` is for the native text protocol: ``%.17g`` prints a
    whole double as ``0``, which the runner parses back as an int, so a
    parsed int is lifted to the reference token's float type (lossless —
    ``%.17g`` round-trips doubles exactly)."""
    if len(reference) != len(candidate):
        return Divergence(
            kind="output-mismatch", route=route,
            detail=f"output count {len(candidate)} != reference "
                   f"{len(reference)}")
    for index, (ref, got) in enumerate(zip(reference, candidate)):
        if coerce and isinstance(ref, float) and isinstance(got, int):
            got = float(got)
        if _token(ref) != _token(got):
            return Divergence(
                kind="output-mismatch", route=route,
                detail=f"token {index}: {got!r} != reference {ref!r}")
    return None


def run_source(source: str, iterations: int = 4,
               native: bool = False,
               max_steady_firings: int = MAX_STEADY_FIRINGS
               ) -> OracleReport:
    """Run ``source`` through every route and report the first divergence.

    ``native=True`` additionally builds and runs both C backends (skipped
    silently when no compiler is found).
    """
    with trace.span("fuzz.oracle", iterations=iterations) as span:
        try:
            stream = compile_source(source, "<fuzz>")
        except ResourceExhausted as error:
            # A guardrail fired: policy, not a compiler bug — skip the
            # program like an oversized schedule rather than flag it.
            span.annotate(outcome="resource-exhausted")
            return OracleReport(None, skipped=f"resource exhausted: "
                                              f"{error.message}")
        except CompileError as error:
            span.annotate(outcome="compile-error")
            return OracleReport(Divergence(
                kind="compile-error", route="compile",
                detail=f"{type(error).__name__}: {error}"))
        if len(stream.schedule.steady) > max_steady_firings:
            span.annotate(outcome="skipped")
            return OracleReport(
                None, skipped=f"steady schedule too large "
                              f"({len(stream.schedule.steady)} firings)")

        def _attempt(runner):
            """(result, error-string); runtime faults are data, not
            divergences — only *disagreement* between routes is."""
            try:
                return runner(), None
            except ResourceExhausted:
                # Guardrails fire during lowering too (op/time budgets):
                # let the skip handler below classify the whole program.
                raise
            except (CompileError, ValueError) as error:
                return None, f"{type(error).__name__}: {error}"

        try:
            return _run_routes(stream, iterations, native, span, _attempt)
        except ResourceExhausted as error:
            span.annotate(outcome="resource-exhausted")
            return OracleReport(None, skipped=f"resource exhausted: "
                                              f"{error.message}")


def _run_routes(stream, iterations: int, native: bool, span,
                _attempt) -> OracleReport:
        fifo, fifo_error = _attempt(lambda: stream.run_fifo(iterations))
        routes = (
            ("laminar-interp",
             lambda: stream.run_laminar(iterations, LoweringOptions(),
                                        OptOptions.none())),
            ("laminar-opt",
             lambda: stream.run_laminar(iterations, LoweringOptions(),
                                        OptOptions())),
        )
        laminar_opt = None
        for name, runner in routes:
            result, error = _attempt(runner)
            if fifo_error is not None or error is not None:
                if error != fifo_error:
                    divergence = Divergence(
                        kind="route-error", route=name,
                        detail=f"{error or 'ran cleanly'}; reference "
                               f"fifo-interp: "
                               f"{fifo_error or 'ran cleanly'}")
                    span.annotate(outcome=divergence.kind)
                    return OracleReport(divergence)
                continue
            divergence = _diff(fifo.outputs, result.outputs, name)
            if divergence is not None:
                span.annotate(outcome=divergence.kind)
                return OracleReport(divergence)
            if name == "laminar-opt":
                laminar_opt = result
        if fifo_error is not None:
            # Every route faulted identically; that is agreement, but the
            # counter invariant and the native exit protocol don't apply.
            span.annotate(outcome="ok-error")
            return OracleReport(None)

        # Counter invariant: LaminarIR eliminates splitter/joiner traffic,
        # it never adds any.
        assert laminar_opt is not None
        if (laminar_opt.steady_counters.token_transfers
                > fifo.steady_counters.token_transfers):
            divergence = Divergence(
                kind="counter-invariant", route="laminar-opt",
                detail="steady data communication "
                       f"{laminar_opt.steady_counters.token_transfers} > "
                       f"FIFO {fifo.steady_counters.token_transfers}")
            span.annotate(outcome=divergence.kind)
            return OracleReport(divergence)

        degraded: str | None = None
        if native and find_compiler() is not None:
            reference = [int(v) if isinstance(v, bool) else v
                         for v in fifo.outputs]
            for name, code in (("fifo-c", stream.fifo_c()),
                               ("laminar-c", stream.laminar_c())):
                try:
                    run = compile_and_run(code, iterations,
                                          print_outputs=True, name="fuzz")
                except NativeCompileError as error:
                    # A broken toolchain is an environment fault, not a
                    # finding: degrade to the interpreter-only verdict
                    # (already reached above) and skip the native routes.
                    degrade.record_fallback(f"fuzz.oracle[{name}]",
                                            str(error))
                    degraded = f"{name}: {type(error).__name__}: {error}"
                    span.annotate(degraded=name)
                    break
                except NativeToolchainError as error:
                    # The *binary* misbehaved (crash, timeout, protocol
                    # violation): that is a finding about the generated
                    # code, reported as a divergence.
                    divergence = Divergence(
                        kind="native-error", route=name,
                        detail=f"{type(error).__name__}: {error}")
                    span.annotate(outcome=divergence.kind)
                    return OracleReport(divergence)
                divergence = _diff(reference, run.outputs, name,
                                   coerce=True)
                if divergence is not None:
                    span.annotate(outcome=divergence.kind)
                    return OracleReport(divergence)

        span.annotate(outcome="ok", outputs=len(fifo.outputs))
        return OracleReport(None, output_count=len(fifo.outputs),
                            degraded=degraded)
