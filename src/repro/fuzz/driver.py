"""The fuzzing campaign loop behind ``python -m repro fuzz``.

A campaign draws ``runs`` programs from a master seed (run *i* uses the
derived seed ``"{seed}:{i}"``), pushes each one through the
differential oracle, optionally delta-shrinks every diverging program,
and writes shrunk reproducers into a corpus directory so they become
permanent regression tests (see ``tests/test_fuzz_corpus.py``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.fuzz.generator import (GeneratorOptions, ProgramSpec,
                                  random_spec, render)
from repro.fuzz.oracle import Divergence, run_source
from repro.fuzz.shrink import shrink_spec
from repro.obs import metrics as obs_metrics
from repro.obs import trace

__all__ = ["CampaignResult", "FuzzFinding", "fuzz_campaign",
           "write_reproducer"]


@dataclass
class FuzzFinding:
    """One diverging program, with its shrunk reproducer if requested."""

    seed: str
    divergence: Divergence
    source: str
    shrunk_source: str | None = None
    reproducer: Path | None = None


@dataclass
class CampaignResult:
    master_seed: int | str
    programs: int = 0
    skipped: int = 0
    # Programs whose native routes fell back to the interpreter verdict
    # because the toolchain failed (see docs/ROBUSTNESS.md).
    degraded: int = 0
    findings: list[FuzzFinding] = field(default_factory=list)
    features: set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.findings


def write_reproducer(finding: FuzzFinding, corpus_dir: Path) -> Path:
    """Check a shrunk reproducer into the corpus directory."""
    corpus_dir.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^A-Za-z0-9]+", "_", str(finding.seed))
    path = corpus_dir / f"fuzz_{slug}_{finding.divergence.kind}.str"
    header = "\n".join([
        "/* Shrunk fuzz reproducer (do not edit by hand).",
        f" * seed: {finding.seed}",
        f" * divergence: {finding.divergence}",
        " * Replayed by tests/test_fuzz_corpus.py: all routes must agree.",
        " */",
    ])
    source = finding.shrunk_source or finding.source
    path.write_text(f"{header}\n\n{source}")
    return path


def _shrink_predicate(original: Divergence, iterations: int,
                      native: bool) -> Callable[[ProgramSpec], bool]:
    want = original.signature()

    def predicate(spec: ProgramSpec) -> bool:
        report = run_source(render(spec), iterations=iterations,
                            native=native)
        return (report.divergence is not None
                and report.divergence.signature() == want)

    return predicate


def fuzz_campaign(seed: int | str = 0, runs: int = 100,
                  iterations: int = 4, native: bool = False,
                  shrink: bool = False, corpus_dir: Path | None = None,
                  options: GeneratorOptions | None = None,
                  log: Callable[[str], None] | None = None
                  ) -> CampaignResult:
    """Run a fuzzing campaign; returns the findings (empty == healthy)."""
    result = CampaignResult(master_seed=seed)
    say = log or (lambda _message: None)
    with trace.span("fuzz.campaign", seed=str(seed), runs=runs):
        for i in range(runs):
            run_seed = f"{seed}:{i}"
            with trace.span("fuzz.program", seed=run_seed):
                spec = random_spec(run_seed, options)
                result.features |= spec.features
                source = render(spec)
                report = run_source(source, iterations=iterations,
                                    native=native)
            obs_metrics.counter("fuzz.programs").inc()
            result.programs += 1
            if report.degraded is not None:
                obs_metrics.counter("fuzz.degraded").inc()
                result.degraded += 1
            if report.skipped is not None:
                obs_metrics.counter("fuzz.skipped").inc()
                result.skipped += 1
                continue
            if report.divergence is None:
                continue
            obs_metrics.counter("fuzz.divergences").inc()
            finding = FuzzFinding(seed=run_seed,
                                  divergence=report.divergence,
                                  source=source)
            say(f"divergence at seed {run_seed}: {report.divergence}")
            if shrink:
                with trace.span("fuzz.shrink", seed=run_seed):
                    predicate = _shrink_predicate(report.divergence,
                                                  iterations, native)
                    shrunk = shrink_spec(spec, predicate)
                    finding.shrunk_source = render(shrunk)
            if corpus_dir is not None:
                finding.reproducer = write_reproducer(finding, corpus_dir)
                say(f"wrote reproducer {finding.reproducer}")
            result.findings.append(finding)
    return result
