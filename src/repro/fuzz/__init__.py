"""Differential fuzzing for the LaminarIR pipeline.

The package closes the loop the whole reproduction rests on: the
LaminarIR route must be observationally equivalent to the FIFO baseline
on *every* program, not just the hand-written suite.

* :mod:`repro.fuzz.generator` — seeded random well-typed StreamIt
  programs (pipelines, splitjoins with weight-0 round-robin ports,
  feedbackloops, peeking and prework filters, int/float/array state,
  the ``rand`` intrinsics).
* :mod:`repro.fuzz.oracle` — runs one program through every execution
  route and diffs outputs token-by-token plus counter invariants.
* :mod:`repro.fuzz.shrink` — delta-debugging minimizer for diverging
  programs.
* :mod:`repro.fuzz.driver` — the campaign loop behind
  ``python -m repro fuzz``.

See ``docs/FUZZING.md`` for the workflow.
"""

from repro.fuzz.driver import CampaignResult, FuzzFinding, fuzz_campaign
from repro.fuzz.generator import (GeneratorOptions, ProgramSpec,
                                  generate_program, random_spec, render)
from repro.fuzz.oracle import Divergence, OracleReport, run_source
from repro.fuzz.shrink import shrink_spec

__all__ = [
    "CampaignResult", "Divergence", "FuzzFinding", "GeneratorOptions",
    "OracleReport", "ProgramSpec", "fuzz_campaign", "generate_program",
    "random_spec", "render", "run_source", "shrink_spec",
]
