"""Delta-debugging minimizer for diverging fuzz programs.

Shrinking operates on the :class:`~repro.fuzz.generator.ProgramSpec`,
not on source text: every candidate is a structurally smaller spec that
still renders to a well-formed program, so the search space stays tiny
and the result is readable.  The caller supplies a predicate ("does
this spec still diverge the same way?"); candidates that break
compilation simply fail the predicate and are discarded, which is what
makes the transformations below safe to attempt blindly.

The search is greedy-to-fixpoint: apply the first accepted candidate,
restart enumeration from the smaller spec, stop when no candidate is
accepted.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterator

from repro.fuzz.generator import (FLOAT, BodySpec, FeedbackSpec, FilterSpec,
                                  ProgramSpec, SplitJoinSpec)

__all__ = ["shrink_spec"]

MAX_PREDICATE_CALLS = 400


def _stage_types(stage: object) -> tuple[str | None, str | None]:
    if isinstance(stage, FilterSpec):
        return stage.in_ty, stage.out_ty
    if isinstance(stage, SplitJoinSpec):
        branch = stage.branches[0]
        return branch[0].in_ty, branch[-1].out_ty
    assert isinstance(stage, FeedbackSpec)
    return stage.body.in_ty, stage.body.out_ty


def _filters(spec: ProgramSpec) -> list[FilterSpec]:
    out: list[FilterSpec] = []
    for stage in spec.stages:
        if isinstance(stage, FilterSpec):
            out.append(stage)
        elif isinstance(stage, SplitJoinSpec):
            for branch in stage.branches:
                out.extend(branch)
        else:
            out.extend([stage.body, stage.loop])
    return out


def _passthrough(name: str, in_ty: str, out_ty: str) -> FilterSpec:
    expr = "x0" if in_ty == out_ty else f"(({out_ty}) x0)"
    body = BodySpec(push=1, pop=1, peek=1,
                    stmts=[f"{in_ty} x0 = pop();"], push_exprs=[expr])
    return FilterSpec(name=name, in_ty=in_ty, out_ty=out_ty, work=body)


def _pop_stmts(body: BodySpec, in_ty: str | None) -> list[str]:
    if in_ty is None:
        return []
    return [f"{in_ty} x{i} = pop();" for i in range(body.pop)]


def _fallback(ty: str | None) -> str:
    return "0.0" if ty == FLOAT else "0"


def _candidates(spec: ProgramSpec) -> Iterator[ProgramSpec]:
    """Structurally smaller variants, most aggressive first."""
    # 1. Drop a type-preserving interior stage outright.
    for i in range(1, len(spec.stages) - 1):
        in_ty, out_ty = _stage_types(spec.stages[i])
        if in_ty == out_ty:
            candidate = copy.deepcopy(spec)
            del candidate.stages[i]
            yield candidate
    # 2. Collapse a composite stage into one pass-through filter.
    for i, stage in enumerate(spec.stages):
        if isinstance(stage, (SplitJoinSpec, FeedbackSpec)):
            in_ty, out_ty = _stage_types(stage)
            candidate = copy.deepcopy(spec)
            candidate.stages[i] = _passthrough(f"Shrunk{i}", in_ty, out_ty)
            yield candidate
    for k, original in enumerate(_filters(spec)):
        # 3. Drop a prework body.
        if original.prework is not None:
            candidate = copy.deepcopy(spec)
            _filters(candidate)[k].prework = None
            yield candidate
        # 4. Strip a work body down to its mandatory pops (a push expr
        #    that referenced a dropped local makes the candidate fail to
        #    compile — the predicate rejects it, nothing else needed).
        minimal = _pop_stmts(original.work, original.in_ty)
        if original.work.stmts != minimal:
            candidate = copy.deepcopy(spec)
            _filters(candidate)[k].work.stmts = list(minimal)
            yield candidate
        # 5. Shrink a peek window back to the pop rate.
        if original.work.peek > original.work.pop:
            candidate = copy.deepcopy(spec)
            _filters(candidate)[k].work.peek = original.work.pop
            yield candidate
        # 6. Replace individual push expressions with a constant.
        for j, expr in enumerate(original.work.push_exprs):
            if expr != _fallback(original.out_ty):
                candidate = copy.deepcopy(spec)
                target = _filters(candidate)[k]
                target.work.push_exprs[j] = _fallback(original.out_ty)
                yield candidate
        # 7. Drop a field nothing references any more.
        bodies = [original.work] + ([original.prework]
                                    if original.prework else [])
        used = " ".join(stmt for b in bodies for stmt in b.stmts)
        used += " " + " ".join(e for b in bodies for e in b.push_exprs)
        for name, _ty, _size in original.fields:
            if original.counter and name == "t":
                continue
            if name not in used:
                candidate = copy.deepcopy(spec)
                target = _filters(candidate)[k]
                target.fields = [f for f in target.fields if f[0] != name]
                target.init_stmts = [s for s in target.init_stmts
                                     if name not in s]
                yield candidate


def shrink_spec(spec: ProgramSpec,
                predicate: Callable[[ProgramSpec], bool],
                max_predicate_calls: int = MAX_PREDICATE_CALLS
                ) -> ProgramSpec:
    """Greedily minimize ``spec`` while ``predicate`` keeps holding.

    ``predicate`` must return True for ``spec`` itself ("still diverges
    the same way"); the returned spec is a local minimum under the
    transformation set, reached in at most ``max_predicate_calls``
    oracle runs.
    """
    current = copy.deepcopy(spec)
    calls = 0
    progress = True
    while progress and calls < max_predicate_calls:
        progress = False
        for candidate in _candidates(current):
            calls += 1
            if predicate(candidate):
                current = candidate
                progress = True
                break
            if calls >= max_predicate_calls:
                break
    return current
