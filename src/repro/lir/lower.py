"""Lowering: flat graph + schedule → LaminarIR program.

This implements the paper's central transformation.  Every channel becomes
a **compile-time queue of token names**: executing the schedule symbolically,
a producer's ``push`` appends the pushed *value* to the queue and a
consumer's ``pop``/``peek`` reads the value straight out of it — no buffer,
no pointers, no runtime bookkeeping.  Splitters and joiners reduce to
compile-time routing of names and vanish from the generated code entirely
(unless the E7 ablation disables elimination, in which case each routed
token costs an explicit ``move``).

Tokens still buffered when one steady iteration ends become loop-carried
values (see :mod:`repro.lir.program`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.faults import limits as faults_limits
from repro.faults.limits import ResourceExhausted
from repro.frontend.errors import LoweringError, SourceLocation
from repro.frontend.types import BOOLEAN, FLOAT, INT, ScalarType
from repro.graph.nodes import (Channel, FilterVertex, FlatGraph,
                               JoinerVertex, SplitterVertex, Vertex)
from repro.lir.ops import (Const, MoveOp, PrintOp, StateSlot, Temp, Value,
                           const_bool, const_float, const_int)
from repro.lir.program import Program
from repro.lir.symexec import (BodyExecutor, Emitter, FieldCell, TokenHooks)
from repro.frontend.types import ArrayType, Type
from repro.scheduling.schedule import Firing, Schedule


@dataclass
class LoweringOptions:
    """Tunables for the lowering (the ablation switches of experiment E7).

    ``steady_multiplier`` unrolls that many steady-state iterations into
    one LaminarIR body (execution scaling): the schedule returns channel
    occupancy to its starting point after each iteration, so concatenating
    k iterations is always valid.  Larger bodies amortize the loop-carried
    rotation and widen the scope of CSE across iterations, at the price of
    code size and register pressure.
    """

    eliminate_splitjoin: bool = True
    steady_multiplier: int = 1
    op_limit: int = 4_000_000
    unroll_limit: int = 4_000_000

    def __post_init__(self) -> None:
        if self.steady_multiplier < 1:
            raise ValueError("steady_multiplier must be >= 1")


def _const_token(value: object, ty: ScalarType) -> Const:
    if ty == INT:
        return const_int(int(value))  # type: ignore[arg-type]
    if ty == FLOAT:
        return const_float(float(value))  # type: ignore[arg-type]
    if ty == BOOLEAN:
        return const_bool(bool(value))
    raise LoweringError(f"unsupported channel type {ty}")


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() else "_" for ch in name)


class _FilterHooks(TokenHooks):
    """Token operations of one filter firing, resolved against the
    compile-time queues."""

    def __init__(self, lowerer: "Lowerer", vertex: FilterVertex,
                 peek_rate: int):
        self.lowerer = lowerer
        self.vertex = vertex
        self.peek_rate = peek_rate
        self.in_queue = (lowerer.queue_of(vertex.inputs[0])
                         if vertex.inputs else None)
        self.out_queue = (lowerer.queue_of(vertex.outputs[0])
                          if vertex.outputs else None)
        self.out_ty = (vertex.outputs[0].ty  # type: ignore[union-attr]
                       if vertex.outputs else None)
        self.pops = 0

    def peek(self, offset: int, loc: SourceLocation) -> Value:
        if self.in_queue is None:
            raise LoweringError(f"{self.vertex.name}: peek without input",
                                loc, self.lowerer.source)
        if offset < 0:
            raise LoweringError("peek offset must be non-negative", loc,
                                self.lowerer.source)
        if self.pops + offset + 1 > self.peek_rate:
            raise LoweringError(
                f"{self.vertex.name}: peek({offset}) after {self.pops} "
                f"pop(s) exceeds declared peek rate {self.peek_rate}", loc,
                self.lowerer.source)
        if offset >= len(self.in_queue):
            raise LoweringError(
                f"{self.vertex.name}: peek({offset}) underflows the "
                "compile-time queue (scheduler bug)", loc,
                self.lowerer.source)
        return self.in_queue[offset]

    def pop(self, loc: SourceLocation) -> Value:
        if self.in_queue is None:
            raise LoweringError(f"{self.vertex.name}: pop without input",
                                loc, self.lowerer.source)
        if not self.in_queue:
            raise LoweringError(
                f"{self.vertex.name}: pop underflows the compile-time "
                "queue (scheduler bug)", loc, self.lowerer.source)
        self.pops += 1
        return self.in_queue.popleft()

    def push(self, value: Value, loc: SourceLocation) -> None:
        if self.out_queue is None:
            raise LoweringError(f"{self.vertex.name}: push without output",
                                loc, self.lowerer.source)
        assert self.out_ty is not None
        self.lowerer.note_tokens(self.vertex.name, 1)
        self.out_queue.append(self.lowerer.emitter.coerce(value,
                                                          self.out_ty))


class Lowerer:
    def __init__(self, schedule: Schedule, source: str = "",
                 options: LoweringOptions | None = None):
        self.schedule = schedule
        self.graph: FlatGraph = schedule.graph
        self.source = source
        self.options = options or LoweringOptions()
        # Ambient resource guardrails (docs/ROBUSTNESS.md): the op cap is
        # checked per firing so the diagnostic can name the filter whose
        # unroll blew the budget, with structured ResourceExhausted
        # typing (the Emitter's own op_limit stays a LoweringError).
        self.limits = faults_limits.active_limits()
        self.emitter = Emitter(op_limit=self.options.op_limit)
        self.program = Program(name=self.graph.name)
        self.queues: dict[str, deque[Value]] = {}
        self.executors: dict[FilterVertex, BodyExecutor] = {}
        # True while lowering the steady section: per-vertex token and
        # firing counts only accumulate there (the attribution tables and
        # interpreters report steady-state numbers).
        self._counting = False

    def queue_of(self, channel: Channel | None) -> deque[Value]:
        assert channel is not None
        return self.queues[channel.name]

    def note_tokens(self, vertex_name: str, amount: int) -> None:
        if self._counting and amount:
            tokens = self.program.filter_tokens
            tokens[vertex_name] = tokens.get(vertex_name, 0) + amount

    # -- driver ---------------------------------------------------------------

    def lower(self) -> Program:
        for channel in self.graph.channels:
            self.queues[channel.name] = deque(
                _const_token(v, channel.ty) for v in channel.initial)

        self.emitter.set_phase("setup")
        self.emitter.set_block(self.program.setup)
        for vertex in self.graph.topological_order():
            if isinstance(vertex, FilterVertex):
                self._setup_filter(vertex)
                self._check_budget(vertex, "setup")

        for executor in self.executors.values():
            executor.invalidate_field_caches()
        self.emitter.set_phase("init")
        self.emitter.set_block(self.program.init)
        for firing in self.schedule.init:
            self._fire(firing)
            self._check_budget(firing.vertex, "init")

        self._capture_carries()

        for executor in self.executors.values():
            executor.invalidate_field_caches()
        self.emitter.set_phase("steady")
        self.emitter.set_block(self.program.steady)
        self._counting = True
        for _ in range(self.options.steady_multiplier):
            for firing in self.schedule.steady:
                self._fire(firing)
                self._check_budget(firing.vertex, "steady")
        self._counting = False
        self._capture_nexts()

        self.program.prints_per_iteration = sum(
            1 for op in self.program.steady if isinstance(op, PrintOp))
        return self.program

    # -- filters ------------------------------------------------------------------

    def _setup_filter(self, vertex: FilterVertex) -> None:
        node = vertex.filter
        self.emitter.set_actor(node.name, "filter")
        fields: dict[str, FieldCell] = {}
        prefix = _sanitize(node.name)
        for name, ty in node.field_types.items():
            fields[name] = self._make_field(f"{prefix}_{name}", ty)
        executor = BodyExecutor(self.emitter, node, fields, self.source,
                                unroll_limit=self.options.unroll_limit)
        self.executors[vertex] = executor
        executor.run_field_initializers()
        if node.decl.init is not None:
            executor.run_body(node.decl.init, hooks=None)

    def _make_field(self, slot_name: str, ty: Type) -> FieldCell:
        if isinstance(ty, ArrayType):
            dims = [d for d in ty.dims() if d is not None]
            size = 1
            for d in dims:
                size *= d
            base = ty.base
            slot = StateSlot(name=slot_name, ty=base, size=size)
        else:
            assert isinstance(ty, ScalarType)
            slot = StateSlot(name=slot_name, ty=ty, size=None)
            dims = []
        self.program.state_slots.append(slot)
        return FieldCell(slot=slot, dims=dims)

    # -- firings ---------------------------------------------------------------------

    def _check_budget(self, vertex: Vertex, phase: str) -> None:
        cap = self.limits.max_unrolled_ops
        if cap is not None and self.emitter.emitted > cap:
            raise ResourceExhausted(
                "max_unrolled_ops", cap, self.emitter.emitted,
                where=f"filter {vertex.name!r} ({phase} phase)")
        faults_limits.check_deadline(
            f"lowering {vertex.name} ({phase} phase)")

    def _fire(self, firing: Firing) -> None:
        vertex = firing.vertex
        if self._counting:
            firings = self.program.filter_firings
            firings[vertex.name] = firings.get(vertex.name, 0) + 1
            self.program.filter_kinds.setdefault(
                vertex.name, vertex.kind.replace("Vertex", "").lower())
        if isinstance(vertex, FilterVertex):
            self._fire_filter(vertex, firing.prework)
        elif isinstance(vertex, SplitterVertex):
            self._fire_splitter(vertex)
        elif isinstance(vertex, JoinerVertex):
            self._fire_joiner(vertex)
        else:  # pragma: no cover
            raise AssertionError(vertex.kind)

    def _fire_filter(self, vertex: FilterVertex, prework: bool) -> None:
        node = vertex.filter
        self.emitter.set_actor(node.name, "filter")
        rates = node.prework if prework else node.work
        assert rates is not None
        body = node.decl.prework if prework else node.decl.work
        assert body is not None and body.body is not None
        hooks = _FilterHooks(self, vertex, rates.peek)
        executor = self.executors[vertex]
        executor.run_body(body.body, hooks)
        executor.check_rates(rates.pop, rates.push,
                             "prework" if prework else "work")

    def _route(self, token: Value) -> Value:
        """Move a token across a splitter/joiner.

        With elimination on this is the identity — the consumer will use
        the producer's name directly.  With elimination off we emit an
        explicit register move per routed token, modelling the data
        movement the paper's baseline performs.
        """
        if self.options.eliminate_splitjoin:
            return token
        result = Temp(token.ty, hint="route")
        self.emitter.emit(MoveOp(result=result, src=token, routing=True))
        return result

    def _fire_splitter(self, vertex: SplitterVertex) -> None:
        self.emitter.set_actor(vertex.name, "splitter")
        in_queue = self.queue_of(vertex.inputs[0])
        if vertex.policy == "duplicate":
            token = in_queue.popleft()
            for channel in vertex.outputs:
                self.note_tokens(vertex.name, 1)
                self.queue_of(channel).append(self._route(token))
            return
        for port, channel in enumerate(vertex.outputs):
            out_queue = self.queue_of(channel)
            for _ in range(vertex.weights[port]):
                self.note_tokens(vertex.name, 1)
                out_queue.append(self._route(in_queue.popleft()))

    def _fire_joiner(self, vertex: JoinerVertex) -> None:
        self.emitter.set_actor(vertex.name, "joiner")
        out_queue = self.queue_of(vertex.outputs[0])
        for port, channel in enumerate(vertex.inputs):
            in_queue = self.queue_of(channel)
            for _ in range(vertex.weights[port]):
                self.note_tokens(vertex.name, 1)
                out_queue.append(self._route(in_queue.popleft()))

    # -- loop-carried tokens ------------------------------------------------------

    def _carry_channels(self) -> list[Channel]:
        return [ch for ch in self.graph.channels
                if self.schedule.post_init_tokens[ch.name] > 0]

    def _capture_carries(self) -> None:
        for channel in self._carry_channels():
            queue = self.queues[channel.name]
            expected = self.schedule.post_init_tokens[channel.name]
            assert len(queue) == expected, (
                f"queue {channel.name}: {len(queue)} tokens after init, "
                f"schedule predicted {expected}")
            for position in range(expected):
                param = Temp(channel.ty, hint=f"carry{channel.uid}_")
                self.program.carry_params.append(param)
                self.program.carry_inits.append(queue[position])
                queue[position] = param

    def _capture_nexts(self) -> None:
        nexts: list[Value] = []
        for channel in self._carry_channels():
            queue = self.queues[channel.name]
            expected = self.schedule.post_init_tokens[channel.name]
            assert len(queue) == expected, (
                f"queue {channel.name}: {len(queue)} tokens after steady "
                f"iteration, schedule predicted {expected}")
            nexts.extend(queue)
        self.program.carry_nexts = nexts


def lower(schedule: Schedule, source: str = "",
          options: LoweringOptions | None = None) -> Program:
    """Lower a scheduled flat graph to a LaminarIR program."""
    return Lowerer(schedule, source, options).lower()
