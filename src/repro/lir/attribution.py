"""Per-filter attribution of a lowered LaminarIR program.

After lowering and optimization the steady state is one straight-line
block — the connection to the source filters survives only through the
:class:`~repro.lir.ops.Provenance` stamps on each op.  This module folds
those stamps back into per-filter rows: how many ops each filter
contributes to every section, and the steady-state tokens/firings the
lowering recorded.

Attribution is by *primary* provenance (``op.prov[0]``): CSE may merge
ops from several filters, but each surviving op is counted exactly once,
so the per-filter op counts always sum to the program's section totals
(the invariant the ``report --attribution`` table relies on).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lir.ops import LoopRegion, Op
from repro.lir.program import Program

UNATTRIBUTED = "<unattributed>"


@dataclass
class FilterAttribution:
    """One actor's share of a lowered program."""

    name: str
    kind: str = "filter"
    setup_ops: int = 0
    init_ops: int = 0
    steady_ops: int = 0
    # Steady-state movement per LaminarIR iteration, from the lowering.
    tokens_per_iter: int = 0
    firings_per_iter: int = 0
    # Secondary contributors CSE merged into this actor's surviving ops.
    merged_from: set[str] = field(default_factory=set)

    @property
    def total_ops(self) -> int:
        return self.setup_ops + self.init_ops + self.steady_ops


def _primary_name(op: Op) -> tuple[str, str]:
    if not op.prov:
        return UNATTRIBUTED, "filter"
    primary = op.prov[0]
    return primary.filter, primary.kind


def attribute_program(program: Program) -> list[FilterAttribution]:
    """Fold op provenance into per-actor rows, in first-seen order.

    Actors that moved tokens or fired in the steady schedule appear even
    when the optimizer deleted every op they emitted (their compute was
    folded away — still worth a row showing zero ops).
    """
    rows: dict[str, FilterAttribution] = {}

    def row(name: str, kind: str) -> FilterAttribution:
        entry = rows.get(name)
        if entry is None:
            entry = rows[name] = FilterAttribution(name=name, kind=kind)
        return entry

    def count(op: Op, title: str, weight: int) -> None:
        name, kind = _primary_name(op)
        entry = row(name, kind)
        if title == "setup":
            entry.setup_ops += weight
        elif title == "init":
            entry.init_ops += weight
        else:
            entry.steady_ops += weight
        for extra in op.prov[1:]:
            if extra.filter != name:
                entry.merged_from.add(extra.filter)

    for title, ops in program.sections():
        for op in ops:
            if isinstance(op, LoopRegion):
                # A re-rolled run still *executes* trips × body ops per
                # iteration; attribute each body op per trip so the
                # rows keep summing to the expanded section totals.
                for inner in op.body:
                    count(inner, title, op.trips)
                continue
            count(op, title, 1)

    def kind_of(name: str) -> str:
        return program.filter_kinds.get(name, "filter")

    for name, tokens in program.filter_tokens.items():
        row(name, kind_of(name)).tokens_per_iter = tokens
    for name, firings in program.filter_firings.items():
        row(name, kind_of(name)).firings_per_iter = firings
    return list(rows.values())


def steady_share(rows: list[FilterAttribution]) -> dict[str, float]:
    """Each actor's fraction of the steady-state op count, by name."""
    total = sum(entry.steady_ops for entry in rows)
    if total == 0:
        return {entry.name: 0.0 for entry in rows}
    return {entry.name: entry.steady_ops / total for entry in rows}
