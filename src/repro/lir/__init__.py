"""LaminarIR: the paper's token-named IR and the lowering that builds it."""

from repro.lir.analysis import EraseEffects, OpWorklist, ProgramIndex
from repro.lir.attribution import (FilterAttribution, attribute_program,
                                   steady_share)
from repro.lir.lower import Lowerer, LoweringOptions, lower
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, MoveOp, Op,
                           PrintOp, Provenance, SelectOp, StateSlot, StoreOp,
                           Temp, UnOp, Value, const_bool, const_float,
                           const_int, wrap_i32)
from repro.lir.program import Program
from repro.lir.verify import VerificationError, verify, verify_index

__all__ = [
    "BinOp", "CallOp", "CastOp", "Const", "EraseEffects",
    "FilterAttribution", "LoadOp", "Lowerer", "LoweringOptions", "MoveOp",
    "Op", "OpWorklist", "PrintOp", "Program", "ProgramIndex", "Provenance",
    "SelectOp", "StateSlot", "StoreOp", "Temp", "UnOp", "Value",
    "VerificationError", "attribute_program", "const_bool", "const_float",
    "const_int", "lower", "steady_share", "verify", "verify_index",
    "wrap_i32",
]
