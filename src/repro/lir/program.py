"""The LaminarIR program container.

A lowered program has three straight-line sections::

    setup:   runs once — field initializers and filter init blocks
    init:    runs once — the initialization schedule (prologue firings)
    steady:  runs every iteration — one unrolled steady-state iteration

Tokens that remain buffered across steady iterations are *loop-carried
values*: the steady section takes them as block parameters
(``carry_params``), the init section supplies their first values
(``carry_inits``), and the end of each steady iteration supplies the next
values (``carry_nexts``).  This is exactly the compile-time residue of the
FIFO queues — everything else about the queues has been resolved away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lir.ops import LoopRegion, Op, StateSlot, Temp, Value


@dataclass
class Program:
    name: str
    state_slots: list[StateSlot] = field(default_factory=list)
    setup: list[Op] = field(default_factory=list)
    init: list[Op] = field(default_factory=list)
    steady: list[Op] = field(default_factory=list)
    carry_params: list[Temp] = field(default_factory=list)
    carry_inits: list[Value] = field(default_factory=list)
    carry_nexts: list[Value] = field(default_factory=list)
    # Number of tokens printed per steady iteration (for harness checksums).
    prints_per_iteration: int = 0
    # Per-vertex steady-state accounting recorded during lowering (both
    # per one LaminarIR iteration, i.e. including the steady multiplier):
    # tokens pushed into channels, and schedule firings.  Keyed by the
    # flat-graph vertex name; feeds the attribution tables and the
    # laminar interpreter's per-filter counters.
    filter_tokens: dict[str, int] = field(default_factory=dict)
    filter_firings: dict[str, int] = field(default_factory=dict)
    # Actor kind per vertex name ("filter" | "splitter" | "joiner") —
    # lets attribution label actors whose ops were all eliminated.
    filter_kinds: dict[str, str] = field(default_factory=dict)

    def sections(self) -> list[tuple[str, list[Op]]]:
        return [("setup", self.setup), ("init", self.init),
                ("steady", self.steady)]

    @property
    def steady_op_count(self) -> int:
        return len(self.steady)

    @property
    def steady_op_count_expanded(self) -> int:
        """Steady ops *as executed*: a re-rolled :class:`LoopRegion`
        counts ``trips * len(body)`` instead of 1.  Equals
        ``steady_op_count`` for fully-unrolled programs."""
        total = 0
        for op in self.steady:
            if isinstance(op, LoopRegion):
                total += op.trips * len(op.body)
            else:
                total += 1
        return total

    def dump(self, max_ops_per_section: int | None = None) -> str:
        """Human-readable text form (used in docs, examples and tests)."""
        lines: list[str] = [f"program {self.name}"]
        if self.state_slots:
            lines.append("  state:")
            for slot in self.state_slots:
                lines.append(f"    {slot}: {slot.ty}")
        for title, ops in self.sections():
            header = f"  {title}:"
            if title == "steady" and self.carry_params:
                params = ", ".join(str(p) for p in self.carry_params)
                header = f"  {title}({params}):"
            lines.append(header)
            shown = ops if max_ops_per_section is None \
                else ops[:max_ops_per_section]
            for op in shown:
                if isinstance(op, LoopRegion):
                    lines.extend(_dump_region(op, indent="    "))
                else:
                    lines.append(f"    {op}")
            if max_ops_per_section is not None \
                    and len(ops) > max_ops_per_section:
                lines.append(f"    ... ({len(ops) - max_ops_per_section} "
                             "more)")
            if title == "init" and self.carry_inits:
                inits = ", ".join(str(v) for v in self.carry_inits)
                lines.append(f"    carry.init -> [{inits}]")
            if title == "steady" and self.carry_nexts:
                nexts = ", ".join(str(v) for v in self.carry_nexts)
                lines.append(f"    carry.next -> [{nexts}]")
        return "\n".join(lines)

    def op_counts(self) -> dict[str, dict[str, int]]:
        """Per-section op histogram (drives the cost/energy models).

        Loop-region bodies contribute their ops once each (structural
        counts, not trip-weighted) alongside a ``LoopRegion`` entry for
        the region itself.
        """
        out: dict[str, dict[str, int]] = {}
        for title, ops in self.sections():
            histogram: dict[str, int] = {}
            for op in ops:
                key = type(op).__name__
                histogram[key] = histogram.get(key, 0) + 1
                if isinstance(op, LoopRegion):
                    for inner in op.body:
                        inner_key = type(inner).__name__
                        histogram[inner_key] = \
                            histogram.get(inner_key, 0) + 1
            out[title] = histogram
        return out


def _dump_region(region: LoopRegion, indent: str) -> list[str]:
    simd = " simd" if region.parallel else ""
    lines = [f"{indent}loop {region.index} in 0..{region.trips}{simd} {{"]
    if region.carry_params:
        pairs = ", ".join(
            f"{p} = {i}" for p, i in
            zip(region.carry_params, region.carry_inits))
        lines.append(f"{indent}  carry [{pairs}]")
    for op in region.body:
        lines.append(f"{indent}  {op}")
    if region.carry_nexts:
        nexts = ", ".join(str(v) for v in region.carry_nexts)
        lines.append(f"{indent}  carry.next -> [{nexts}]")
    lines.append(f"{indent}}}")
    return lines
