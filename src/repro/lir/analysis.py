"""Def-use analysis over LaminarIR programs.

:class:`ProgramIndex` is the shared analysis layer the optimizer passes
consume: for every temp it records the defining op and the set of using
ops (plus uses from the carry lists), and for every state slot the loads
and stores that touch it.  The index is maintained *incrementally*
through the two mutations passes perform —
:meth:`ProgramIndex.replace_all_uses` (eager rewrite of every user) and
:meth:`ProgramIndex.erase` (mark an op dead) — so a pass can push only
the *affected* ops onto a sparse worklist instead of rescanning the
whole program each fixpoint round.

Erasure is mark-and-sweep: ``erase`` only marks the op (an O(1)
operation) and :meth:`ProgramIndex.compact` later filters the section
lists in one pass.  Anything that walks the raw ``program.setup`` /
``init`` / ``steady`` lists (the scheduler, promotion, codegen, the
verifier) must run after ``compact``.

Determinism note: ops hash by identity, so a ``set`` of ops would
iterate in an address-dependent order and make optimization output
depend on the allocator.  Every op collection here is a ``dict`` used
as an ordered set (insertion order), which keeps pass behavior
reproducible run to run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.lir.ops import (LoadOp, LoopRegion, Op, PROVENANCE_KINDS,
                           PROVENANCE_PHASES, Provenance, StoreOp, Temp,
                           Value)
from repro.lir.program import Program


class OpWorklist:
    """A FIFO worklist of ops with O(1) duplicate suppression."""

    def __init__(self) -> None:
        self._queue: deque[Op] = deque()
        self._pending: set[Op] = set()

    def push(self, op: Op) -> None:
        if op not in self._pending:
            self._pending.add(op)
            self._queue.append(op)

    def push_all(self, ops) -> None:
        for op in ops:
            self.push(op)

    def pop(self) -> Op | None:
        if not self._queue:
            return None
        op = self._queue.popleft()
        self._pending.discard(op)
        return op

    def clear(self) -> None:
        self._queue.clear()
        self._pending.clear()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)


@dataclass
class EraseEffects:
    """What an :meth:`ProgramIndex.erase` freed up, for worklist seeding.

    ``dead_defs`` are ops whose result just lost its last use;
    ``dead_stores`` are stores to a slot that just lost its last load.
    Both are *candidates* — dead-code elimination re-checks them.
    """

    dead_defs: list[Op] = field(default_factory=list)
    dead_stores: list[Op] = field(default_factory=list)
    erased_store: bool = False
    dead_carry_params: bool = False


class ProgramIndex:
    """Incrementally-maintained def-use index of a :class:`Program`.

    Op ids are assigned in program order (setup, then init, then steady)
    at build time and are strictly increasing within each section for as
    long as no op is *inserted* — none of the worklist passes insert
    ops, so within one fixpoint run ``op_id`` gives the dominance order
    of two ops in the same section.  Passes that restructure sections
    (state promotion, pressure scheduling) invalidate the index; the
    pass manager rebuilds it, renumbering in the new program order.
    """

    def __init__(self, program: Program):
        self.program = program
        self._build()

    # -- construction -------------------------------------------------------

    def _build(self) -> None:
        self._op_ids: dict[Op, int] = {}
        self._section_of: dict[Op, str] = {}
        self._defs: dict[int, Op] = {}
        self._uses: dict[int, dict[Op, None]] = {}
        self._slot_loads: dict[str, dict[Op, None]] = {}
        self._slot_stores: dict[str, dict[Op, None]] = {}
        self._erased: set[Op] = set()
        # Ops already swept out of the section lists by compact().  They
        # must stay observably erased: pass state (CSE tables, worklists)
        # may still hold references across a mid-run compact.
        self._tombstones: set[Op] = set()
        # Enclosing LoopRegion for ops living inside a region body.
        self._region_of: dict[Op, LoopRegion] = {}
        self._next_id = 0
        for title, ops in self.program.sections():
            for op in ops:
                self._index_op(op, title)
        self.rebuild_carries()

    def _index_op(self, op: Op, title: str,
                  region: LoopRegion | None = None) -> None:
        self._op_ids[op] = self._next_id
        self._next_id += 1
        self._section_of[op] = title
        if region is not None:
            self._region_of[op] = region
        if isinstance(op, LoopRegion):
            # The region op *defines* its trip counter and carry params
            # (fresh each trip) and *uses* the temps its carry lists
            # reference; body ops are indexed individually so the
            # worklist passes can fold/CSE/DCE inside the body.
            self._defs[op.index.id] = op
            for param in op.carry_params:
                self._defs[param.id] = op
            for value in list(op.carry_inits) + list(op.carry_nexts):
                if isinstance(value, Temp):
                    self._uses.setdefault(value.id, {})[op] = None
            for inner in op.body:
                self._index_op(inner, title, op)
            return
        if op.result is not None:
            self._defs[op.result.id] = op
        for operand in op.operands():
            if isinstance(operand, Temp):
                self._uses.setdefault(operand.id, {})[op] = None
        if isinstance(op, LoadOp):
            self._slot_loads.setdefault(op.slot.name, {})[op] = None
        elif isinstance(op, StoreOp):
            self._slot_stores.setdefault(op.slot.name, {})[op] = None

    def rebuild_carries(self) -> None:
        """Recompute the carry-list use map (after carry lists changed)."""
        self._carry_uses: dict[int, dict[tuple[str, int], None]] = {}
        self.carry_param_ids = {p.id for p in self.program.carry_params}
        for kind, values in (("init", self.program.carry_inits),
                             ("next", self.program.carry_nexts)):
            for position, value in enumerate(values):
                if isinstance(value, Temp):
                    self._carry_uses.setdefault(
                        value.id, {})[(kind, position)] = None

    def rebuild(self) -> None:
        """From-scratch rebuild (after a pass that restructured sections)."""
        self.compact()
        self._build()

    def region_of(self, op: Op) -> LoopRegion | None:
        """The enclosing :class:`LoopRegion`, or None for top-level ops."""
        return self._region_of.get(op)

    # -- queries ------------------------------------------------------------

    def op_id(self, op: Op) -> int:
        return self._op_ids[op]

    def section_of(self, op: Op) -> str:
        return self._section_of[op]

    def is_erased(self, op: Op) -> bool:
        return op in self._erased or op in self._tombstones

    def live_ops(self):
        """Yield every non-erased op in program order (region bodies
        nested right after their region op)."""
        for _title, ops in self.program.sections():
            for op in ops:
                if op in self._erased:
                    continue
                yield op
                if isinstance(op, LoopRegion):
                    for inner in op.body:
                        if inner not in self._erased:
                            yield inner

    def def_of(self, temp_id: int) -> Op | None:
        return self._defs.get(temp_id)

    def op_use_count(self, temp_id: int) -> int:
        """Uses by ops only (excludes the carry lists)."""
        users = self._uses.get(temp_id)
        return len(users) if users else 0

    def use_count(self, temp_id: int) -> int:
        """Total uses: ops plus carry-list entries."""
        carries = self._carry_uses.get(temp_id)
        return self.op_use_count(temp_id) + (len(carries) if carries else 0)

    def users_of(self, temp_id: int) -> list[Op]:
        users = self._uses.get(temp_id)
        return list(users) if users else []

    def slot_load_count(self, name: str) -> int:
        loads = self._slot_loads.get(name)
        return len(loads) if loads else 0

    def slot_touched(self, name: str) -> bool:
        return bool(self._slot_loads.get(name)
                    or self._slot_stores.get(name))

    # -- mutations ----------------------------------------------------------

    def replace_all_uses(self, temp: Temp,
                         new: Value) -> tuple[list[Op], bool]:
        """Rewrite every use of ``temp`` to ``new``, eagerly.

        Returns the affected ops (in insertion order) and whether any
        carry-list entry was rewritten.  The caller is responsible for
        pushing the affected ops onto its worklists.
        """
        assert not (isinstance(new, Temp) and new.id == temp.id)
        users = self._uses.pop(temp.id, None) or {}
        affected = list(users)

        def swap(value: Value) -> Value:
            if isinstance(value, Temp) and value.id == temp.id:
                return new
            return value

        for op in affected:
            op.map_operands(swap)
        if isinstance(new, Temp) and affected:
            bucket = self._uses.setdefault(new.id, {})
            for op in affected:
                bucket[op] = None

        carry_entries = self._carry_uses.pop(temp.id, None) or {}
        for kind, position in carry_entries:
            target = self.program.carry_inits if kind == "init" \
                else self.program.carry_nexts
            target[position] = new
        if isinstance(new, Temp) and carry_entries:
            bucket = self._carry_uses.setdefault(new.id, {})
            for entry in carry_entries:
                bucket[entry] = None
        return affected, bool(carry_entries)

    def erase(self, op: Op) -> EraseEffects:
        """Mark ``op`` dead and release its operand uses.

        The op's result (if any) must have no remaining uses — run
        :meth:`replace_all_uses` first.  The section lists still contain
        the op until :meth:`compact`.
        """
        assert not self.is_erased(op), "op erased twice"
        assert not isinstance(op, LoopRegion), \
            "regions are effects; passes never erase them"
        if op.result is not None:
            assert self.use_count(op.result.id) == 0, \
                f"erasing {op} whose result is still used"
            self._defs.pop(op.result.id, None)
            self._uses.pop(op.result.id, None)
        self._erased.add(op)
        effects = EraseEffects()
        seen: set[int] = set()
        for operand in op.operands():
            if not isinstance(operand, Temp) or operand.id in seen:
                continue
            seen.add(operand.id)
            users = self._uses.get(operand.id)
            if users is not None:
                users.pop(op, None)
            if self.use_count(operand.id) == 0:
                def_op = self._defs.get(operand.id)
                if def_op is not None:
                    effects.dead_defs.append(def_op)
                elif operand.id in self.carry_param_ids:
                    effects.dead_carry_params = True
        if isinstance(op, LoadOp):
            loads = self._slot_loads.get(op.slot.name)
            if loads is not None:
                loads.pop(op, None)
                if not loads:
                    effects.dead_stores.extend(
                        self._slot_stores.get(op.slot.name, {}))
        elif isinstance(op, StoreOp):
            stores = self._slot_stores.get(op.slot.name)
            if stores is not None:
                stores.pop(op, None)
            effects.erased_store = True
        return effects

    def compact(self) -> None:
        """Sweep erased ops out of the section lists."""
        if not self._erased:
            return
        for _title, ops in self.program.sections():
            for op in ops:
                if isinstance(op, LoopRegion) and op not in self._erased:
                    op.body[:] = [inner for inner in op.body
                                  if inner not in self._erased]
            ops[:] = [op for op in ops if op not in self._erased]
        for op in self._erased:
            self._op_ids.pop(op, None)
            self._section_of.pop(op, None)
            self._region_of.pop(op, None)
        self._tombstones |= self._erased
        self._erased.clear()

    # -- verification support -----------------------------------------------

    def provenance_report(self) -> tuple[int, list[Op], list[Op]]:
        """Provenance integrity over the live ops.

        Returns ``(stamped, missing, malformed)``: how many live ops
        carry provenance, which carry none, and which carry an entry
        that is not a well-formed :class:`Provenance` (wrong type, empty
        filter name, unknown kind/phase).  Integrity is all-or-nothing
        per program — hand-built programs legitimately carry none, but a
        lowered program must never *lose* stamps to a pass, so ``stamped
        and missing`` is the failure condition ``verify_index`` checks.
        """
        stamped = 0
        missing: list[Op] = []
        malformed: list[Op] = []
        for op in self.live_ops():
            if not op.prov:
                missing.append(op)
                continue
            stamped += 1
            for entry in op.prov:
                if not isinstance(entry, Provenance) or not entry.filter \
                        or entry.kind not in PROVENANCE_KINDS \
                        or entry.phase not in PROVENANCE_PHASES:
                    malformed.append(op)
                    break
        return stamped, missing, malformed

    def snapshot(self) -> dict:
        """A normalized view for comparison against a fresh rebuild.

        Op ids are excluded: a rebuild renumbers, and ids carry no
        semantic content beyond relative order.
        """
        return {
            "defs": dict(self._defs),
            "uses": {tid: frozenset(users)
                     for tid, users in self._uses.items() if users},
            "carry_uses": {tid: frozenset(entries)
                           for tid, entries in self._carry_uses.items()
                           if entries},
            "loads": {name: frozenset(ops)
                      for name, ops in self._slot_loads.items() if ops},
            "stores": {name: frozenset(ops)
                       for name, ops in self._slot_stores.items() if ops},
            "carry_params": frozenset(self.carry_param_ids),
            "region_of": dict(self._region_of),
        }
