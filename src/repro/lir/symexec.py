"""Symbolic execution of filter bodies into LaminarIR ops.

This is the machinery behind the lowering: it executes a work body (or init
block, field initializer, prework, helper function) with *partially known*
values.  Compile-time-known values stay :class:`~repro.lir.ops.Const` and
fold eagerly; everything else becomes SSA temps with emitted ops.

Token operations (``peek``/``pop``/``push``) are delegated to
:class:`TokenHooks` supplied by the scheduler-driven lowering — that is
where FIFO queues become compile-time name lookups.

Control flow is resolved at compile time: loops with static bounds unroll,
``if`` on a static condition takes one branch, and ``if`` on a dynamic
condition is if-converted into ``select`` ops (both branches must be free
of side effects).  Data-dependent rates are impossible by construction —
exactly the SDF restriction LaminarIR relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frontend import ast_nodes as ast
from repro.faults.limits import ResourceExhausted
from repro.frontend.errors import LoweringError, RateError, SourceLocation
from repro.frontend.intrinsics import INTRINSICS, result_type
from repro.frontend.types import (ArrayType, BOOLEAN, FLOAT, INT, ScalarType,
                                  Type, VOID)
from repro.graph.builder import apply_binary
from repro.graph.nodes import FilterNode
from repro.lir.ops import (BinOp, CallOp, CastOp, Const, LoadOp, Op, PrintOp,
                           Provenance, SelectOp, StateSlot, StoreOp, Temp,
                           UnOp, Value, const_bool, const_float, const_int,
                           wrap_i32)

_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")
_INT_ONLY_OPS = ("%", "&", "|", "^", "<<", ">>")
_MAX_CALL_DEPTH = 64


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Value | None):
        self.value = value


@dataclass
class _HelperFrame:
    """Predicated-return state of one inlined helper invocation.

    A `return` under a data-dependent condition cannot abort symbolic
    execution (both branches run speculatively), so it is *predicated*:
    ``done`` accumulates "has this call already returned" and ``value``
    accumulates the selected return value.  Effects are forbidden while
    ``done`` is not statically false.
    """

    return_ty: ScalarType | None
    path_depth: int
    done: Value = None  # type: ignore[assignment]
    value: Value = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.done is None:
            self.done = const_bool(False)
        if self.value is None:
            ty = self.return_ty
            if ty == FLOAT:
                self.value = const_float(0.0)
            elif ty == BOOLEAN:
                self.value = const_bool(False)
            else:
                self.value = const_int(0)


class TokenHooks:
    """Interface the lowering provides for one firing's token operations."""

    def peek(self, offset: int, loc: SourceLocation) -> Value:
        raise NotImplementedError

    def pop(self, loc: SourceLocation) -> Value:
        raise NotImplementedError

    def push(self, value: Value, loc: SourceLocation) -> None:
        raise NotImplementedError


class Emitter:
    """Appends ops to the current block with eager constant folding.

    Also stamps provenance: the lowering keeps the emitter told which
    actor is firing (:meth:`set_actor`), which program section is being
    built (:meth:`set_phase`) and which source line is executing
    (:meth:`set_line`); every emitted op gets the current
    :class:`Provenance`.  Provenance objects are interned per
    (actor, kind, line, phase) so a large unrolled schedule shares them.
    """

    def __init__(self, op_limit: int = 4_000_000):
        self.block: list[Op] = []
        self.op_limit = op_limit
        self.emitted = 0
        self._actor = ""
        self._actor_kind = "filter"
        self._phase = "setup"
        self._line = 0
        self._prov: tuple[Provenance, ...] = ()
        self._prov_cache: dict[tuple[str, str, int, str],
                               tuple[Provenance, ...]] = {}

    def set_block(self, block: list[Op]) -> None:
        self.block = block

    # -- provenance state ---------------------------------------------------------

    def set_actor(self, name: str, kind: str = "filter") -> None:
        if name != self._actor or kind != self._actor_kind:
            self._actor = name
            self._actor_kind = kind
            self._refresh_prov()

    def set_phase(self, phase: str) -> None:
        if phase != self._phase:
            self._phase = phase
            self._refresh_prov()

    def set_line(self, line: int) -> None:
        if line != self._line:
            self._line = line
            self._refresh_prov()

    def _refresh_prov(self) -> None:
        if not self._actor:
            self._prov = ()
            return
        key = (self._actor, self._actor_kind, self._line, self._phase)
        cached = self._prov_cache.get(key)
        if cached is None:
            cached = (Provenance(filter=self._actor, kind=self._actor_kind,
                                 line=self._line, phase=self._phase),)
            self._prov_cache[key] = cached
        self._prov = cached

    def emit(self, op: Op) -> None:
        self.emitted += 1
        if self.emitted > self.op_limit:
            raise LoweringError(
                f"lowering exceeded {self.op_limit} ops; "
                "the unrolled schedule is too large")
        op.prov = self._prov
        self.block.append(op)

    # -- folding helpers ---------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value,
              loc: SourceLocation, source: str = "") -> Value:
        lhs, rhs = self._unify(op, lhs, rhs)
        if isinstance(lhs, Const) and isinstance(rhs, Const):
            value = apply_binary(op, lhs.value, rhs.value, loc, source)
            return self._make_const(op, lhs.ty, value)
        result_ty = BOOLEAN if op in _CMP_OPS else lhs.ty
        result = Temp(result_ty)
        self.emit(BinOp(result=result, op=op, lhs=lhs, rhs=rhs))
        return result

    def _make_const(self, op: str, operand_ty: ScalarType,
                    value: object) -> Const:
        if op in _CMP_OPS:
            return const_bool(bool(value))
        if operand_ty == INT:
            return const_int(int(value))  # also wraps
        if operand_ty == FLOAT:
            return const_float(float(value))
        return const_bool(bool(value))

    def _unify(self, op: str, lhs: Value, rhs: Value) -> tuple[Value, Value]:
        if op in _INT_ONLY_OPS or lhs.ty == rhs.ty:
            return lhs, rhs
        if FLOAT in (lhs.ty, rhs.ty):
            return self.coerce(lhs, FLOAT), self.coerce(rhs, FLOAT)
        return lhs, rhs

    def unop(self, op: str, operand: Value) -> Value:
        if isinstance(operand, Const):
            if op == "-":
                value = -operand.value  # type: ignore[operator]
                return (const_int(value) if operand.ty == INT
                        else const_float(value))
            if op == "!":
                return const_bool(not operand.value)
            if op == "~":
                return const_int(~operand.value)  # type: ignore[operator]
        result = Temp(operand.ty)
        self.emit(UnOp(result=result, op=op, operand=operand))
        return result

    def coerce(self, value: Value, ty: ScalarType) -> Value:
        if value.ty == ty:
            return value
        if isinstance(value, Const):
            if ty == FLOAT:
                return const_float(float(value.value))  # type: ignore
            if ty == INT:
                return const_int(int(value.value))  # type: ignore
            if ty == BOOLEAN:
                return const_bool(bool(value.value))
        result = Temp(ty)
        self.emit(CastOp(result=result, operand=value))
        return result

    def select(self, cond: Value, then: Value, otherwise: Value) -> Value:
        if then.ty != otherwise.ty:
            if FLOAT in (then.ty, otherwise.ty):
                then = self.coerce(then, FLOAT)
                otherwise = self.coerce(otherwise, FLOAT)
        if isinstance(cond, Const):
            return then if cond.value else otherwise
        if then is otherwise:
            return then
        result = Temp(then.ty)
        self.emit(SelectOp(result=result, cond=cond, then=then,
                           otherwise=otherwise))
        return result

    def call(self, name: str, args: list[Value]) -> Value:
        intrinsic = INTRINSICS[name]
        arg_tys: list[Type] = [a.ty for a in args]
        res_ty = result_type(intrinsic, arg_tys)
        assert isinstance(res_ty, ScalarType)
        if intrinsic.policy == "float":
            args = [self.coerce(a, FLOAT) for a in args]
        if intrinsic.pure and all(isinstance(a, Const) for a in args):
            assert intrinsic.impl is not None
            value = intrinsic.impl(*[a.value for a in args  # type: ignore
                                     if True])
            if res_ty == INT:
                return const_int(int(value))
            if res_ty == FLOAT:
                return const_float(float(value))
        result = Temp(res_ty)
        self.emit(CallOp(result=result, name=name, args=args,
                         pure=intrinsic.pure))
        return result

    def load(self, slot: StateSlot, index: Value | None) -> Value:
        result = Temp(slot.ty)
        self.emit(LoadOp(result=result, slot=slot, index=index))
        return result

    def store(self, slot: StateSlot, index: Value | None,
              value: Value) -> None:
        self.emit(StoreOp(result=None, slot=slot, index=index,
                          value=self.coerce(value, slot.ty)))


# -- environment cells -------------------------------------------------------------


@dataclass
class ScalarCell:
    ty: ScalarType
    value: Value

    def clone(self) -> "ScalarCell":
        return ScalarCell(self.ty, self.value)


@dataclass
class ArrayCell:
    """A fully scalarized local array: one Value per element."""

    element_ty: ScalarType
    dims: list[int]
    elems: list[Value]

    def clone(self) -> "ArrayCell":
        return ArrayCell(self.element_ty, list(self.dims), list(self.elems))


@dataclass
class FieldCell:
    """A filter field backed by a state slot (scalar or linearized array).

    Scalar fields are *cached*: the first read in a section loads once,
    writes update the cached value (and mark it dirty), and the executor
    flushes one store per firing.  Because only the owning filter touches
    its fields, this is sound within a section; the lowering invalidates
    caches at section boundaries, where field state becomes loop-carried
    memory again.  Caching is what lets scalar field writes sit under
    data-dependent conditions: they merge through ``select`` like locals.
    """

    slot: StateSlot
    dims: list[int] = field(default_factory=list)  # empty for scalars
    cached: Value | None = None
    dirty: bool = False

    def clone(self) -> "FieldCell":
        return self  # slot-backed and merged via (cached, dirty) state


Cell = ScalarCell | ArrayCell | FieldCell


class Env:
    """Lexically scoped environment of cells."""

    def __init__(self, parent: "Env | None" = None):
        self.parent = parent
        self.cells: dict[str, Cell] = {}

    def child(self) -> "Env":
        return Env(self)

    def define(self, name: str, cell: Cell) -> None:
        self.cells[name] = cell

    def lookup(self, name: str) -> Cell | None:
        env: Env | None = self
        while env is not None:
            if name in env.cells:
                return env.cells[name]
            env = env.parent
        return None

    def snapshot(self) -> "list[tuple[Env, str, Cell]]":
        """All (env, name, cell) triples visible from this scope."""
        out: list[tuple[Env, str, Cell]] = []
        env: Env | None = self
        seen: set[str] = set()
        while env is not None:
            for name, cell in env.cells.items():
                if name not in seen:
                    seen.add(name)
                    out.append((env, name, cell))
            env = env.parent
        return out


class BodyExecutor:
    """Executes one filter body symbolically, emitting LaminarIR ops."""

    def __init__(self, emitter: Emitter, node: FilterNode,
                 fields: dict[str, FieldCell], source: str,
                 unroll_limit: int = 4_000_000):
        self.emitter = emitter
        self.node = node
        self.fields = fields
        self.source = source
        self.helpers = {h.name: h for h in node.decl.helpers}
        self.hooks: TokenHooks | None = None
        self.pops = 0
        self.pushes = 0
        self.steps = 0
        self.unroll_limit = unroll_limit
        self.call_depth = 0
        # > 0 while executing a speculative (if-converted) branch.
        self.speculative = 0
        # Branch conditions of enclosing if-conversions, innermost last.
        self.path_conditions: list[Value] = []
        # Inlined-helper invocation frames, innermost last.
        self.helper_frames: list[_HelperFrame] = []

    # -- entry points -------------------------------------------------------------

    def base_env(self) -> Env:
        env = Env()
        for name, value in self.node.env.items():
            env.define(name, ScalarCell(_scalar_of(value),
                                        _const_of(value)))
        for name, cell in self.fields.items():
            env.define(name, cell)
        return env

    def run_body(self, block: ast.Block, hooks: TokenHooks | None) -> None:
        self.hooks = hooks
        self.pops = 0
        self.pushes = 0
        env = self.base_env().child()
        self._exec_block(block, env)
        self.flush_fields()
        self.hooks = None

    def run_field_initializers(self) -> None:
        env = self.base_env()
        for fld in self.node.decl.fields:
            if fld.init is None:
                continue
            self.emitter.set_line(fld.loc.line)
            cell = self.fields[fld.name]
            value = self._eval(fld.init, env)
            if cell.dims:
                raise LoweringError(
                    f"array field {fld.name!r} cannot have a scalar "
                    "initializer", fld.loc, self.source)
            cell.cached = self.emitter.coerce(value, cell.slot.ty)
            cell.dirty = True
        self.flush_fields()

    def flush_fields(self) -> None:
        """Write dirty scalar-field caches back to their state slots."""
        assert not self.speculative
        # The lowering may flush several executors in a row at a section
        # boundary; re-assert the owning filter so the stores attribute
        # to it rather than to whichever actor last fired.
        self.emitter.set_actor(self.node.name, "filter")
        for cell in self.fields.values():
            if not cell.dims and cell.dirty:
                assert cell.cached is not None
                self.emitter.store(cell.slot, None, cell.cached)
                cell.dirty = False

    def invalidate_field_caches(self) -> None:
        """Drop scalar-field caches (at section boundaries, where field
        state becomes loop-carried memory: the next read must load)."""
        self.flush_fields()
        for cell in self.fields.values():
            if not cell.dims:
                cell.cached = None

    # -- statements ----------------------------------------------------------------

    def _const_int(self, value: Value, loc: SourceLocation,
                   what: str) -> int:
        if not isinstance(value, Const) or value.ty != INT:
            raise LoweringError(f"{what} must be compile-time constant",
                                loc, self.source)
        assert isinstance(value.value, int)
        return value.value

    def _step(self, loc: SourceLocation) -> None:
        self.steps += 1
        if self.steps > self.unroll_limit:
            # Routed through the fault taxonomy (CLI exit code 3) so a
            # runaway unroll reports *which* filter blew the budget
            # rather than a bare lowering failure.
            raise ResourceExhausted(
                "unroll_limit", self.unroll_limit, self.steps,
                where=f"filter {self.node.name!r} work body",
                detail="non-terminating loop, or a schedule with very "
                       "large rate multiples — large-but-finite bodies "
                       "are re-rolled into counted loops downstream "
                       "(--reroll, on by default), so raising "
                       "LoweringOptions.unroll_limit is usually safe",
                loc=loc, source=self.source)

    def _exec_block(self, block: ast.Block, env: Env) -> None:
        block_env = env.child()
        for stmt in block.stmts:
            self._exec(stmt, block_env)

    def _exec(self, stmt: ast.Stmt, env: Env) -> None:
        self._step(stmt.loc)
        self.emitter.set_line(stmt.loc.line)
        if isinstance(stmt, ast.Block):
            self._exec_block(stmt, env)
        elif isinstance(stmt, ast.VarDecl):
            self._exec_var_decl(stmt, env)
        elif isinstance(stmt, ast.Assign):
            self._exec_assign(stmt, env)
        elif isinstance(stmt, ast.ExprStmt):
            assert stmt.expr is not None
            self._eval(stmt.expr, env)
        elif isinstance(stmt, ast.PushStmt):
            self._exec_push(stmt, env)
        elif isinstance(stmt, ast.PrintStmt):
            self._exec_print(stmt, env)
        elif isinstance(stmt, ast.IfStmt):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ast.ForStmt):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.WhileStmt):
            self._exec_while(stmt, env)
        elif isinstance(stmt, ast.DoWhileStmt):
            self._exec_do_while(stmt, env)
        elif isinstance(stmt, ast.ReturnStmt):
            self._exec_return(stmt, env)
        elif isinstance(stmt, ast.BreakStmt):
            if self.speculative:
                raise LoweringError(
                    "break under a data-dependent condition cannot be "
                    "lowered", stmt.loc, self.source)
            raise _Break()
        elif isinstance(stmt, ast.ContinueStmt):
            if self.speculative:
                raise LoweringError(
                    "continue under a data-dependent condition cannot be "
                    "lowered", stmt.loc, self.source)
            raise _Continue()
        else:
            raise LoweringError(
                f"cannot lower statement {type(stmt).__name__}", stmt.loc,
                self.source)

    def _exec_return(self, stmt: ast.ReturnStmt, env: Env) -> None:
        if not self.helper_frames:
            raise LoweringError("return outside of a helper", stmt.loc,
                                self.source)
        frame = self.helper_frames[-1]
        value = (self._eval(stmt.value, env)
                 if stmt.value is not None else None)
        if value is not None and frame.return_ty is not None:
            value = self.emitter.coerce(value, frame.return_ty)
        condition = self._frame_path_condition(frame, stmt.loc)
        done_false = isinstance(frame.done, Const) and not frame.done.value
        if isinstance(condition, Const) and condition.value and done_false:
            raise _Return(value)  # the classic unconditional return
        # Predicated return: select the value where this return fires and
        # no earlier return already did.
        not_done = self.emitter.unop("!", frame.done)
        guard = self.emitter.binop("&", condition, not_done, stmt.loc,
                                   self.source)
        if value is not None:
            frame.value = self.emitter.select(guard, value, frame.value)
        frame.done = self.emitter.binop("|", frame.done, condition,
                                        stmt.loc, self.source)
        if isinstance(frame.done, Const) and frame.done.value \
                and not self.speculative:
            # every path has now returned; the rest of the body is dead
            raise _Return(frame.value)

    def _frame_path_condition(self, frame: _HelperFrame,
                              loc: SourceLocation) -> Value:
        """Conjunction of the branch conditions entered since the frame."""
        condition: Value = const_bool(True)
        for cond in self.path_conditions[frame.path_depth:]:
            condition = self.emitter.binop("&", condition, cond, loc,
                                           self.source)
        return condition

    def _exec_var_decl(self, stmt: ast.VarDecl, env: Env) -> None:
        assert stmt.var_type is not None
        base = stmt.var_type
        assert isinstance(base, ScalarType)
        if stmt.dims:
            dims = [self._const_int(self._eval(d, env), d.loc,
                                    "local array size")
                    for d in stmt.dims]
            count = 1
            for d in dims:
                if d <= 0:
                    raise LoweringError("array size must be positive",
                                        stmt.loc, self.source)
                count *= d
            zero = (const_int(0) if base == INT
                    else const_float(0.0) if base == FLOAT
                    else const_bool(False))
            env.define(stmt.name, ArrayCell(base, dims, [zero] * count))
            if stmt.init is not None:
                raise LoweringError(
                    "array initializers are not supported", stmt.loc,
                    self.source)
            return
        if stmt.init is not None:
            value = self.emitter.coerce(self._eval(stmt.init, env), base)
        else:
            value = (const_int(0) if base == INT
                     else const_float(0.0) if base == FLOAT
                     else const_bool(False))
        env.define(stmt.name, ScalarCell(base, value))

    def _exec_assign(self, stmt: ast.Assign, env: Env) -> None:
        assert stmt.target is not None and stmt.value is not None
        value = self._eval(stmt.value, env)
        if stmt.op != "=":
            current = self._eval(stmt.target, env)
            value = self.emitter.binop(stmt.op[:-1], current, value,
                                       stmt.loc, self.source)
        self._write_ref(stmt.target, value, env)

    def _write_ref(self, target: ast.Expr, value: Value, env: Env) -> None:
        if isinstance(target, ast.Ident):
            cell = env.lookup(target.name)
            if cell is None:
                raise LoweringError(f"unknown variable {target.name!r}",
                                    target.loc, self.source)
            if isinstance(cell, ScalarCell):
                cell.value = self.emitter.coerce(value, cell.ty)
                return
            if isinstance(cell, FieldCell) and not cell.dims:
                new_value = self.emitter.coerce(value, cell.slot.ty)
                guard = self._pending_return_guard(target.loc)
                if guard is not None:
                    # a helper on the stack may already have returned:
                    # keep the old value on those paths
                    if cell.cached is None:
                        cell.cached = self.emitter.load(cell.slot, None)
                    new_value = self.emitter.select(guard, new_value,
                                                    cell.cached)
                cell.cached = new_value
                cell.dirty = True
                return
            raise LoweringError(
                f"cannot assign whole array {target.name!r}", target.loc,
                self.source)
        if isinstance(target, ast.Index):
            base, indices = self._collect_indices(target)
            assert isinstance(base, ast.Ident)
            cell = env.lookup(base.name)
            if cell is None:
                raise LoweringError(f"unknown variable {base.name!r}",
                                    base.loc, self.source)
            index_values = [self._eval(i, env) for i in indices]
            if isinstance(cell, ArrayCell):
                linear = self._linear_index(cell.dims, index_values,
                                            target.loc)
                if not isinstance(linear, Const):
                    raise LoweringError(
                        "dynamic index into a local array is not "
                        "supported; use a filter field", target.loc,
                        self.source)
                offset = linear.value
                assert isinstance(offset, int)
                self._check_array_bounds(offset, len(cell.elems),
                                         target.loc)
                cell.elems[offset] = self.emitter.coerce(value,
                                                         cell.element_ty)
                return
            if isinstance(cell, FieldCell) and cell.dims:
                self._check_effect_allowed(target.loc, "field store")
                linear = self._linear_index(cell.dims, index_values,
                                            target.loc)
                self._check_const_bounds(linear, cell.slot, target.loc)
                self.emitter.store(cell.slot, linear, value)
                return
            raise LoweringError("indexed value is not an array", target.loc,
                                self.source)
        raise LoweringError("invalid assignment target", target.loc,
                            self.source)

    def _collect_indices(
            self, expr: ast.Index) -> tuple[ast.Expr, list[ast.Expr]]:
        indices: list[ast.Expr] = []
        node: ast.Expr = expr
        while isinstance(node, ast.Index):
            assert node.index is not None and node.base is not None
            indices.append(node.index)
            node = node.base
        indices.reverse()
        return node, indices

    def _exec_push(self, stmt: ast.PushStmt, env: Env) -> None:
        self._check_effect_allowed(stmt.loc, "push")
        assert stmt.value is not None
        if self.hooks is None:
            raise LoweringError("push outside of a firing context",
                                stmt.loc, self.source)
        value = self._eval(stmt.value, env)
        self.hooks.push(value, stmt.loc)
        self.pushes += 1

    def _exec_print(self, stmt: ast.PrintStmt, env: Env) -> None:
        self._check_effect_allowed(stmt.loc, "print")
        assert stmt.value is not None
        if isinstance(stmt.value, ast.StringLit):
            raise LoweringError("string printing is not supported in "
                                "lowered code", stmt.loc, self.source)
        value = self._eval(stmt.value, env)
        self.emitter.emit(PrintOp(result=None, value=value,
                                  newline=stmt.newline))

    def _exec_if(self, stmt: ast.IfStmt, env: Env) -> None:
        assert stmt.cond is not None and stmt.then is not None
        cond = self._eval(stmt.cond, env)
        if isinstance(cond, Const):
            if cond.value:
                self._exec(stmt.then, env.child())
            elif stmt.otherwise is not None:
                self._exec(stmt.otherwise, env.child())
            return
        self._if_convert(stmt, cond, env)

    def _if_convert(self, stmt: ast.IfStmt, cond: Value, env: Env) -> None:
        """Execute both branches speculatively and merge with selects."""
        assert stmt.then is not None
        before = env.snapshot()
        saved = [(cell, self._cell_state(cell)) for _, _, cell in before]

        saved_frames = [(frame, frame.done, frame.value)
                        for frame in self.helper_frames]
        self.speculative += 1
        try:
            self.path_conditions.append(cond)
            try:
                self._exec(stmt.then, env.child())
            finally:
                self.path_conditions.pop()
            then_state = [self._cell_state(cell) for _, _, cell in before]
            then_frames = [(frame.done, frame.value)
                           for frame in self.helper_frames]
            for (cell, state) in saved:
                self._restore_cell(cell, state)
            for frame, done, value in saved_frames:
                frame.done, frame.value = done, value
            if stmt.otherwise is not None:
                negated = self.emitter.unop("!", cond)
                self.path_conditions.append(negated)
                try:
                    self._exec(stmt.otherwise, env.child())
                finally:
                    self.path_conditions.pop()
            else_state = [self._cell_state(cell) for _, _, cell in before]
            else_frames = [(frame.done, frame.value)
                           for frame in self.helper_frames]
        finally:
            self.speculative -= 1

        # Merge predicated-return state: each branch already folded the
        # path condition into done/value, so the merge is a plain select.
        for frame, (t_done, t_value), (e_done, e_value) in zip(
                self.helper_frames, then_frames, else_frames):
            frame.done = self.emitter.select(cond, t_done, e_done) \
                if t_done is not e_done else t_done
            frame.value = self.emitter.select(cond, t_value, e_value) \
                if t_value is not e_value else t_value

        for (_, _, cell), t_state, e_state in zip(before, then_state,
                                                  else_state):
            self._merge_cell(cell, cond, t_state, e_state)

    def _cell_state(self, cell: Cell) -> object:
        if isinstance(cell, ScalarCell):
            return cell.value
        if isinstance(cell, ArrayCell):
            return list(cell.elems)
        assert isinstance(cell, FieldCell)
        return (cell.cached, cell.dirty)

    def _restore_cell(self, cell: Cell, state: object) -> None:
        if isinstance(cell, ScalarCell):
            cell.value = state  # type: ignore[assignment]
        elif isinstance(cell, ArrayCell):
            cell.elems = list(state)  # type: ignore[arg-type]
        elif isinstance(cell, FieldCell):
            cell.cached, cell.dirty = state  # type: ignore[misc]

    def _merge_cell(self, cell: Cell, cond: Value, then_state: object,
                    else_state: object) -> None:
        if isinstance(cell, ScalarCell):
            if then_state is not else_state:
                cell.value = self.emitter.select(
                    cond, then_state, else_state)  # type: ignore[arg-type]
        elif isinstance(cell, FieldCell):
            t_cached, t_dirty = then_state  # type: ignore[misc]
            e_cached, e_dirty = else_state  # type: ignore[misc]
            if t_cached is e_cached and t_dirty == e_dirty:
                return
            # A branch that never touched the field keeps the memory
            # value: materialize a load for it (memory is unchanged
            # during speculation since stores are deferred).
            if t_cached is None:
                t_cached = self.emitter.load(cell.slot, None)
            if e_cached is None:
                e_cached = self.emitter.load(cell.slot, None)
            cell.cached = self.emitter.select(cond, t_cached, e_cached)
            cell.dirty = t_dirty or e_dirty
        elif isinstance(cell, ArrayCell):
            then_elems = then_state
            else_elems = else_state
            assert isinstance(then_elems, list) \
                and isinstance(else_elems, list)
            cell.elems = [
                t if t is e else self.emitter.select(cond, t, e)
                for t, e in zip(then_elems, else_elems)]

    def _pending_return_guard(self, loc: SourceLocation) -> Value | None:
        """Conjunction of "has not returned yet" over all helper frames,
        or None when no frame has a pending dynamic return."""
        guard: Value | None = None
        for frame in self.helper_frames:
            if isinstance(frame.done, Const) and not frame.done.value:
                continue
            not_done = self.emitter.unop("!", frame.done)
            guard = not_done if guard is None else self.emitter.binop(
                "&", guard, not_done, loc, self.source)
        return guard

    def _check_effect_allowed(self, loc: SourceLocation,
                              what: str) -> None:
        if self.speculative:
            raise LoweringError(
                f"{what} under a data-dependent condition cannot be "
                "lowered (SDF requires statically known effects)", loc,
                self.source)
        for frame in self.helper_frames:
            if not (isinstance(frame.done, Const)
                    and not frame.done.value):
                raise LoweringError(
                    f"{what} after a data-dependent return cannot be "
                    "lowered", loc, self.source)

    def _exec_for(self, stmt: ast.ForStmt, env: Env) -> None:
        loop_env = env.child()
        if stmt.init is not None:
            self._exec(stmt.init, loop_env)
        while True:
            if stmt.cond is not None:
                cond = self._eval(stmt.cond, loop_env)
                if not self._static_truth(cond, stmt.loc):
                    return
            assert stmt.body is not None
            try:
                self._exec(stmt.body, loop_env.child())
            except _Break:
                return
            except _Continue:
                pass
            if stmt.step is not None:
                self._exec(stmt.step, loop_env)

    def _exec_while(self, stmt: ast.WhileStmt, env: Env) -> None:
        assert stmt.cond is not None and stmt.body is not None
        while True:
            cond = self._eval(stmt.cond, env)
            if not self._static_truth(cond, stmt.loc):
                return
            try:
                self._exec(stmt.body, env.child())
            except _Break:
                return
            except _Continue:
                continue

    def _exec_do_while(self, stmt: ast.DoWhileStmt, env: Env) -> None:
        assert stmt.cond is not None and stmt.body is not None
        while True:
            try:
                self._exec(stmt.body, env.child())
            except _Break:
                return
            except _Continue:
                pass
            cond = self._eval(stmt.cond, env)
            if not self._static_truth(cond, stmt.loc):
                return

    def _static_truth(self, cond: Value, loc: SourceLocation) -> bool:
        self._step(loc)
        if not isinstance(cond, Const):
            raise LoweringError(
                "loop condition is not compile-time constant; LaminarIR "
                "requires statically bounded loops", loc, self.source)
        return bool(cond.value)

    # -- expressions ---------------------------------------------------------------

    def _eval(self, expr: ast.Expr, env: Env) -> Value:
        if isinstance(expr, ast.IntLit):
            return const_int(expr.value)
        if isinstance(expr, ast.FloatLit):
            return const_float(expr.value)
        if isinstance(expr, ast.BoolLit):
            return const_bool(expr.value)
        if isinstance(expr, ast.Ident):
            return self._eval_ident(expr, env)
        if isinstance(expr, ast.UnaryOp):
            assert expr.operand is not None
            return self.emitter.unop(expr.op, self._eval(expr.operand, env))
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, ast.TernaryOp):
            return self._eval_ternary(expr, env)
        if isinstance(expr, ast.Cast):
            assert expr.target is not None and expr.operand is not None
            assert isinstance(expr.target, ScalarType)
            return self._cast(self._eval(expr.operand, env), expr.target)
        if isinstance(expr, ast.Call):
            return self._eval_call(expr, env)
        if isinstance(expr, ast.Index):
            return self._eval_index(expr, env)
        if isinstance(expr, ast.PeekExpr):
            return self._eval_peek(expr, env)
        if isinstance(expr, ast.PopExpr):
            return self._eval_pop(expr)
        raise LoweringError(f"cannot lower {type(expr).__name__}", expr.loc,
                            self.source)

    def _cast(self, value: Value, target: ScalarType) -> Value:
        if value.ty == target:
            return value
        if isinstance(value, Const):
            if target == INT:
                return const_int(int(value.value))  # type: ignore[arg-type]
            if target == FLOAT:
                return const_float(float(value.value))  # type: ignore
        result = Temp(target)
        self.emitter.emit(CastOp(result=result, operand=value))
        return result

    def _eval_ident(self, expr: ast.Ident, env: Env) -> Value:
        cell = env.lookup(expr.name)
        if cell is None:
            raise LoweringError(f"unknown identifier {expr.name!r}",
                                expr.loc, self.source)
        if isinstance(cell, ScalarCell):
            return cell.value
        if isinstance(cell, FieldCell) and not cell.dims:
            if cell.cached is None:
                cell.cached = self.emitter.load(cell.slot, None)
            return cell.cached
        raise LoweringError(f"array {expr.name!r} used as a scalar",
                            expr.loc, self.source)

    def _eval_binary(self, expr: ast.BinaryOp, env: Env) -> Value:
        assert expr.left is not None and expr.right is not None
        if expr.op in ("&&", "||"):
            left = self._eval(expr.left, env)
            if isinstance(left, Const):
                short = (expr.op == "&&" and not left.value) \
                    or (expr.op == "||" and bool(left.value))
                if short:
                    return const_bool(bool(left.value))
                return self._eval(expr.right, env)
            # Dynamic: evaluate both (the RHS must be pure anyway) and
            # combine; C backends emit && / || whose RHS is re-evaluated,
            # which is safe for pure expressions.
            right = self._eval(expr.right, env)
            return self.emitter.binop("&" if expr.op == "&&" else "|",
                                      self._bool_to_int(left),
                                      self._bool_to_int(right),
                                      expr.loc, self.source)
        left = self._eval(expr.left, env)
        right = self._eval(expr.right, env)
        return self.emitter.binop(expr.op, left, right, expr.loc,
                                  self.source)

    def _bool_to_int(self, value: Value) -> Value:
        # Booleans participate in & / | as 0/1 ints; keep the boolean type
        # so downstream conditions still work.
        return value

    def _eval_ternary(self, expr: ast.TernaryOp, env: Env) -> Value:
        assert expr.cond and expr.then and expr.otherwise
        cond = self._eval(expr.cond, env)
        if isinstance(cond, Const):
            return self._eval(expr.then if cond.value else expr.otherwise,
                              env)
        then = self._eval(expr.then, env)
        otherwise = self._eval(expr.otherwise, env)
        return self.emitter.select(cond, then, otherwise)

    def _eval_call(self, expr: ast.Call, env: Env) -> Value:
        helper = self.helpers.get(expr.name)
        if helper is not None:
            return self._inline_helper(helper, expr, env)
        intrinsic = INTRINSICS.get(expr.name)
        if intrinsic is None:
            raise LoweringError(f"unknown function {expr.name!r}", expr.loc,
                                self.source)
        if not intrinsic.pure:
            self._check_effect_allowed(expr.loc, expr.name)
        args = [self._eval(a, env) for a in expr.args]
        return self.emitter.call(expr.name, args)

    def _inline_helper(self, helper: ast.HelperFunc, expr: ast.Call,
                       env: Env) -> Value:
        if self.call_depth >= _MAX_CALL_DEPTH:
            raise LoweringError(
                f"helper call depth exceeds {_MAX_CALL_DEPTH} "
                "(recursion is not supported)", expr.loc, self.source)
        call_env = self.base_env().child()
        for param, arg in zip(helper.params, expr.args):
            assert isinstance(param.ty, ScalarType)
            value = self.emitter.coerce(self._eval(arg, env), param.ty)
            call_env.define(param.name, ScalarCell(param.ty, value))
        return_ty = helper.return_type \
            if isinstance(helper.return_type, ScalarType) \
            and helper.return_type != VOID else None
        frame = _HelperFrame(return_ty=return_ty,
                             path_depth=len(self.path_conditions))
        self.call_depth += 1
        self.helper_frames.append(frame)
        try:
            assert helper.body is not None
            self._exec_block(helper.body, call_env)
        except _Return as ret:
            if ret.value is None:
                if return_ty is not None:
                    raise LoweringError(
                        f"helper {helper.name!r} returned no value",
                        expr.loc, self.source) from None
                return const_int(0)
            assert return_ty is not None
            return self.emitter.coerce(ret.value, return_ty)
        finally:
            self.call_depth -= 1
            self.helper_frames.pop()
        if return_ty is None:
            return const_int(0)
        if isinstance(frame.done, Const) and not frame.done.value:
            raise LoweringError(
                f"helper {helper.name!r} fell off the end without "
                "returning", expr.loc, self.source)
        # Some path returned dynamically; paths that fall through see the
        # default value (C leaves this undefined; we define it as zero).
        return frame.value

    def _eval_index(self, expr: ast.Index, env: Env) -> Value:
        base, indices = self._collect_indices(expr)
        if not isinstance(base, ast.Ident):
            raise LoweringError("indexed value is not a variable", expr.loc,
                                self.source)
        cell = env.lookup(base.name)
        if cell is None:
            raise LoweringError(f"unknown variable {base.name!r}", base.loc,
                                self.source)
        index_values = [self._eval(i, env) for i in indices]
        if isinstance(cell, ArrayCell):
            linear = self._linear_index(cell.dims, index_values, expr.loc)
            if not isinstance(linear, Const):
                raise LoweringError(
                    "dynamic index into a local array is not supported; "
                    "use a filter field", expr.loc, self.source)
            offset = linear.value
            assert isinstance(offset, int)
            self._check_array_bounds(offset, len(cell.elems), expr.loc)
            return cell.elems[offset]
        if isinstance(cell, FieldCell) and cell.dims:
            linear = self._linear_index(cell.dims, index_values, expr.loc)
            self._check_const_bounds(linear, cell.slot, expr.loc)
            return self.emitter.load(cell.slot, linear)
        raise LoweringError(f"{base.name!r} is not an array", expr.loc,
                            self.source)

    def _linear_index(self, dims: list[int], indices: list[Value],
                      loc: SourceLocation) -> Value:
        if len(indices) != len(dims):
            raise LoweringError(
                f"expected {len(dims)} indices, got {len(indices)}", loc,
                self.source)
        linear: Value = const_int(0)
        for dim, index in zip(dims, indices):
            linear = self.emitter.binop(
                "*", linear, const_int(dim), loc, self.source)
            linear = self.emitter.binop(
                "+", linear, self.emitter.coerce(index, INT), loc,
                self.source)
        return linear

    def _check_array_bounds(self, offset: int, size: int,
                            loc: SourceLocation) -> None:
        if not 0 <= offset < size:
            raise LoweringError(
                f"array index {offset} out of bounds [0, {size})", loc,
                self.source)

    def _check_const_bounds(self, linear: Value, slot: StateSlot,
                            loc: SourceLocation) -> None:
        if isinstance(linear, Const) and slot.size is not None:
            assert isinstance(linear.value, int)
            self._check_array_bounds(linear.value, slot.size, loc)

    def _eval_peek(self, expr: ast.PeekExpr, env: Env) -> Value:
        if self.hooks is None:
            raise LoweringError("peek outside of a firing context",
                                expr.loc, self.source)
        assert expr.offset is not None
        offset = self._eval(expr.offset, env)
        if not isinstance(offset, Const):
            raise LoweringError(
                "peek offset is not compile-time constant; LaminarIR "
                "requires static token indices", expr.loc, self.source)
        assert isinstance(offset.value, int)
        return self.hooks.peek(offset.value, expr.loc)

    def _eval_pop(self, expr: ast.PopExpr) -> Value:
        self._check_effect_allowed(expr.loc, "pop")
        if self.hooks is None:
            raise LoweringError("pop outside of a firing context", expr.loc,
                                self.source)
        value = self.hooks.pop(expr.loc)
        self.pops += 1
        return value

    # -- rate validation ---------------------------------------------------------

    def check_rates(self, expected_pop: int, expected_push: int,
                    what: str) -> None:
        if self.pops != expected_pop:
            raise RateError(
                f"{self.node.name}: {what} popped {self.pops} token(s) but "
                f"declares pop {expected_pop}")
        if self.pushes != expected_push:
            raise RateError(
                f"{self.node.name}: {what} pushed {self.pushes} token(s) "
                f"but declares push {expected_push}")


def _scalar_of(value: object) -> ScalarType:
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return INT
    if isinstance(value, float):
        return FLOAT
    raise TypeError(f"unsupported parameter value {value!r}")


def _const_of(value: object) -> Const:
    ty = _scalar_of(value)
    if ty == INT:
        return const_int(value)  # type: ignore[arg-type]
    if ty == FLOAT:
        return const_float(value)  # type: ignore[arg-type]
    return const_bool(value)  # type: ignore[arg-type]
