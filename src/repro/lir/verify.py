"""LaminarIR well-formedness verifier.

Checks the structural invariants every pass must preserve:

* SSA: each temp is defined at most once, and every use is dominated by
  its definition (sections execute setup → init → steady; carry params
  are defined at the top of steady; carry inits may use setup/init
  values; carry nexts may use anything);
* the three carry lists have equal length and element-wise compatible
  types;
* loads/stores reference registered state slots, with indices only on
  array slots;
* operand types are consistent for typed ops.

The test suite runs the verifier after lowering and after every
optimizer configuration; it is also handy when developing new passes.
"""

from __future__ import annotations

from repro.frontend.types import FLOAT, INT
from repro.lir.ops import (BinOp, CastOp, Const, LoadOp, LoopRegion, Op,
                           SelectOp, StateSlot, StoreOp, Temp, Value)
from repro.lir.program import Program


class VerificationError(AssertionError):
    """Raised when a LaminarIR program violates an invariant."""


def _fail(message: str) -> None:
    raise VerificationError(message)


class _Verifier:
    def __init__(self, program: Program):
        self.program = program
        self.defined: set[int] = set()
        self.slots: dict[str, StateSlot] = {}

    def run(self) -> None:
        for slot in self.program.state_slots:
            if slot.name in self.slots:
                _fail(f"duplicate state slot {slot.name!r}")
            self.slots[slot.name] = slot

        if not (len(self.program.carry_params)
                == len(self.program.carry_inits)
                == len(self.program.carry_nexts)):
            _fail("carry lists have mismatched lengths: "
                  f"{len(self.program.carry_params)} params, "
                  f"{len(self.program.carry_inits)} inits, "
                  f"{len(self.program.carry_nexts)} nexts")

        self._walk(self.program.setup, "setup")
        self._walk(self.program.init, "init")
        for param, init in zip(self.program.carry_params,
                               self.program.carry_inits):
            self._check_use(init, "carry.init")
            if param.ty != init.ty and not (
                    {param.ty, init.ty} == {INT, FLOAT}):
                _fail(f"carry init type mismatch: {param} <- {init}")
        for param in self.program.carry_params:
            self._define(param, "carry parameters")
        self._walk(self.program.steady, "steady")
        for param, nxt in zip(self.program.carry_params,
                              self.program.carry_nexts):
            self._check_use(nxt, "carry.next")

    # -- helpers ------------------------------------------------------------

    def _define(self, temp: Temp, where: str) -> None:
        if temp.id in self.defined:
            _fail(f"{where}: {temp} defined twice")
        self.defined.add(temp.id)

    def _check_use(self, value: Value, where: str) -> None:
        if isinstance(value, Temp) and value.id not in self.defined:
            _fail(f"{where}: use of undefined value {value}")

    def _walk(self, ops: list[Op], section: str) -> None:
        for position, op in enumerate(ops):
            where = f"{section}[{position}] ({op})"
            if isinstance(op, LoopRegion):
                self._check_region(op, where)
                continue
            for operand in op.operands():
                self._check_use(operand, where)
            self._check_op(op, where)
            if op.result is not None:
                self._define(op.result, where)

    def _check_region(self, region: LoopRegion, where: str) -> None:
        if region.trips < 1:
            _fail(f"{where}: loop region with {region.trips} trips")
        if region.index.ty != INT:
            _fail(f"{where}: non-int trip counter {region.index}")
        if region.result is not None:
            _fail(f"{where}: loop region carries a result (outputs must "
                  "flow through scatter slots)")
        if not (len(region.carry_params) == len(region.carry_inits)
                == len(region.carry_nexts)):
            _fail(f"{where}: region carry lists have mismatched lengths")
        for param, init in zip(region.carry_params, region.carry_inits):
            self._check_use(init, f"{where} carry.init")
            if param.ty != init.ty and not (
                    {param.ty, init.ty} == {INT, FLOAT}):
                _fail(f"{where}: region carry init type mismatch: "
                      f"{param} <- {init}")
        # Index, carry params and body results are defined afresh each
        # trip; their ids are scoped to the region.
        scoped: list[Temp] = [region.index] + list(region.carry_params)
        self._define(region.index, where)
        for param in region.carry_params:
            self._define(param, f"{where} carry parameters")
        for position, op in enumerate(region.body):
            inner_where = f"{where} body[{position}] ({op})"
            if isinstance(op, LoopRegion):
                _fail(f"{inner_where}: nested loop regions are not "
                      "supported")
            for operand in op.operands():
                self._check_use(operand, inner_where)
            self._check_op(op, inner_where)
            if op.result is not None:
                self._define(op.result, inner_where)
                scoped.append(op.result)
        for nxt in region.carry_nexts:
            self._check_use(nxt, f"{where} carry.next")
        for param, nxt in zip(region.carry_params, region.carry_nexts):
            if param.ty != nxt.ty and not (
                    {param.ty, nxt.ty} == {INT, FLOAT}):
                _fail(f"{where}: region carry type mismatch: "
                      f"{param} <- {nxt}")
        for temp in scoped:
            self.defined.discard(temp.id)

    def _check_op(self, op: Op, where: str) -> None:
        if isinstance(op, (LoadOp, StoreOp)):
            slot = self.slots.get(op.slot.name)
            if slot is None:
                _fail(f"{where}: unknown state slot {op.slot.name!r}")
            if op.index is not None and not slot.is_array:
                _fail(f"{where}: indexed access to scalar slot "
                      f"{slot.name!r}")
            if op.index is None and slot.is_array:
                _fail(f"{where}: scalar access to array slot "
                      f"{slot.name!r}")
            if op.index is not None and op.index.ty != INT:
                _fail(f"{where}: non-int index")
            if isinstance(op.index, Const):
                assert slot is not None and slot.size is not None
                if not 0 <= op.index.value < slot.size:  # type: ignore
                    _fail(f"{where}: constant index {op.index.value} out "
                          f"of bounds for {slot}")
        elif isinstance(op, BinOp):
            if op.op in ("%", "&", "|", "^", "<<", ">>") \
                    and FLOAT in (op.lhs.ty, op.rhs.ty):
                _fail(f"{where}: float operand on int-only operator")
        elif isinstance(op, SelectOp):
            if op.then.ty != op.otherwise.ty:
                _fail(f"{where}: select branches disagree on type")
        elif isinstance(op, CastOp):
            if op.result is None:
                _fail(f"{where}: cast without result")


def verify(program: Program) -> Program:
    """Raise :class:`VerificationError` if ``program`` is malformed."""
    _Verifier(program).run()
    return program


def verify_index(program: Program, index) -> None:
    """Check an incrementally-maintained index against a fresh rebuild.

    ``index`` is a :class:`repro.lir.analysis.ProgramIndex`.  The check
    compacts the index (so the section lists reflect every erasure) and
    compares its normalized snapshot against one built from scratch —
    any drift means a pass updated the program without telling the
    index, or vice versa.  Used by the optimizer's ``verify_analyses``
    mode and the analysis property tests.
    """
    from repro.lir.analysis import ProgramIndex

    index.compact()
    stamped, missing, malformed = index.provenance_report()
    if malformed:
        _fail(f"provenance integrity: {len(malformed)} op(s) carry a "
              f"malformed provenance entry, e.g. {malformed[0]} "
              f"({malformed[0].prov!r})")
    if stamped and missing:
        _fail(f"provenance integrity: {len(missing)} op(s) lost their "
              f"provenance while {stamped} kept it, e.g. {missing[0]}")
    fresh = ProgramIndex(program)
    mine = index.snapshot()
    theirs = fresh.snapshot()
    if mine == theirs:
        return
    for key in theirs:
        if mine.get(key) != theirs[key]:
            ours, ref = mine.get(key), theirs[key]
            if isinstance(ours, dict) and isinstance(ref, dict):
                missing = sorted(set(ref) - set(ours))
                extra = sorted(set(ours) - set(ref))
                stale = sorted(k for k in set(ours) & set(ref)
                               if ours[k] != ref[k])
                _fail(f"analysis index mismatch in {key!r}: "
                      f"missing={missing} extra={extra} stale={stale}")
            _fail(f"analysis index mismatch in {key!r}")
    _fail("analysis index mismatch")
