"""LaminarIR instruction set.

LaminarIR is a flat, token-named IR: every stream token that exists during
one steady-state iteration is a named value (:class:`Temp`), so dataflow is
explicit def-use instead of hidden behind FIFO read/write pointers.  Filter
state (fields) lives in :class:`StateSlot`\\ s accessed through explicit
``load``/``store`` ops — those are the only memory operations left in the
steady state.

Integer semantics are 32-bit two's complement (both interpreters wrap and
the C backends use ``int32_t``); floats are IEEE doubles everywhere, so
Python and native runs produce identical output streams.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.frontend.types import BOOLEAN, FLOAT, INT, ScalarType

_temp_ids = itertools.count()


@dataclass(frozen=True)
class Value:
    """An SSA operand: either a :class:`Const` or a :class:`Temp`."""

    ty: ScalarType


@dataclass(frozen=True)
class Const(Value):
    value: object = 0

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Temp(Value):
    """A named SSA value (a token or an intermediate result).

    ``id`` is globally unique, so dataclass equality coincides with
    identity — two distinct temps never compare equal even when they share
    a type and hint.
    """

    hint: str = "t"
    id: int = field(default_factory=lambda: next(_temp_ids))

    def __str__(self) -> str:
        return f"%{self.hint}{self.id}"


def const_int(value: int) -> Const:
    return Const(INT, wrap_i32(value))


def const_float(value: float) -> Const:
    return Const(FLOAT, float(value))


def const_bool(value: bool) -> Const:
    return Const(BOOLEAN, bool(value))


def wrap_i32(value: int) -> int:
    """Wrap a Python int to 32-bit two's complement."""
    value &= 0xFFFFFFFF
    return value - 0x100000000 if value >= 0x80000000 else value


@dataclass(frozen=True)
class StateSlot:
    """A mutable memory cell: a filter field or scratch storage.

    ``size`` is ``None`` for scalars; arrays are one-dimensional (the
    lowering linearizes multi-dimensional fields).
    """

    name: str
    ty: ScalarType
    size: int | None = None

    @property
    def is_array(self) -> bool:
        return self.size is not None

    def __str__(self) -> str:
        if self.is_array:
            return f"@{self.name}[{self.size}]"
        return f"@{self.name}"


# -- provenance ------------------------------------------------------------------


PROVENANCE_KINDS = ("filter", "splitter", "joiner")
PROVENANCE_PHASES = ("setup", "init", "steady")


@dataclass(frozen=True)
class Provenance:
    """Where an op came from: the actor and source position that emitted it.

    ``filter`` is the unique flat-graph instance name (e.g.
    ``"FMRadio.LowPass_2"``), ``kind`` the actor class, ``line`` the
    source line of the statement being lowered (0 when unknown) and
    ``phase`` the program section the op was emitted into.  Stamped by the
    lowering (:mod:`repro.lir.symexec`) and preserved by every optimizer
    pass; CSE merges accumulate the provenance sets of deduplicated ops
    onto the survivor, so attribution never loses a contributor.
    """

    filter: str
    kind: str = "filter"
    line: int = 0
    phase: str = "steady"

    def __str__(self) -> str:
        loc = f":{self.line}" if self.line else ""
        return f"{self.filter}{loc}@{self.phase}"


# -- operations -----------------------------------------------------------------


@dataclass(eq=False)
class Op:
    """Base class.  ``result`` is None for pure side-effect ops.

    ``prov`` records which actor(s) this op is attributed to — a tuple
    because CSE can merge ops from different filters; the first entry is
    the *primary* provenance used for attribution totals.  Empty on
    hand-built programs (the verifier's integrity check is
    all-or-nothing per program).
    """

    result: Temp | None
    prov: tuple[Provenance, ...] = ()

    def operands(self) -> Iterator[Value]:
        raise NotImplementedError

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        raise NotImplementedError

    @property
    def has_side_effect(self) -> bool:
        return False

    @property
    def is_pure(self) -> bool:
        """Pure ops may be removed when dead and deduplicated by CSE."""
        return not self.has_side_effect


@dataclass(eq=False)
class BinOp(Op):
    """Arithmetic/comparison/bitwise op.

    ``op`` spellings follow the source language (``+ - * / % & | ^ << >>
    == != < <= > >=``); the operand types (already unified by lowering)
    select int vs float semantics.
    """

    op: str = ""
    lhs: Value = None  # type: ignore[assignment]
    rhs: Value = None  # type: ignore[assignment]

    def operands(self) -> Iterator[Value]:
        yield self.lhs
        yield self.rhs

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.lhs = fn(self.lhs)
        self.rhs = fn(self.rhs)

    def __str__(self) -> str:
        return f"{self.result} = {self.lhs} {self.op} {self.rhs}"


@dataclass(eq=False)
class UnOp(Op):
    op: str = ""  # "-", "!", "~"
    operand: Value = None  # type: ignore[assignment]

    def operands(self) -> Iterator[Value]:
        yield self.operand

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.operand = fn(self.operand)

    def __str__(self) -> str:
        return f"{self.result} = {self.op}{self.operand}"


@dataclass(eq=False)
class CastOp(Op):
    operand: Value = None  # type: ignore[assignment]

    def operands(self) -> Iterator[Value]:
        yield self.operand

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.operand = fn(self.operand)

    def __str__(self) -> str:
        assert self.result is not None
        return f"{self.result} = cast<{self.result.ty}>({self.operand})"


@dataclass(eq=False)
class SelectOp(Op):
    """If-converted conditional: ``result = cond ? then : otherwise``."""

    cond: Value = None  # type: ignore[assignment]
    then: Value = None  # type: ignore[assignment]
    otherwise: Value = None  # type: ignore[assignment]

    def operands(self) -> Iterator[Value]:
        yield self.cond
        yield self.then
        yield self.otherwise

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.cond = fn(self.cond)
        self.then = fn(self.then)
        self.otherwise = fn(self.otherwise)

    def __str__(self) -> str:
        return (f"{self.result} = select {self.cond}, {self.then}, "
                f"{self.otherwise}")


@dataclass(eq=False)
class CallOp(Op):
    """Intrinsic call; impure intrinsics (the RNG) are ordered effects."""

    name: str = ""
    args: list[Value] = field(default_factory=list)
    pure: bool = True

    def operands(self) -> Iterator[Value]:
        yield from self.args

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.args = [fn(a) for a in self.args]

    @property
    def has_side_effect(self) -> bool:
        return not self.pure

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        return f"{self.result} = {self.name}({args})"


@dataclass(eq=False)
class LoadOp(Op):
    """Read a state slot (``index`` is None for scalar slots)."""

    slot: StateSlot = None  # type: ignore[assignment]
    index: Value | None = None

    def operands(self) -> Iterator[Value]:
        if self.index is not None:
            yield self.index

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        if self.index is not None:
            self.index = fn(self.index)

    def __str__(self) -> str:
        idx = f"[{self.index}]" if self.index is not None else ""
        return f"{self.result} = load {self.slot.name}{idx}"


@dataclass(eq=False)
class StoreOp(Op):
    slot: StateSlot = None  # type: ignore[assignment]
    index: Value | None = None
    value: Value = None  # type: ignore[assignment]

    def operands(self) -> Iterator[Value]:
        if self.index is not None:
            yield self.index
        yield self.value

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        if self.index is not None:
            self.index = fn(self.index)
        self.value = fn(self.value)

    @property
    def has_side_effect(self) -> bool:
        return True

    def __str__(self) -> str:
        idx = f"[{self.index}]" if self.index is not None else ""
        return f"store {self.slot.name}{idx}, {self.value}"


@dataclass(eq=False)
class MoveOp(Op):
    """A register-to-register copy.

    ``routing=True`` marks the copies emitted by the splitter/joiner
    *non*-elimination mode (the E7 ablation): they model data movement the
    baseline is obliged to perform, so copy propagation must not remove
    them.  Plain moves (``routing=False``) are propagated away.
    """

    src: Value = None  # type: ignore[assignment]
    routing: bool = False

    def operands(self) -> Iterator[Value]:
        yield self.src

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.src = fn(self.src)

    def __str__(self) -> str:
        return f"{self.result} = move {self.src}"


@dataclass(eq=False)
class LoopRegion(Op):
    """A counted loop over a re-rolled run of identical firings.

    The re-roll pass (:mod:`repro.opt.reroll`) collapses ``trips``
    structurally identical firing instances into one ``body`` executed
    ``trips`` times.  ``index`` is the trip counter (INT, 0-based) defined
    afresh each trip; token accesses inside the body are plain
    base+stride expressions of ``index`` — never modulo — so arrays stay
    scalar-replaceable and autovectorizable.

    Values crossing the region boundary travel one of three ways:

    * *invariant* operands reference outer temps/consts directly;
    * *loop-carried* values rotate through the region-level
      ``carry_params``/``carry_inits``/``carry_nexts`` lists (evaluated
      exactly like the program-level steady carries, once per trip);
    * everything else goes through gather/scatter :class:`StateSlot`
      arrays indexed by ``index`` — the region has no result.

    ``parallel`` marks bodies with no loop-carried values and no ordered
    effects other than disjoint per-trip scatter stores; backends may
    vectorize those (``#pragma omp simd``).
    """

    trips: int = 0
    index: Temp = None  # type: ignore[assignment]
    body: list[Op] = field(default_factory=list)
    carry_params: list[Temp] = field(default_factory=list)
    carry_inits: list[Value] = field(default_factory=list)
    carry_nexts: list[Value] = field(default_factory=list)
    parallel: bool = False

    def inner_temp_ids(self) -> set[int]:
        """Ids defined per-trip: index, carry params, body results."""
        inner = {self.index.id}
        inner.update(p.id for p in self.carry_params)
        for op in self.body:
            if op.result is not None:
                inner.add(op.result.id)
        return inner

    def operands(self) -> Iterator[Value]:
        """All *external* uses: carries plus body references to outer
        values.  Per-trip temps (index, carry params, body results) are
        internal and never yielded."""
        inner = self.inner_temp_ids()
        yield from self.carry_inits
        for op in self.body:
            for value in op.operands():
                if isinstance(value, Temp) and value.id in inner:
                    continue
                yield value
        for value in self.carry_nexts:
            if isinstance(value, Temp) and value.id in inner:
                continue
            yield value

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        inner = self.inner_temp_ids()

        def outer(value: Value) -> Value:
            if isinstance(value, Temp) and value.id in inner:
                return value
            return fn(value)

        self.carry_inits = [outer(v) for v in self.carry_inits]
        for op in self.body:
            op.map_operands(outer)
        self.carry_nexts = [outer(v) for v in self.carry_nexts]

    @property
    def has_side_effect(self) -> bool:
        return True

    def body_slot_stores(self) -> Iterator[StateSlot]:
        for op in self.body:
            if isinstance(op, StoreOp):
                yield op.slot

    def body_slot_loads(self) -> Iterator[StateSlot]:
        for op in self.body:
            if isinstance(op, LoadOp):
                yield op.slot

    def __str__(self) -> str:
        carries = ""
        if self.carry_params:
            pairs = ", ".join(
                f"{p}={i}->{n}" for p, i, n in
                zip(self.carry_params, self.carry_inits, self.carry_nexts))
            carries = f" carries [{pairs}]"
        simd = " simd" if self.parallel else ""
        return (f"loop {self.index} in 0..{self.trips}{simd}{carries} "
                f"{{ {len(self.body)} ops }}")


@dataclass(eq=False)
class PrintOp(Op):
    value: Value = None  # type: ignore[assignment]
    newline: bool = True

    def operands(self) -> Iterator[Value]:
        yield self.value

    def map_operands(self, fn: Callable[[Value], Value]) -> None:
        self.value = fn(self.value)

    @property
    def has_side_effect(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"print {self.value}"
