"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run FILE -n N``
    Execute a program through both routes, verify equivalence, print the
    output stream.
``emit FILE --form lir|c|fifo-c``
    Print the LaminarIR text form or either generated C program.
``graph FILE``
    Print the flat stream graph and schedule summary.
``report NAME``
    Evaluate one suite benchmark and print the paper's metrics for it.
    ``--attribution`` adds the per-filter provenance table (op counts
    before/after optimization, steady share, tokens moved).
``profile TARGET``
    Trace the whole pipeline (a ``.str`` file or suite benchmark name)
    and print the span tree plus collected metrics; ``--json`` emits the
    same machine-readably and ``--chrome-trace PATH`` writes a
    ``chrome://tracing`` / Perfetto trace-event file.  ``--native``
    additionally compiles the laminar C backend with ``REPRO_PROFILE``
    instrumentation and reports per-filter native ns/iteration (outputs
    are checked bit-exact against the uninstrumented build).
``fuzz --seed N --runs K``
    Differential fuzzing: generate random programs and check that every
    execution route agrees (see ``docs/FUZZING.md``).  ``--native`` adds
    both C backends, ``--shrink`` minimizes diverging programs, and
    ``--corpus-dir`` checks reproducers in as regression tests.
``history TARGET``
    List the persistent run ledger's records for a target (every
    ``run``/``report``/``profile``/``fuzz`` invocation appends one under
    ``.repro/ledger/``; override with ``REPRO_LEDGER_DIR``).
``compare RUN_A RUN_B [--threshold F] [--metric M]``
    Diff two ledger records; exits 1 when the primary metric regressed
    past the threshold, 2 on a bad reference or missing ledger.
``cache stats|gc|clear``
    Manage the persistent native-artifact cache under ``.repro/cache/``
    (override with ``REPRO_CACHE_DIR``; size cap via
    ``REPRO_CACHE_MAX_BYTES``).  Every native build is content-addressed
    by (spec, options, backend, compiler, codegen version) and reused
    across processes — see ``docs/SERVING.md``.
``serve [--socket PATH | --port N]``
    The compile-once daemon: a threaded HTTP API (``POST /compile``,
    ``POST /run``, ``GET /metrics``, ``GET /cache/stats``,
    ``GET /debug/requests``) over the artifact cache, with single-flight
    compilation dedup, per-request admission control (``--limits``,
    ``--max-iterations``), per-request trace contexts with W3C
    ``traceparent`` propagation, and a structured JSONL access log
    (``--access-log``/``--no-access-log``).
``tail [LOG] [--follow] [--route SUBSTR] [--min-ms MS]``
    Render the daemon's access log (or an ``--event-log`` JSONL file)
    as aligned per-request lines — request id, route, status, latency,
    cache hit/dedup/degraded flags — highlighting slow requests;
    ``--follow`` streams new records live.
``chaos [--seed N] [--requests N] [--kill-rate R] [--duration S]``
    Seeded chaos campaign: stand up a real daemon, hammer it with
    concurrent clients while pool workers are killed/hung (and any
    extra ``--inject`` sites fire), then assert zero bit-wrong
    responses, ≥ 99% eventual success, the daemon never restarting,
    and zero leaked worker processes or temp dirs.  Exit 1 when any
    invariant fails.
``metrics-serve [TARGET]``
    Serve the metrics registry as Prometheus/OpenMetrics text on a
    stdlib HTTP endpoint (``/metrics``, ``/healthz``); ``--self-check``
    scrapes itself once and validates the exposition.
``list``
    List the benchmark suite.

``run``, ``report``, ``profile`` and ``fuzz`` accept ``--event-log
PATH`` to stream structured telemetry (events, closed spans, a final
metrics snapshot) to a JSONL file; ``profile --native`` accepts
``--heartbeat MS`` / ``--stall-timeout S`` for live native heartbeats
and the stall watchdog (see ``docs/OBSERVABILITY.md``).

``run`` and ``report`` also accept ``--trace`` to print the span tree
to stderr after the normal output.  ``run``, ``emit``, ``report`` and
``profile`` accept ``--opt-pipeline cp,promote,fold,cse,dce`` (an
explicit pass ordering) and ``--opt-max-rounds N`` (the fixpoint round
cap); see ``docs/OPTIMIZER.md``.

Robustness flags (see ``docs/ROBUSTNESS.md``): every compiling command
accepts ``--limits ops=200000,tokens=4096,solver=200,seconds=30``
(resource guardrails; merged over ``REPRO_LIMITS``), ``--inject
cc-timeout:0.3,malformed-stdout:1`` with ``--inject-seed N``
(deterministic fault injection), and ``--keep-artifacts`` (keep
``repro_native_*`` build dirs even on success).  ``run`` and ``report``
take ``--native`` to also build and verify/time the laminar C backend;
all native paths degrade gracefully to interpreter results when the
toolchain fails.

Exit codes: 0 success (including graceful degradation), 1 compile
error / divergence / generic failure, 2 usage error, 3 resource limit
exhausted, 4 native toolchain failure.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

from repro.api import (CompiledStream, check_equivalence, compile_file)
from repro.backend.runner import NativeToolchainError, set_keep_artifacts
from repro.evaluation import evaluate_stream, format_table
from repro.faults import (FaultPlan, ResourceExhausted, ResourceLimits,
                          active_limits, inject, use_limits)
from repro.frontend.errors import CompileError
from repro.lir import LoweringOptions
from repro.machine import PLATFORMS
from repro.obs import bus as obs_bus
from repro.obs import export as obs_export
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.sinks import JsonlEventSink, MetricsServer, to_openmetrics
from repro.opt import OptOptions, parse_pipeline
from repro.suite import BENCHMARKS, benchmark_names, load_benchmark


def _options(args: argparse.Namespace) -> tuple[LoweringOptions,
                                                OptOptions]:
    lowering = LoweringOptions(
        eliminate_splitjoin=not getattr(args, "no_elim", False))
    opt = OptOptions.none() if getattr(args, "no_opt", False) \
        else OptOptions()
    pipeline = getattr(args, "opt_pipeline", None)
    if pipeline is not None:
        # An explicit ordering wins over the boolean switches (including
        # --no-opt): exactly these passes run, in this order.
        opt.pipeline = pipeline
    max_rounds = getattr(args, "opt_max_rounds", None)
    if max_rounds is not None:
        opt.max_rounds = max_rounds
    reroll = getattr(args, "reroll", None)
    if reroll is not None:
        opt.reroll = reroll
    min_repeat = getattr(args, "reroll_min_repeat", None)
    if min_repeat is not None:
        opt.reroll_min_repeat = min_repeat
    return lowering, opt


def _pipeline_spec(spec: str) -> tuple[str, ...]:
    """argparse type for --opt-pipeline: validate pass names up front."""
    try:
        return parse_pipeline(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_opt_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--opt-pipeline", type=_pipeline_spec, metavar="PASSES",
        help="comma-separated pass ordering, e.g. "
             "'cp,promote,fold,cse,dce' (overrides the default pipeline)")
    parser.add_argument(
        "--opt-max-rounds", type=int, metavar="N",
        help="cap the optimizer's fixpoint rounds (default 64)")
    parser.add_argument(
        "--reroll", dest="reroll", action="store_true", default=None,
        help="re-roll repeated firing runs into counted loop regions "
             "(the default; see docs/OPTIMIZER.md)")
    parser.add_argument(
        "--no-reroll", dest="reroll", action="store_false",
        help="keep the steady state fully unrolled")
    parser.add_argument(
        "--reroll-min-repeat", type=int, metavar="N",
        help="minimum consecutive firings of one filter before a run "
             "is re-rolled (default 4, floor 2)")


def _limits_spec(spec: str) -> ResourceLimits:
    """argparse type for --limits: validate the spec up front."""
    try:
        return ResourceLimits.parse(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _inject_spec(spec: str) -> FaultPlan:
    """argparse type for --inject: validate site names and rates."""
    try:
        return FaultPlan.parse(spec)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_robustness_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--limits", type=_limits_spec, metavar="SPEC",
        help="resource guardrails, e.g. 'ops=200000,tokens=4096,"
             "solver=200,seconds=30' (merged over REPRO_LIMITS; "
             "see docs/ROBUSTNESS.md)")
    parser.add_argument(
        "--inject", type=_inject_spec, metavar="PLAN",
        help="deterministic fault injection, e.g. "
             "'cc-timeout:0.3,malformed-stdout:1' (site[:rate] list)")
    parser.add_argument(
        "--inject-seed", default="0", metavar="SEED",
        help="seed for the --inject fault plan (default 0)")
    parser.add_argument(
        "--keep-artifacts", action="store_true",
        help="keep repro_native_* build dirs even on success")


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--event-log", metavar="PATH",
        help="append structured telemetry (events, closed spans, a final "
             "metrics snapshot) to PATH as JSONL")


def _pipeline_name(args: argparse.Namespace) -> str | None:
    pipeline = getattr(args, "opt_pipeline", None)
    if pipeline:
        return ",".join(pipeline)
    if getattr(args, "no_opt", False):
        return "none"
    return "default"


def _ledger_note(kind: str, target: str, args: argparse.Namespace, *,
                 spec_hash: str | None = None, backend: str | None = None,
                 checksum: int | None = None, seconds: float | None = None,
                 metrics: dict | None = None) -> dict | None:
    """Best-effort ledger append; a full disk must not fail the command."""
    flags = {}
    for key in ("no_opt", "no_elim", "native", "attribution", "shrink"):
        if getattr(args, key, False):
            flags[key] = True
    body = obs_ledger.make_body(
        kind, target, spec_hash=spec_hash, backend=backend,
        pipeline=_pipeline_name(args),
        iterations=getattr(args, "iterations", None), flags=flags,
        checksum=f"{checksum:016x}" if checksum is not None else None,
        seconds=seconds, metrics=metrics)
    try:
        envelope = obs_ledger.append(body)
    except OSError as error:
        print(f"warning: could not append to run ledger: {error}",
              file=sys.stderr)
        return None
    obs_bus.emit_event("ledger.append", record_id=envelope["record_id"],
                       seq=envelope["seq"], kind=kind, target=target)
    return envelope


def _install_robustness(args: argparse.Namespace,
                        stack: contextlib.ExitStack) -> None:
    """Install the ambient limits / fault plan / artifact policy.

    ``--limits`` merges over ``REPRO_LIMITS`` (CLI keys win); ``--inject``
    wins over ``REPRO_INJECT``/``REPRO_INJECT_SEED``.  May raise
    ``ValueError`` on a malformed environment spec (the CLI flags are
    validated by argparse already).
    """
    limits = getattr(args, "limits", None)
    if limits is not None:
        stack.enter_context(use_limits(active_limits().merged(limits)))
    plan = getattr(args, "inject", None)
    if plan is not None:
        plan.reseed(getattr(args, "inject_seed", "0"))
    else:
        spec = os.environ.get("REPRO_INJECT")
        if spec:
            plan = FaultPlan.parse(
                spec, seed=os.environ.get("REPRO_INJECT_SEED", "0"))
    if plan is not None:
        stack.enter_context(inject(plan))
    if getattr(args, "keep_artifacts", False):
        set_keep_artifacts(True)
        stack.callback(set_keep_artifacts, None)


def _notice_nonconvergence(stream: CompiledStream,
                           lowering: LoweringOptions | None = None,
                           opt: OptOptions | None = None) -> None:
    """One-line stderr notice when the optimizer gave up before a fixpoint.

    ``opt.pipeline`` already warns and bumps ``opt.nonconvergent``, but
    warnings are easy to miss in CLI output — surface it explicitly.
    """
    stats = stream.lower(lowering, opt).opt_stats
    if not stats.converged:
        print(f"notice: optimizer did not reach a fixpoint on "
              f"{stream.name!r} ({stats.fixpoint_rounds} rounds); output "
              "is correct but possibly under-optimized", file=sys.stderr)


def cmd_run(args: argparse.Namespace) -> int:
    started = time.monotonic()
    stream = compile_file(args.file)
    lowering, opt = _options(args)
    report = check_equivalence(stream, iterations=args.iterations,
                               lowering=lowering, opt=opt)
    _notice_nonconvergence(stream, lowering, opt)
    if not report.matches:
        print("error: FIFO and LaminarIR outputs diverge", file=sys.stderr)
        return 1
    if not args.quiet:
        for value in report.laminar.outputs:
            print(value)
    fifo = report.fifo.steady_counters
    laminar = report.laminar.steady_counters
    print(f"# {len(report.laminar.outputs)} outputs over "
          f"{args.iterations} iterations; checksum "
          f"{report.checksum:016x}", file=sys.stderr)
    print(f"# steady ops/iter: fifo={fifo.total_ops / args.iterations:.0f} "
          f"laminar={laminar.total_ops / args.iterations:.0f}; "
          f"memory: {fifo.memory_accesses / args.iterations:.0f} -> "
          f"{laminar.memory_accesses / args.iterations:.0f}",
          file=sys.stderr)
    native_seconds = None
    backend = "interp"
    if getattr(args, "native", False):
        from repro.faults import degrade
        attempt = degrade.native_or_fallback(
            stream.laminar_c(lowering, opt), args.iterations,
            name=stream.name, where="run --native",
            log=lambda message: print(message, file=sys.stderr))
        if not attempt.degraded:
            assert attempt.run is not None
            if attempt.run.checksum != report.checksum:
                print(f"error: native checksum "
                      f"{attempt.run.checksum:016x} != interpreter "
                      f"{report.checksum:016x}", file=sys.stderr)
                return 1
            print(f"# native: checksum verified, "
                  f"{attempt.run.seconds:.3f}s", file=sys.stderr)
            native_seconds = attempt.run.seconds
            backend = "laminar-c"
    _ledger_note(
        "run", Path(args.file).stem, args,
        spec_hash=stream.source_hash, backend=backend,
        checksum=report.checksum,
        seconds=native_seconds if native_seconds is not None
        else time.monotonic() - started,
        metrics={
            "outputs": len(report.laminar.outputs),
            "fifo_ops_per_iter": fifo.total_ops / args.iterations,
            "laminar_ops_per_iter": laminar.total_ops / args.iterations,
            "fifo_mem_per_iter": fifo.memory_accesses / args.iterations,
            "laminar_mem_per_iter":
                laminar.memory_accesses / args.iterations,
            **({"native_seconds": native_seconds}
               if native_seconds is not None else {}),
        })
    return 0


def cmd_emit(args: argparse.Namespace) -> int:
    stream = compile_file(args.file)
    lowering, opt = _options(args)
    if args.form == "lir":
        print(stream.lower(lowering, opt).program.dump())
    elif args.form == "c":
        print(stream.laminar_c(lowering, opt))
    elif args.form == "fifo-c":
        print(stream.fifo_c())
    return 0


def _print_graph(stream: CompiledStream) -> None:
    print(f"stream graph of {stream.name}:")
    reps = stream.schedule.reps
    for vertex in stream.graph.topological_order():
        kind = vertex.kind.replace("Vertex", "").lower()
        print(f"  [{kind:8s}] {vertex.name}  x{reps[vertex]}/iter")
    print("channels:")
    for channel in stream.graph.channels:
        extra = f" (+{len(channel.initial)} initial)" if channel.initial \
            else ""
        print(f"  {channel.name}: {channel.src.name} -> "
              f"{channel.dst.name} : {channel.ty}{extra}")
    stats = stream.stats()
    print(f"schedule: {stats['init_firings']} init firings, "
          f"{stats['steady_firings']} steady firings")


def cmd_graph(args: argparse.Namespace) -> int:
    stream = compile_file(args.file)
    if args.dot:
        from repro.graph import to_dot
        print(to_dot(stream.graph, stream.schedule.reps))
    else:
        _print_graph(stream)
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    started = time.monotonic()
    if args.name not in BENCHMARKS:
        print(f"unknown benchmark {args.name!r}; see `python -m repro "
              "list`", file=sys.stderr)
        return 1
    stream = load_benchmark(args.name)
    lowering, opt = _options(args)
    record = evaluate_stream(args.name, stream,
                             iterations=args.iterations,
                             lowering=lowering, opt=opt,
                             native=getattr(args, "native", False))
    _notice_nonconvergence(stream, lowering, opt)
    print(f"benchmark: {args.name} — {BENCHMARKS[args.name].description}")
    print(f"outputs match: {record.outputs_match}")
    if getattr(args, "native", False):
        if record.degraded:
            reason = (record.degraded_reason or "").splitlines()
            print("notice: native toolchain unavailable "
                  f"({reason[0] if reason else 'unknown'}); reporting "
                  "interpreter-only results", file=sys.stderr)
        elif record.native_seconds is not None:
            print(f"native run time: {record.native_seconds:.3f}s "
                  f"({args.iterations} iterations)")
    print(f"data communication: -{record.comm.reduction * 100:.1f}%")
    print(f"memory accesses:    -{record.memory_reduction * 100:.1f}% "
          "(counted)")
    rows = []
    for model in PLATFORMS.values():
        rows.append([model.name,
                     f"{record.speedup(model):.2f}x",
                     f"-{record.energy_saving(model) * 100:.1f}%",
                     str(record.spills.get(model.name, 0))])
    print(format_table(["platform (modeled)", "speedup", "energy",
                        "spilled values"], rows))
    stats = record.opt_stats
    if stats is not None and stats.pass_stats:
        print()
        convergence = "converged" if stats.converged else "gave up"
        print(format_table(
            ["optimizer pass", "runs", "changes"],
            [[stat.name, str(stat.runs), str(stat.changes)]
             for stat in stats.pass_stats],
            title=f"optimizer: {stats.fixpoint_rounds} fixpoint round(s), "
                  f"{convergence}, {stats.analysis_rebuilds} analysis "
                  f"build(s), {stats.optimize_seconds * 1000:.1f} ms"))
    if getattr(args, "attribution", False):
        print()
        print(_attribution_table(stream, lowering, opt))
    metrics: dict[str, object] = {
        "comm_reduction": record.comm.reduction,
        "memory_reduction": record.memory_reduction,
        "outputs_match": record.outputs_match,
    }
    for model in PLATFORMS.values():
        metrics[f"speedup.{model.name}"] = record.speedup(model)
    if record.native_seconds is not None:
        metrics["native_seconds"] = record.native_seconds
    _ledger_note(
        "report", args.name, args, spec_hash=stream.source_hash,
        backend="laminar-c" if record.native_seconds is not None
        else "interp",
        seconds=record.native_seconds if record.native_seconds is not None
        else time.monotonic() - started,
        metrics=metrics)
    return 0


def _attribution_table(stream: CompiledStream, lowering: LoweringOptions,
                       opt: OptOptions) -> str:
    """Per-filter provenance attribution, before vs after optimization."""
    from repro.lir import attribute_program, steady_share

    before_rows = attribute_program(
        stream.lower(lowering, OptOptions.none()).program)
    after_rows = attribute_program(stream.lower(lowering, opt).program)
    before_by = {row.name: row for row in before_rows}
    share = steady_share(after_rows)
    rows = []
    for row in after_rows:
        before = before_by.get(row.name)
        rows.append([row.name, row.kind,
                     str(before.total_ops if before else 0),
                     str(row.total_ops),
                     f"{share.get(row.name, 0.0) * 100:.1f}%",
                     str(row.tokens_per_iter),
                     str(row.firings_per_iter)])
    rows.append(["(total)", "",
                 str(sum(row.total_ops for row in before_rows)),
                 str(sum(row.total_ops for row in after_rows)),
                 "100.0%",
                 str(sum(row.tokens_per_iter for row in after_rows)),
                 str(sum(row.firings_per_iter for row in after_rows))])
    return format_table(
        ["filter", "kind", "ops before", "ops after", "% steady",
         "tokens/iter", "firings/iter"], rows,
        title="per-filter attribution (op provenance, steady share of "
              "the optimized program)")


def _load_target(target: str) -> CompiledStream | None:
    """Compile a ``.str`` file path or a suite benchmark by name."""
    path = Path(target)
    if path.is_file():
        return compile_file(path)
    if target in BENCHMARKS:
        return load_benchmark(target)
    return None


def cmd_profile(args: argparse.Namespace) -> int:
    started = time.monotonic()
    was_enabled = obs_trace.is_enabled()
    obs_trace.enable()
    try:
        stream = _load_target(args.target)
        if stream is None:
            print(f"error: {args.target!r} is neither a .str file nor a "
                  "suite benchmark; see `python -m repro list`",
                  file=sys.stderr)
            return 1
        lowering, opt = _options(args)
        report = check_equivalence(stream, iterations=args.iterations,
                                   lowering=lowering, opt=opt)
        native_table = None
        if getattr(args, "native", False):
            native_table, native_code = _native_profile(
                stream, lowering, opt, args.iterations,
                heartbeat_ms=args.heartbeat,
                stall_timeout=args.stall_timeout)
            if native_code != 0:
                return native_code
        roots = obs_trace.get_trace()
        metric_values = obs_metrics.registry().as_dict()
        if args.chrome_trace:
            obs_export.write_chrome_trace(roots, args.chrome_trace,
                                          metrics=metric_values)
            print(f"wrote Chrome trace-event JSON to {args.chrome_trace} "
                  "(load in chrome://tracing or ui.perfetto.dev)",
                  file=sys.stderr)
        if args.json:
            print(json.dumps(obs_export.to_json(roots, metric_values),
                             indent=2))
        elif not args.chrome_trace:
            print(obs_export.format_tree(
                roots, metric_values,
                title=f"profile of {stream.name} "
                      f"({args.iterations} iterations)"))
        if native_table is not None and not args.json:
            print()
            print(native_table)
        if not report.matches:
            print("error: FIFO and LaminarIR outputs diverge",
                  file=sys.stderr)
            return 1
        _ledger_note("profile", stream.name, args,
                     spec_hash=stream.source_hash,
                     backend="laminar-c" if native_table is not None
                     else "interp",
                     checksum=report.checksum,
                     seconds=time.monotonic() - started,
                     metrics=metric_values)
        return 0
    finally:
        if not was_enabled:
            obs_trace.disable()


def _native_profile(stream: CompiledStream, lowering: LoweringOptions,
                    opt: OptOptions, iterations: int,
                    heartbeat_ms: int | None = None,
                    stall_timeout: float | None = None
                    ) -> tuple[str | None, int]:
    """Run the laminar C backend plain and instrumented.

    Compiles the program twice — uninstrumented and with
    ``REPRO_PROFILE`` — asserts the outputs are bit-exact, publishes the
    parsed per-filter timings into the metrics registry (so they reach
    the text/JSON/Chrome-trace exporters), and renders the per-filter
    native table.  ``heartbeat_ms``/``stall_timeout`` arm the
    instrumented run's live progress side channel and stall watchdog
    (``--heartbeat`` / ``--stall-timeout``).  Returns ``(table, 0)`` on
    success, ``(None, 0)`` when the toolchain failed (graceful
    degradation: the interpreter profile still prints), and ``(None, 1)``
    when the instrumented build diverged or violated the profile
    protocol.  A failure of the generated *binary* propagates as
    :class:`NativeToolchainError`.
    """
    from repro.backend.laminar_c import generate_laminar_c
    from repro.backend.runner import NativeCompileError, compile_and_run
    from repro.faults import degrade

    program = stream.lower(lowering, opt).program
    try:
        # Instrumented build first: it is the one with the heartbeat
        # side channel, so an injected/real hang is caught by the live
        # stall watchdog rather than the unwatched plain run.
        profiled = compile_and_run(
            generate_laminar_c(program, profile=True), iterations,
            name="laminar_profiled", heartbeat_ms=heartbeat_ms,
            stall_timeout=stall_timeout)
        plain = compile_and_run(generate_laminar_c(program), iterations,
                                name="laminar")
    except NativeCompileError as error:
        degrade.record_fallback("profile --native", str(error))
        print(f"notice: native toolchain unavailable "
              f"({str(error).splitlines()[0]}); printing interpreter "
              "profile only", file=sys.stderr)
        return None, 0
    if plain.checksum != profiled.checksum:
        print(f"error: instrumented binary diverged from plain build "
              f"(checksum {profiled.checksum:016x} != "
              f"{plain.checksum:016x})", file=sys.stderr)
        return None, 1
    if not profiled.profile:
        print("error: instrumented binary emitted no profile-json line",
              file=sys.stderr)
        return None, 1
    if profiled.heartbeats:
        print(f"# native: {len(profiled.heartbeats)} heartbeat(s) "
              f"(REPRO_HEARTBEAT_MS={heartbeat_ms})", file=sys.stderr)
    iters = max(profiled.profile.get("iterations", iterations), 1)
    filters = profiled.profile.get("filters", [])
    total_ns = sum(entry["ns"] for entry in filters) or 1.0
    iter_hist = obs_metrics.histogram("native.steady.iter_ns")
    for bucket, count in enumerate(profiled.profile.get("hist", [])):
        # Bucket b holds iterations in [2^b, 2^(b+1)) ns; replay the
        # midpoint so the histogram summary approximates the run.
        for _ in range(count):
            iter_hist.observe(1.5 * (1 << bucket))
    rows = []
    for entry in filters:
        name = entry["name"]
        ns_per_iter = entry["ns"] / iters
        ops_per_iter = entry["ops"] / iters
        obs_metrics.gauge(
            f"native.filter.{name}.ns_per_iter").set(ns_per_iter)
        obs_metrics.gauge(
            f"native.filter.{name}.ops_per_iter").set(ops_per_iter)
        tokens = program.filter_tokens.get(name, 0)
        rows.append([name, f"{ns_per_iter:.1f}", f"{ops_per_iter:.0f}",
                     f"{entry['calls'] / iters:.0f}", str(tokens),
                     f"{entry['ns'] / total_ns * 100:.1f}%"])
    return format_table(
        ["filter", "ns/iter", "ops/iter", "calls/iter", "tokens/iter",
         "% time"], rows,
        title=f"native per-filter profile ({iters} iterations, "
              f"checksum {profiled.checksum:016x}, bit-exact vs "
              "uninstrumented)"), 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    from repro.fuzz import fuzz_campaign

    started = time.monotonic()
    corpus = Path(args.corpus_dir) if args.corpus_dir else None
    result = fuzz_campaign(
        seed=args.seed, runs=args.runs, iterations=args.iterations,
        native=args.native, shrink=args.shrink, corpus_dir=corpus,
        log=lambda message: print(message, file=sys.stderr))
    for finding in result.findings:
        print(f"seed {finding.seed}: {finding.divergence}")
        if finding.shrunk_source is not None:
            print(finding.shrunk_source)
    print(f"# fuzz: {result.programs} programs from seed {args.seed}, "
          f"{result.skipped} skipped, {result.degraded} degraded, "
          f"{len(result.findings)} divergence(s), "
          f"{len(result.features)} generator features covered",
          file=sys.stderr)
    _ledger_note("fuzz", f"fuzz-seed-{args.seed}", args,
                 seconds=time.monotonic() - started,
                 metrics={"programs": result.programs,
                          "skipped": result.skipped,
                          "degraded": result.degraded,
                          "findings": len(result.findings),
                          "features": len(result.features)})
    return 1 if result.findings else 0


def cmd_history(args: argparse.Namespace) -> int:
    records = obs_ledger.load_records(target=args.target)
    if not records:
        raise obs_ledger.LedgerError(
            f"no ledger records for target {args.target!r} in "
            f"{obs_ledger.ledger_dir()}")
    if args.limit:
        records = records[-args.limit:]
    if args.json:
        print(json.dumps(records, indent=2))
    else:
        print(f"ledger history for {args.target!r} "
              f"({len(records)} record(s), newest first):")
        print(obs_ledger.format_history(records))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    before = obs_ledger.resolve(args.run_a)
    after = obs_ledger.resolve(args.run_b)
    result = obs_ledger.compare(before, after, metric=args.metric,
                                threshold=args.threshold)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
    else:
        print(obs_ledger.format_comparison(result))
    return 1 if result.regression else 0


def cmd_metrics_serve(args: argparse.Namespace) -> int:
    from urllib.request import urlopen

    obs_trace.enable()
    if args.target:
        stream = _load_target(args.target)
        if stream is None:
            print(f"error: {args.target!r} is neither a .str file nor a "
                  "suite benchmark; see `python -m repro list`",
                  file=sys.stderr)
            return 1
        lowering, opt = _options(args)
        check_equivalence(stream, iterations=args.iterations,
                          lowering=lowering, opt=opt)
    # At least one family must exist even with no target warm-up.
    obs_metrics.registry().gauge("obs.up").set(1)
    if args.print_only:
        sys.stdout.write(to_openmetrics())
        return 0
    server = MetricsServer(args.host, args.port).start()
    print(f"serving OpenMetrics at {server.url} (and /healthz)",
          file=sys.stderr)
    try:
        if args.self_check:
            with urlopen(server.url) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type", "")
            sys.stdout.write(body)
            if "repro_" not in body \
                    or not body.rstrip().endswith("# EOF"):
                print("error: exposition lacks a repro_ family or the "
                      "# EOF terminator", file=sys.stderr)
                return 1
            print(f"# self-check ok: {len(body)} bytes, content-type "
                  f"{content_type}", file=sys.stderr)
            return 0
        while True:  # pragma: no cover - interactive serve loop
            time.sleep(3600)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0
    finally:
        server.stop()


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import ArtifactCache

    cache = ArtifactCache(Path(args.dir) if args.dir else None)
    if args.action == "stats":
        stats = cache.stats()
        if args.json:
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        cap = stats["max_bytes"]
        print(f"root:        {stats['root']}")
        print(f"entries:     {stats['entries']}")
        print(f"bytes:       {stats['bytes']}"
              + (f" / {cap}" if cap else ""))
        print(f"quarantined: {stats['quarantined']}")
        for backend in sorted(stats["backends"]):
            print(f"backend {backend}: {stats['backends'][backend]}")
        for name in sorted(stats["counters"]):
            print(f"{name}: {stats['counters'][name]}")
        return 0
    if args.action == "gc":
        result = cache.gc(args.max_bytes)
        print(f"# cache gc: evicted {result['evicted']} entr"
              f"{'y' if result['evicted'] == 1 else 'ies'}, "
              f"{result['entries']} left ({result['bytes']} bytes)",
              file=sys.stderr)
        return 0
    removed = cache.clear()
    print(f"# cache clear: removed {removed} entr"
          f"{'y' if removed == 1 else 'ies'} from {cache.root}",
          file=sys.stderr)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.cache import ArtifactCache
    from repro.serve import ACCESS_LOG_ENV, DEFAULT_ACCESS_LOG, ServeServer

    cache = ArtifactCache(Path(args.cache_dir) if args.cache_dir else None)
    limits = getattr(args, "limits", None)
    if limits is not None:
        limits = active_limits().merged(limits)
    elif active_limits() != ResourceLimits():
        limits = active_limits()
    if args.no_access_log:
        access_log = None
    else:
        access_log = args.access_log or os.environ.get(ACCESS_LOG_ENV)
        if access_log is None and not args.self_check:
            access_log = DEFAULT_ACCESS_LOG
    server = ServeServer(
        host=args.host, port=args.port,
        socket_path=args.socket, cache=cache, limits=limits,
        max_iterations=args.max_iterations,
        access_log=access_log, workers=args.workers).start()
    print(f"serving compile/run API at {server.url} "
          "(POST /compile, POST /run, GET /metrics, GET /cache/stats, "
          "GET /debug/requests; see docs/SERVING.md)", file=sys.stderr)
    if access_log is not None:
        print(f"access log: {access_log} "
              "(tail it with `python -m repro tail --follow`)",
              file=sys.stderr)
    try:
        if args.self_check:
            from repro.serve import ServeClient
            client = (ServeClient(socket_path=args.socket)
                      if args.socket else
                      ServeClient(host=server.host, port=server.port))
            if not client.wait_ready():
                print("error: daemon did not answer /healthz",
                      file=sys.stderr)
                return 1
            response = client.run(benchmark="autocor", iterations=4)
            if not response.ok:
                print(f"error: self-check run failed: {response.text}",
                      file=sys.stderr)
                return 1
            body = response.json
            print(f"# self-check ok: {body['stream']} checksum "
                  f"{body['checksum']} via {body['route']}",
                  file=sys.stderr)
            return 0
        # Serve until SIGTERM/SIGINT, then drain gracefully: stop
        # accepting, let in-flight requests finish inside the deadline,
        # flush the access log / pool / socket.  Exit 0 only on a full
        # drain so supervisors can tell clean restarts from abandoned
        # requests.
        stop_signal = threading.Event()
        received: dict[str, int] = {}

        def _on_signal(signum, _frame):  # pragma: no cover - signals
            received["signum"] = signum
            stop_signal.set()

        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, _on_signal)
        stop_signal.wait()
        name = signal.Signals(received.get("signum",
                                           signal.SIGTERM)).name
        print(f"# {name} received: draining "
              f"(inflight={server.inflight()}, "
              f"timeout={args.drain_timeout:g}s)", file=sys.stderr)
        drained = server.drain(args.drain_timeout)
        print(f"# drain {'complete' if drained else 'timed out'}",
              file=sys.stderr)
        return 0 if drained else 1
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0
    finally:
        server.stop()


def _tail_record(raw: str) -> dict | None:
    """Normalize one JSONL line to an access-style record, or ``None``.

    Understands both the daemon's access log (``type: access``) and the
    ``serve.request`` events of a ``--event-log`` JSONL file.  Raises
    ``json.JSONDecodeError`` on an unparseable line (a torn write) so
    the caller can warn instead of silently dropping it.
    """
    record = json.loads(raw)
    if not isinstance(record, dict):
        return None
    if record.get("type") == "access":
        return record
    if record.get("type") == "event" \
            and record.get("name") == "serve.request":
        attrs = record.get("attrs", {})
        return {"wall_time": record.get("wall_time", 0.0),
                "request_id": attrs.get("request_id", "-"),
                "method": "-",
                "route": attrs.get("route", "-"),
                "status": attrs.get("status", "-"),
                "backend": attrs.get("backend"),
                "duration_ms": attrs.get("duration_ms", 0.0)}
    return None


def _render_tail_line(record: dict, use_color: bool,
                      slow_ms: float) -> str:
    wall = float(record.get("wall_time") or 0.0)
    stamp = time.strftime("%H:%M:%S", time.localtime(wall))
    stamp += f".{int(wall % 1 * 1000):03d}"
    ms = float(record.get("duration_ms") or 0.0)
    flags = []
    hit = record.get("cache_hit")
    if hit is True:
        flags.append("hit")
    elif hit is False:
        flags.append("miss")
    if record.get("dedup"):
        flags.append("dedup")
    if record.get("degraded"):
        flags.append("degraded")
    line = (f"{stamp}  {str(record.get('request_id') or '-'):<16}  "
            f"{str(record.get('method') or '-'):<4} "
            f"{str(record.get('route') or '-'):<15} "
            f"{str(record.get('status') or '-'):>3}  "
            f"{ms:>8.1f}ms  "
            f"{','.join(flags) or '-':<10} "
            f"{str(record.get('run_route') or '-'):<7} "
            f"{record.get('stream') or ''}").rstrip()
    if use_color and ms >= slow_ms:
        return f"\x1b[31m{line}\x1b[0m"
    return line


def cmd_tail(args: argparse.Namespace) -> int:
    path = Path(args.log)
    if not path.exists() and not args.follow:
        print(f"error: no such log: {path} (start the daemon with an "
              "access log, or pass a --event-log file)", file=sys.stderr)
        return 2
    use_color = args.color == "always" or \
        (args.color == "auto" and sys.stdout.isatty())
    offset = 0
    pending = ""
    shown = 0

    def drain() -> None:
        nonlocal offset, pending, shown
        if not path.exists():
            return
        try:
            with path.open("r", encoding="utf-8") as handle:
                handle.seek(offset)
                pending += handle.read()
                offset = handle.tell()
        except OSError:
            return
        while "\n" in pending:
            raw, pending = pending.split("\n", 1)
            if not raw.strip():
                continue
            try:
                record = _tail_record(raw)
            except json.JSONDecodeError:
                # A torn write (daemon crashed mid-append): warn and
                # keep going rather than dying on the whole log.
                print(f"# warning: skipping unparseable log line "
                      f"({raw[:60]!r}…)", file=sys.stderr)
                continue
            if record is None:
                continue
            if args.route and args.route not in str(record.get("route")):
                continue
            if float(record.get("duration_ms") or 0.0) < args.min_ms:
                continue
            print(_render_tail_line(record, use_color, args.slow_ms),
                  flush=True)
            shown += 1

    drain()
    if not args.follow:
        if pending.strip():
            print("# warning: log ends with a truncated record "
                  "(crash mid-write?); ignoring the partial line",
                  file=sys.stderr)
        if shown == 0:
            print("# no matching records", file=sys.stderr)
        return 0
    try:
        while True:  # pragma: no cover - interactive follow loop
            time.sleep(0.25)
            drain()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.serve import chaos

    if args.extra_inject:
        try:
            FaultPlan.parse(args.extra_inject)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    def progress(report):
        print(f"# chaos: {report.issued}/{args.requests} issued, "
              f"{report.succeeded} ok, {report.failed} failed, "
              f"{report.retries} retries", file=sys.stderr)

    report = chaos.run_campaign(
        seed=args.seed, requests=args.requests, clients=args.clients,
        kill_rate=args.kill_rate, hang_rate=args.hang_rate,
        duration=args.duration, iterations=args.iterations,
        workers=args.workers, route=args.route,
        extra_inject=args.extra_inject,
        progress=None if args.json else progress)
    summary = report.to_dict()
    if args.json:
        print(json.dumps(summary, indent=1, sort_keys=True))
    else:
        print(f"# chaos campaign: seed={report.seed} "
              f"requests={report.issued} wall={report.wall_seconds:.1f}s")
        print(f"#   succeeded={report.succeeded} failed={report.failed} "
              f"bit_wrong={report.bit_wrong} retries={report.retries} "
              f"success_rate={report.success_rate:.4f}")
        print(f"#   injected={summary['injected']} "
              f"pool={summary['pool']}")
        print(f"#   orphan_workers={report.orphan_workers} "
              f"leaked_dirs={report.leaked_dirs} "
              f"daemon_alive={report.daemon_alive_after}")
        print(f"# verdict: {'OK' if report.ok else 'FAILED'}")
    return 0 if report.ok else 1


def cmd_list(_args: argparse.Namespace) -> int:
    rows = []
    for name in benchmark_names(include_extras=True):
        info = BENCHMARKS[name]
        suite = "extra" if info.extra else "paper"
        rows.append([name, suite, info.domain, info.description])
    print(format_table(["benchmark", "suite", "domain", "description"],
                       rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LaminarIR: compile-time queues for structured "
                    "streams (PLDI 2015 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute a program via both routes")
    run.add_argument("file")
    run.add_argument("-n", "--iterations", type=int, default=10)
    run.add_argument("--quiet", action="store_true",
                     help="suppress the output stream")
    run.add_argument("--no-elim", action="store_true",
                     help="disable splitter/joiner elimination")
    run.add_argument("--no-opt", action="store_true",
                     help="disable the optimizer")
    _add_opt_arguments(run)
    run.add_argument("--native", action="store_true",
                     help="also build and run the laminar C backend, "
                          "verifying its checksum (degrades gracefully "
                          "when no toolchain is available)")
    run.add_argument("--trace", action="store_true",
                     help="print the pipeline span tree to stderr")
    _add_robustness_arguments(run)
    _add_telemetry_arguments(run)
    run.set_defaults(func=cmd_run)

    emit = sub.add_parser("emit", help="print lowered/generated code")
    emit.add_argument("file")
    emit.add_argument("--form", choices=("lir", "c", "fifo-c"),
                      default="lir")
    emit.add_argument("--no-elim", action="store_true")
    emit.add_argument("--no-opt", action="store_true")
    _add_opt_arguments(emit)
    _add_robustness_arguments(emit)
    emit.set_defaults(func=cmd_emit)

    graph = sub.add_parser("graph", help="print the flat stream graph")
    graph.add_argument("file")
    graph.add_argument("--dot", action="store_true",
                       help="emit Graphviz DOT instead of text")
    graph.set_defaults(func=cmd_graph)

    report = sub.add_parser("report",
                            help="paper metrics for a suite benchmark")
    report.add_argument("name")
    report.add_argument("-n", "--iterations", type=int, default=4)
    report.add_argument("--attribution", action="store_true",
                        help="print the per-filter provenance attribution "
                             "table (ops before/after opt, steady share, "
                             "tokens moved)")
    _add_opt_arguments(report)
    report.add_argument("--native", action="store_true",
                        help="also build and time the laminar C backend "
                             "(degrades gracefully when no toolchain is "
                             "available)")
    report.add_argument("--trace", action="store_true",
                        help="print the pipeline span tree to stderr")
    _add_robustness_arguments(report)
    _add_telemetry_arguments(report)
    report.set_defaults(func=cmd_report)

    profile = sub.add_parser(
        "profile",
        help="trace the pipeline end to end and report spans + metrics")
    profile.add_argument("target",
                         help="a .str file or a suite benchmark name")
    profile.add_argument("-n", "--iterations", type=int, default=4)
    profile.add_argument("--json", action="store_true",
                         help="emit the span tree and metrics as JSON")
    profile.add_argument("--chrome-trace", metavar="PATH",
                         help="write chrome://tracing trace-event JSON "
                              "to PATH")
    profile.add_argument("--native", action="store_true",
                         help="also compile the laminar C backend with "
                              "REPRO_PROFILE instrumentation and report "
                              "per-filter native ns/iteration")
    profile.add_argument("--heartbeat", type=int, default=None,
                         metavar="MS",
                         help="with --native: make the instrumented "
                              "binary emit heartbeat-json progress "
                              "lines every MS milliseconds (0 = every "
                              "iteration)")
    profile.add_argument("--stall-timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="with --native: kill the instrumented "
                              "binary and record a native.stall event "
                              "when no heartbeat arrives for SECONDS")
    profile.add_argument("--no-elim", action="store_true")
    profile.add_argument("--no-opt", action="store_true")
    _add_opt_arguments(profile)
    _add_robustness_arguments(profile)
    _add_telemetry_arguments(profile)
    profile.set_defaults(func=cmd_profile)

    fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing across every execution route")
    fuzz.add_argument("--seed", default="0",
                      help="master seed; run i derives seed '<seed>:<i>'")
    fuzz.add_argument("-k", "--runs", type=int, default=100,
                      help="number of random programs to generate")
    fuzz.add_argument("-n", "--iterations", type=int, default=4)
    fuzz.add_argument("--native", action="store_true",
                      help="also run both C backends (needs a compiler)")
    fuzz.add_argument("--shrink", action="store_true",
                      help="delta-minimize every diverging program")
    fuzz.add_argument("--corpus-dir", metavar="DIR",
                      help="write shrunk reproducers into DIR "
                           "(e.g. tests/fuzz_corpus)")
    fuzz.add_argument("--trace", action="store_true",
                      help="print the pipeline span tree to stderr")
    _add_robustness_arguments(fuzz)
    _add_telemetry_arguments(fuzz)
    fuzz.set_defaults(func=cmd_fuzz)

    history = sub.add_parser(
        "history",
        help="list the run ledger's records for one target")
    history.add_argument("target",
                         help="a ledger target (benchmark name, file "
                              "stem, or fuzz-seed-N)")
    history.add_argument("--limit", type=int, default=0, metavar="N",
                         help="show only the newest N records")
    history.add_argument("--json", action="store_true",
                         help="emit the raw ledger envelopes as JSON")
    history.set_defaults(func=cmd_history)

    compare = sub.add_parser(
        "compare",
        help="diff two ledger records; exit 1 on a perf regression")
    compare.add_argument("run_a",
                         help="baseline record: a record-id prefix, a "
                              "target name (its latest record), or "
                              "TARGET~N (N-th before latest)")
    compare.add_argument("run_b", help="candidate record, same forms")
    compare.add_argument("--threshold", type=float, default=0.25,
                         metavar="FRACTION",
                         help="allowed fractional growth of --metric "
                              "before flagging a regression "
                              "(default 0.25 = +25%%)")
    compare.add_argument("--metric", default="seconds",
                         help="the primary metric to gate on (default "
                              "'seconds'; any recorded metric name "
                              "works)")
    compare.add_argument("--json", action="store_true",
                         help="emit the comparison as JSON")
    compare.set_defaults(func=cmd_compare)

    serve = sub.add_parser(
        "metrics-serve",
        help="serve the metrics registry as OpenMetrics text over HTTP")
    serve.add_argument("target", nargs="?",
                       help="optional .str file or benchmark to run "
                            "first, populating the registry")
    serve.add_argument("-n", "--iterations", type=int, default=4)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9464,
                       help="port to bind (default 9464; 0 = ephemeral)")
    serve.add_argument("--self-check", action="store_true",
                       help="serve, scrape /metrics once over HTTP, "
                            "print the exposition, validate it, exit")
    serve.add_argument("--print-only", action="store_true",
                       help="print the OpenMetrics exposition to stdout "
                            "without binding a socket")
    _add_opt_arguments(serve)
    serve.set_defaults(func=cmd_metrics_serve)

    cache = sub.add_parser(
        "cache",
        help="manage the persistent native-artifact cache")
    cache.add_argument("action", choices=("stats", "gc", "clear"),
                       help="stats: store statistics; gc: evict "
                            "LRU entries past the size cap; clear: "
                            "remove everything")
    cache.add_argument("--json", action="store_true",
                       help="with stats: machine-readable JSON instead "
                            "of the human-readable summary")
    cache.add_argument("--dir", metavar="PATH",
                       help="cache root (default .repro/cache, or "
                            "REPRO_CACHE_DIR)")
    cache.add_argument("--max-bytes", type=int, default=None,
                       metavar="N",
                       help="with gc: evict down to N bytes (default: "
                            "the configured cap)")
    cache.set_defaults(func=cmd_cache)

    daemon = sub.add_parser(
        "serve",
        help="run the compile-once daemon: compile/run over HTTP or a "
             "Unix socket, backed by the artifact cache")
    daemon.add_argument("--host", default="127.0.0.1")
    daemon.add_argument("--port", type=int, default=9465,
                        help="TCP port to bind (default 9465; 0 = "
                             "ephemeral; ignored with --socket)")
    daemon.add_argument("--socket", metavar="PATH", default=None,
                        help="serve on a Unix domain socket at PATH "
                             "instead of TCP")
    daemon.add_argument("--cache-dir", metavar="PATH",
                        help="cache root (default .repro/cache, or "
                             "REPRO_CACHE_DIR)")
    daemon.add_argument("--limits", type=_limits_spec, metavar="SPEC",
                        help="admission-control resource limits applied "
                             "to every request (merged over "
                             "REPRO_LIMITS; requests may tighten, "
                             "e.g. 'ops=200000,seconds=30')")
    daemon.add_argument("--max-iterations", type=int, default=1_000_000,
                        metavar="N",
                        help="reject /run requests asking for more than "
                             "N iterations (default 1000000)")
    daemon.add_argument("--access-log", metavar="PATH", default=None,
                        help="append one JSONL record per request to "
                             "PATH (default .repro/serve-access.jsonl, "
                             "or REPRO_ACCESS_LOG; off in --self-check "
                             "unless set explicitly)")
    daemon.add_argument("--no-access-log", action="store_true",
                        help="disable the access log")
    daemon.add_argument("--self-check", action="store_true",
                        help="serve, round-trip one /run request "
                             "through the daemon, print its checksum, "
                             "exit")
    daemon.add_argument("--workers", type=int, default=2, metavar="N",
                        help="process-isolated execution workers "
                             "(default 2; 0 runs executions in the "
                             "daemon process, pre-PR-10 behaviour)")
    daemon.add_argument("--drain-timeout", type=float, default=30.0,
                        metavar="SECONDS",
                        help="on SIGTERM/SIGINT, wait up to SECONDS "
                             "for in-flight requests before exiting "
                             "(default 30; exit 0 only on full drain)")
    daemon.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos campaign against a live daemon: concurrent "
             "clients + injected worker kills/hangs; asserts bit-exact "
             "responses, bounded availability loss, zero leaks")
    chaos.add_argument("--seed", type=int, default=0,
                       help="campaign seed (fault-plan RNG streams and "
                            "request mix; default 0)")
    chaos.add_argument("--requests", type=int, default=200, metavar="N",
                       help="logical requests to issue (default 200)")
    chaos.add_argument("--clients", type=int, default=8, metavar="N",
                       help="concurrent client threads (default 8)")
    chaos.add_argument("--kill-rate", type=float, default=0.1,
                       metavar="RATE",
                       help="worker-kill probability per dispatch "
                            "(default 0.1)")
    chaos.add_argument("--hang-rate", type=float, default=0.0,
                       metavar="RATE",
                       help="worker-hang probability per dispatch "
                            "(default 0)")
    chaos.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="stop issuing new requests after SECONDS "
                            "(default: run all --requests)")
    chaos.add_argument("--iterations", type=int, default=8, metavar="N",
                       help="iterations per /run request (default 8)")
    chaos.add_argument("--workers", type=int, default=2, metavar="N",
                       help="daemon worker-pool size (default 2)")
    chaos.add_argument("--route", choices=("auto", "native", "interp"),
                       default="auto",
                       help="execution route requested (default auto)")
    chaos.add_argument("--inject", dest="extra_inject", metavar="SPEC",
                       default="",
                       help="extra fault sites layered on the worker "
                            "sites, e.g. 'cc-crash:0.2,bin-garbage:0.1'")
    chaos.add_argument("--json", action="store_true",
                       help="emit the report as JSON on stdout")
    chaos.set_defaults(func=cmd_chaos)

    tail = sub.add_parser(
        "tail",
        help="render a serve access log (or --event-log JSONL) as "
             "aligned per-request lines")
    tail.add_argument("log", nargs="?",
                      default=str(Path(".repro") / "serve-access.jsonl"),
                      help="JSONL log to read (default "
                           ".repro/serve-access.jsonl)")
    tail.add_argument("-f", "--follow", action="store_true",
                      help="keep the log open and print records as "
                           "they arrive (waits for the file to appear)")
    tail.add_argument("--route", metavar="SUBSTR",
                      help="only requests whose route contains SUBSTR")
    tail.add_argument("--min-ms", type=float, default=0.0, metavar="MS",
                      help="only requests at least MS milliseconds slow")
    tail.add_argument("--slow-ms", type=float, default=500.0,
                      metavar="MS",
                      help="highlight requests at least MS milliseconds "
                           "slow (default 500)")
    tail.add_argument("--color", choices=("auto", "always", "never"),
                      default="auto",
                      help="when to colorize slow requests "
                           "(default auto: only on a tty)")
    tail.set_defaults(func=cmd_tail)

    lst = sub.add_parser("list", help="list the benchmark suite")
    lst.set_defaults(func=cmd_list)
    return parser


def _print_trace(file) -> None:
    print(obs_export.format_tree(obs_trace.get_trace(),
                                 obs_metrics.registry().as_dict(),
                                 title="pipeline trace (--trace)"),
          file=file)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    want_trace = getattr(args, "trace", False)
    was_enabled = obs_trace.is_enabled()
    if want_trace:
        obs_trace.enable()
    event_sink = None
    event_log = getattr(args, "event_log", None)
    if event_log:
        event_sink = obs_bus.get_bus().add_sink(
            JsonlEventSink(Path(event_log)))
    try:
        with contextlib.ExitStack() as stack:
            try:
                _install_robustness(args, stack)
            except ValueError as error:
                # A malformed REPRO_LIMITS/REPRO_INJECT environment spec
                # (the CLI flags are validated by argparse, which exits 2
                # on its own — keep the codes aligned).
                print(f"error: {error}", file=sys.stderr)
                return 2
            code = args.func(args)
        if want_trace:
            _print_trace(sys.stderr)
        return code
    except ResourceExhausted as error:
        # One line, structured: resource, limit, actual, provenance.
        print(f"error: resource exhausted: {error.message}",
              file=sys.stderr)
        return 3
    except obs_ledger.LedgerError as error:
        # A bad record reference / missing ledger is a usage-class
        # error, distinct from "regression found" (exit 1).
        print(f"error: {error}", file=sys.stderr)
        return 2
    except CompileError as error:
        print(error.format(), file=sys.stderr)
        return 1
    except NativeToolchainError as error:
        print(f"error: native {error.stage} failure: {error}",
              file=sys.stderr)
        return 4
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout closed early (e.g. piped into `head`); exit quietly.
        return 0
    finally:
        if event_sink is not None:
            bus = obs_bus.get_bus()
            bus.flush(obs_metrics.registry().as_dict())
            bus.remove_sink(event_sink)
            event_sink.close()
        if want_trace and not was_enabled:
            obs_trace.disable()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
