"""Per-benchmark evaluation records — the numbers behind every table/figure.

``evaluate_benchmark`` runs both interpreter routes on one suite benchmark
and packages the paper's metrics: data communication (E2), modeled
per-platform speedup (E3), memory accesses (E4), modeled energy (E5),
plus structural stats (Table 1).  The experiment drivers under
``benchmarks/`` format these records into the paper-style rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import CompiledStream
from repro.interp.counters import Counters, RunResult
from repro.lir import LoweringOptions
from repro.machine.metrics import CommunicationReport
from repro.machine.platforms import CostModel, PLATFORMS, estimate_spills
from repro.obs import trace
from repro.opt import OptOptions, OptStats
from repro.suite import load_benchmark


@dataclass
class BenchmarkEvaluation:
    name: str
    stats: dict[str, int]
    comm: CommunicationReport
    iterations: int
    fifo: RunResult
    laminar: RunResult
    outputs_match: bool
    spills: dict[str, int] = field(default_factory=dict)
    # Optimizer statistics of the lowered program (per-pass counts,
    # fixpoint rounds, optimize wall time) — the report command's table.
    opt_stats: OptStats | None = None
    # Measured native wall-clock seconds (``evaluate_stream(native=True)``)
    # or ``None`` when native was off or the toolchain failed; in the
    # latter case ``degraded`` is set and ``degraded_reason`` says why
    # (see docs/ROBUSTNESS.md).
    native_seconds: float | None = None
    degraded: bool = False
    degraded_reason: str | None = None

    # -- derived metrics ------------------------------------------------------

    @property
    def fifo_counters(self) -> Counters:
        return self.fifo.steady_counters

    @property
    def laminar_counters(self) -> Counters:
        return self.laminar.steady_counters

    @property
    def memory_reduction(self) -> float:
        """Fraction of baseline loads+stores eliminated (experiment E4)."""
        baseline = self.fifo_counters.memory_accesses
        if baseline == 0:
            return 0.0
        return 1.0 - self.laminar_counters.memory_accesses / baseline

    def memory_accesses_modeled(self, model: CostModel,
                                laminar: bool) -> float:
        """Loads+stores including modeled spill traffic (per steady run)."""
        counters = self.laminar_counters if laminar else self.fifo_counters
        spills = self.spills.get(model.name, 0) * self.iterations \
            if laminar else 0
        return counters.memory_accesses + 2 * spills

    def memory_reduction_modeled(self, model: CostModel) -> float:
        """E4's headline number: reduction after charging register spills."""
        baseline = self.memory_accesses_modeled(model, laminar=False)
        if baseline == 0:
            return 0.0
        return 1.0 - self.memory_accesses_modeled(model,
                                                  laminar=True) / baseline

    def cycles(self, model: CostModel, laminar: bool) -> float:
        counters = self.laminar_counters if laminar else self.fifo_counters
        spills = self.spills.get(model.name, 0) * self.iterations \
            if laminar else 0
        return model.cycles(counters, spills)

    def speedup(self, model: CostModel) -> float:
        """Modeled speedup of LaminarIR over the FIFO baseline (E3)."""
        laminar_cycles = self.cycles(model, laminar=True)
        if laminar_cycles == 0:
            return float("inf")
        return self.cycles(model, laminar=False) / laminar_cycles

    def energy(self, model: CostModel, laminar: bool) -> float:
        counters = self.laminar_counters if laminar else self.fifo_counters
        spills = self.spills.get(model.name, 0) * self.iterations \
            if laminar else 0
        return model.energy_pj(counters, spills)

    def energy_saving(self, model: CostModel) -> float:
        """Fraction of baseline energy saved (experiment E5)."""
        baseline = self.energy(model, laminar=False)
        if baseline == 0:
            return 0.0
        return 1.0 - self.energy(model, laminar=True) / baseline


def evaluate_stream(name: str, stream: CompiledStream, iterations: int = 8,
                    lowering: LoweringOptions | None = None,
                    opt: OptOptions | None = None,
                    native: bool = False,
                    stall_timeout: float | None = None) -> BenchmarkEvaluation:
    """Evaluate an already-compiled stream program.

    ``native=True`` additionally builds and times the LaminarIR C backend;
    when the toolchain fails the record degrades gracefully to
    interpreter-only results (``degraded``/``degraded_reason`` set,
    ``native_seconds`` left ``None``) instead of raising.
    ``stall_timeout`` arms the run watchdog; the plain binary emits no
    heartbeats, so here it acts as a *soft wall-clock deadline* (a
    stall, with its ``native.stall`` event, rather than the blunt hard
    timeout).  The live heartbeat path is ``profile --native``.
    """
    with trace.span("evaluate", benchmark=name, iterations=iterations):
        fifo = stream.run_fifo(iterations)
        laminar = stream.run_laminar(iterations, lowering, opt)
        lowered = stream.lower(lowering, opt)
        with trace.span("evaluate.spills"):
            spills = {model.name: estimate_spills(lowered.program, model)
                      for model in PLATFORMS.values()}
        evaluation = BenchmarkEvaluation(
            name=name, stats=stream.stats(), comm=stream.communication(),
            iterations=iterations, fifo=fifo, laminar=laminar,
            outputs_match=fifo.outputs == laminar.outputs, spills=spills,
            opt_stats=lowered.opt_stats)
        if native:
            from repro.faults import degrade
            attempt = degrade.native_or_fallback(
                stream.laminar_c(lowering, opt), iterations,
                name=name, where=f"evaluate[{name}]",
                stall_timeout=stall_timeout)
            if attempt.degraded:
                evaluation.degraded = True
                evaluation.degraded_reason = attempt.reason
            elif attempt.run is not None:
                evaluation.native_seconds = attempt.run.seconds
        return evaluation


def evaluate_benchmark(name: str, iterations: int = 8,
                       lowering: LoweringOptions | None = None,
                       opt: OptOptions | None = None,
                       static_input: bool = False) -> BenchmarkEvaluation:
    """Load one suite benchmark and evaluate it."""
    stream = load_benchmark(name, static_input=static_input)
    return evaluate_stream(name, stream, iterations, lowering, opt)


def geometric_mean(values: list[float]) -> float:
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def format_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    """Render an aligned plain-text table for the experiment drivers."""
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
