"""Compile-once helpers: build-or-reuse native artifacts via the cache.

The glue between :class:`repro.api.CompiledStream`, the C backends, the
hardened native runner and the persistent :class:`ArtifactCache`:

* :func:`native_key` — the full cache-key component dict for one
  (stream, backend, options, toolchain) combination, plus its digest;
* :func:`build_native` — unconditionally generate + compile and publish
  the artifact bundle (generated C, optimized LIR dump, schedule stats,
  binary);
* :func:`ensure_native` — lookup-or-build;
* :func:`run_native_cached` — execute the (possibly cached) binary.

The serve daemon layers in-flight deduplication on top of these; the
CLI and benchmarks call them directly.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from pathlib import Path

from repro.backend import fifo_c as fifo_backend
from repro.backend import laminar_c as laminar_backend
from repro.backend import runner
from repro.cache.store import ArtifactCache, CacheEntry, artifact_key
from repro.obs import bus as obs_bus
from repro.obs import trace

BACKENDS = ("laminar-c", "fifo-c")

CODE_NAME = "prog.c"
BINARY_NAME = "prog"
LIR_NAME = "lir.txt"
SCHEDULE_NAME = "schedule.json"


def codegen_fingerprint(backend: str) -> str:
    if backend == "laminar-c":
        return laminar_backend.codegen_fingerprint()
    if backend == "fifo-c":
        return fifo_backend.codegen_fingerprint()
    raise ValueError(f"unknown backend {backend!r}; expected one of "
                     f"{', '.join(BACKENDS)}")


def native_key(stream, *, backend: str = "laminar-c", lowering=None,
               opt=None,
               cflags: tuple[str, ...] = runner.DEFAULT_CFLAGS
               ) -> tuple[str, dict]:
    """``(key digest, components)`` for one native artifact.

    The components are exactly what the module docstring of
    :mod:`repro.cache.store` lists: spec hash, normalized options key,
    backend, compiler fingerprint + flags, codegen fingerprint.
    """
    from repro.api import options_fingerprint

    components = {
        "spec_sha256": stream.source_hash,
        "options": options_fingerprint(lowering, opt),
        "backend": backend,
        "compiler": runner.compiler_fingerprint() or "none",
        "cflags": " ".join(cflags),
        "codegen": codegen_fingerprint(backend),
    }
    return artifact_key(components), components


def build_native(stream, key: str, components: dict, *,
                 backend: str = "laminar-c", lowering=None, opt=None,
                 cflags: tuple[str, ...] = runner.DEFAULT_CFLAGS,
                 cache: ArtifactCache | None = None) -> CacheEntry:
    """Generate, compile and publish one artifact bundle (a cache miss).

    Raises :class:`repro.backend.runner.NativeCompileError` when the
    toolchain is missing or rejects the code — nothing is published in
    that case.
    """
    cache = cache or ArtifactCache()
    with trace.span("cache.build", key=key[:12], backend=backend,
                    stream=stream.name) as span:
        started = time.monotonic()
        lir_dump = None
        if backend == "laminar-c":
            lowered = stream.lower(lowering, opt)
            code = laminar_backend.generate_laminar_c(lowered.program)
            lir_dump = lowered.program.dump()
        else:
            code = stream.fifo_c()
        workdir = Path(tempfile.mkdtemp(prefix="repro_cache_build_"))
        try:
            binary = runner.compile_c(code, workdir=workdir,
                                      cflags=cflags, name=BINARY_NAME)
            entry = cache.publish(
                key, components,
                artifacts={CODE_NAME: code, BINARY_NAME: binary,
                           LIR_NAME: lir_dump,
                           SCHEDULE_NAME: json.dumps(stream.stats(),
                                                     sort_keys=True)},
                meta={"stream": stream.name, "binary": BINARY_NAME,
                      "build_seconds": time.monotonic() - started})
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        span.annotate(build_seconds=entry.meta.get("build_seconds"))
    obs_bus.emit_event("cache.build", key=key, backend=backend,
                       stream=stream.name,
                       seconds=entry.meta.get("build_seconds"))
    return entry


def ensure_native(stream, *, backend: str = "laminar-c", lowering=None,
                  opt=None,
                  cflags: tuple[str, ...] = runner.DEFAULT_CFLAGS,
                  cache: ArtifactCache | None = None
                  ) -> tuple[CacheEntry, bool]:
    """Lookup-or-build; returns ``(entry, hit)``."""
    cache = cache or ArtifactCache()
    key, components = native_key(stream, backend=backend,
                                 lowering=lowering, opt=opt, cflags=cflags)
    entry = cache.lookup(key)
    if entry is not None:
        return entry, True
    return build_native(stream, key, components, backend=backend,
                        lowering=lowering, opt=opt, cflags=cflags,
                        cache=cache), False


def run_native_cached(stream, iterations: int, *,
                      backend: str = "laminar-c", lowering=None, opt=None,
                      print_outputs: bool = False,
                      cflags: tuple[str, ...] = runner.DEFAULT_CFLAGS,
                      cache: ArtifactCache | None = None,
                      run_timeout: float = runner.DEFAULT_RUN_TIMEOUT
                      ) -> tuple[runner.NativeRun, bool]:
    """Run a (possibly cached) native binary; returns ``(run, hit)``.

    The hot path touches no compiler and no codegen: one cache lookup,
    then :func:`repro.backend.runner.run_binary` on the prebuilt binary.
    """
    entry, hit = ensure_native(stream, backend=backend, lowering=lowering,
                               opt=opt, cflags=cflags, cache=cache)
    run = runner.run_binary(entry.binary, iterations,
                            print_outputs=print_outputs,
                            timeout=run_timeout)
    return run, hit
