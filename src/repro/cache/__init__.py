"""Compile-once: the persistent, content-addressed artifact cache.

See :mod:`repro.cache.store` for the on-disk layout and key anatomy,
:mod:`repro.cache.service` for the build-or-reuse helpers, and
``docs/SERVING.md`` for the full story (the serve daemon is its main
consumer).
"""

from repro.cache.store import (ArtifactCache, CacheEntry, CacheError,
                               artifact_key, cache_dir, default_max_bytes)
from repro.cache.service import (BACKENDS, build_native,
                                 codegen_fingerprint, ensure_native,
                                 native_key, run_native_cached)

__all__ = [
    "ArtifactCache", "BACKENDS", "CacheEntry", "CacheError",
    "artifact_key", "build_native", "cache_dir", "codegen_fingerprint",
    "default_max_bytes", "ensure_native", "native_key",
    "run_native_cached",
]
