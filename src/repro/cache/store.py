"""The persistent, content-addressed artifact cache.

LaminarIR's premise is that queue reasoning is paid **once at compile
time** — this module makes "once" mean once per *machine*, not once per
process.  Every native build (scheduled program dump, optimized LIR,
generated C, compiled binary) is published under
``.repro/cache/`` (override with ``REPRO_CACHE_DIR``), keyed by the
sha256 of a canonical component dict::

    {
      "spec_sha256":  sha256 of the source text,
      "options":      normalized lowering+opt options key
                      (repro.api.options_fingerprint),
      "backend":      "laminar-c" | "fifo-c",
      "compiler":     "<cc path> <cc --version line>",
      "cflags":       "-O3 -fwrapv -std=gnu11",
      "codegen":      backend codegen_fingerprint(),
    }

Layout::

    <root>/objects/<key[:2]>/<key>/   one entry: meta.json + artifacts
    <root>/tmp/                       in-progress publishes
    <root>/quarantine/                corrupted entries, moved aside

Entries are immutable once published; publish is atomic (write into
``tmp/``, then one ``rename`` into place), so readers never observe a
half-written entry and concurrent publishers of the same key are
harmless — the loser discards its copy.  A byte-size cap (default 512
MiB, ``REPRO_CACHE_MAX_BYTES``) is enforced at publish time by evicting
least-recently-used entries; ``python -m repro cache {stats,gc,clear}``
manages the store from the command line.  Hits, misses, evictions,
publishes and quarantines are counted in the metrics registry
(``cache.*`` — scrapeable via the serve daemon's ``/metrics``) and
surfaced as telemetry-bus events.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass
from pathlib import Path

from repro.obs import bus as obs_bus
from repro.obs import metrics as obs_metrics

CACHE_ENV = "REPRO_CACHE_DIR"
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"
DEFAULT_CACHE_DIR = Path(".repro") / "cache"
DEFAULT_MAX_BYTES = 512 * 1024 * 1024

META_NAME = "meta.json"
LAST_USED_NAME = ".last_used"


class CacheError(Exception):
    """A cache operation failed in a way the caller should hear about."""


def cache_dir() -> Path:
    """The active cache root (not necessarily existing yet)."""
    override = os.environ.get(CACHE_ENV)
    if override:
        return Path(override)
    return DEFAULT_CACHE_DIR


def default_max_bytes() -> int:
    override = os.environ.get(CACHE_MAX_BYTES_ENV)
    if override:
        try:
            return max(0, int(override))
        except ValueError:
            pass
    return DEFAULT_MAX_BYTES


def canonical_components(components: dict) -> str:
    return json.dumps(components, sort_keys=True, separators=(",", ":"))


def artifact_key(components: dict) -> str:
    """sha256 over the canonical JSON of the key components."""
    return hashlib.sha256(
        canonical_components(components).encode("utf-8")).hexdigest()


@dataclass
class CacheEntry:
    """One published cache entry: its key, directory and metadata."""

    key: str
    path: Path
    meta: dict

    def artifact(self, name: str) -> Path:
        return self.path / name

    @property
    def binary(self) -> Path | None:
        name = self.meta.get("binary")
        return self.path / name if name else None

    @property
    def components(self) -> dict:
        return self.meta.get("components", {})


class ArtifactCache:
    """Filesystem-backed artifact store with LRU eviction.

    Thread- and process-safe by construction: entries are immutable,
    publish is one atomic rename, and eviction only removes whole entry
    directories.  All methods are cheap enough for per-request use —
    ``lookup`` is two stats and one small JSON read.
    """

    def __init__(self, root: Path | None = None,
                 max_bytes: int | None = None):
        self.root = Path(root) if root is not None else cache_dir()
        self.max_bytes = max_bytes if max_bytes is not None \
            else default_max_bytes()

    # -- paths ----------------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def tmp_dir(self) -> Path:
        return self.root / "tmp"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def entry_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / key

    # -- lookup ---------------------------------------------------------------

    def lookup(self, key: str) -> CacheEntry | None:
        """The entry for ``key``, or ``None`` (counted as hit/miss).

        A directory that exists but fails validation — unreadable
        ``meta.json``, a listed artifact missing — is *quarantined*
        (moved aside, never trusted again) and reported as a miss, so
        one torn write or disk hiccup cannot keep serving garbage.
        """
        path = self.entry_path(key)
        if not path.is_dir():
            obs_metrics.counter("cache.miss").inc()
            obs_bus.emit_event("cache.miss", key=key)
            return None
        entry = self._load_entry(key, path)
        if entry is None:
            if not path.is_dir():
                # The entry vanished mid-validation: a concurrent gc or
                # LRU eviction (another process, or a `cache gc` racing
                # a live daemon) removed it.  A plain miss, not
                # corruption — the builder will simply republish.
                obs_metrics.counter("cache.miss").inc()
                obs_bus.emit_event("cache.miss", key=key, evicted=True)
                return None
            self._quarantine(key, path)
            obs_metrics.counter("cache.miss").inc()
            obs_bus.emit_event("cache.miss", key=key, corrupt=True)
            return None
        obs_metrics.counter("cache.hit").inc()
        obs_bus.emit_event("cache.hit", key=key)
        self._touch(path)
        return entry

    def _load_entry(self, key: str, path: Path) -> CacheEntry | None:
        try:
            meta = json.loads((path / META_NAME).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(meta, dict):
            return None
        for name in meta.get("artifacts", []):
            if not (path / name).is_file():
                return None
        return CacheEntry(key=key, path=path, meta=meta)

    def _touch(self, path: Path) -> None:
        try:
            (path / LAST_USED_NAME).touch()
        except OSError:
            pass  # LRU precision is not worth failing a hit

    def _quarantine(self, key: str, path: Path) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / f"{key}-{uuid.uuid4().hex[:8]}"
        try:
            os.rename(path, target)
        except OSError:
            shutil.rmtree(path, ignore_errors=True)
            target = None
        obs_metrics.counter("cache.corrupt").inc()
        obs_bus.emit_event("cache.quarantine", key=key,
                           moved_to=str(target) if target else None)

    # -- publish --------------------------------------------------------------

    def publish(self, key: str, components: dict,
                artifacts: dict[str, "bytes | str | Path"],
                meta: dict | None = None) -> CacheEntry:
        """Atomically publish one entry; returns the stored entry.

        ``artifacts`` maps entry-relative names to contents (text or
        bytes) or to source :class:`Path`\\ s to copy (permissions
        preserved — that is how the executable bit survives).  Racing
        publishers of the same key are fine: whoever renames first wins
        and the loser adopts the published copy.
        """
        stage = self.tmp_dir / uuid.uuid4().hex
        stage.mkdir(parents=True)
        try:
            names = []
            for name, content in artifacts.items():
                if content is None:
                    continue
                target = stage / name
                if isinstance(content, Path):
                    shutil.copy2(content, target)
                elif isinstance(content, bytes):
                    target.write_bytes(content)
                else:
                    target.write_text(content)
                names.append(name)
            full_meta = dict(meta or {})
            full_meta.update(key=key, components=components,
                             artifacts=sorted(names),
                             created=time.time())
            (stage / META_NAME).write_text(
                json.dumps(full_meta, indent=1, sort_keys=True) + "\n")
            # Crash safety: the rename must not become durable before
            # the entry's contents do, or a power cut could publish a
            # directory of empty files.  Data first, then the rename's
            # parent directory below.
            for name in [*names, META_NAME]:
                _fsync_path(stage / name)
            _fsync_path(stage)
            path = self.entry_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(stage, path)
            except OSError:
                # Lost the publish race (or a corrupt dir squats on the
                # key): adopt whatever is there if it validates.
                shutil.rmtree(stage, ignore_errors=True)
                entry = self._load_entry(key, path)
                if entry is not None:
                    return entry
                raise CacheError(
                    f"cache entry {key[:12]} exists but does not "
                    "validate; run `python -m repro cache gc`")
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        _fsync_path(path.parent)
        obs_metrics.counter("cache.publish").inc()
        obs_bus.emit_event("cache.publish", key=key,
                           backend=components.get("backend"),
                           bytes=_dir_bytes(path))
        if self.max_bytes:
            self.gc(self.max_bytes, protect=key)
        return CacheEntry(key=key, path=path, meta=full_meta)

    # -- maintenance ----------------------------------------------------------

    def _entries(self) -> list[tuple[float, str, Path, int]]:
        """(last_used, key, path, bytes) per entry, least recent first.

        Tolerates entries (and whole shards) vanishing mid-walk: a
        concurrent ``cache gc`` / eviction racing a live daemon must
        degrade to "that entry no longer exists", never to ENOENT.
        """
        out = []
        for shard in _safe_iterdir(self.objects_dir):
            if not shard.is_dir():
                continue
            for path in _safe_iterdir(shard):
                if not path.is_dir():
                    continue
                stamp = _last_used(path)
                out.append((stamp, path.name, path, _dir_bytes(path)))
        out.sort(key=lambda item: (item[0], item[1]))
        return out

    def size(self) -> tuple[int, int]:
        """``(entries, bytes)`` without reading any ``meta.json`` —
        cheap enough for every ``/healthz`` probe."""
        entries = self._entries()
        return len(entries), sum(size for *_rest, size in entries)

    def stats(self) -> dict:
        """Filesystem-derived store statistics plus in-process counters."""
        entries = self._entries()
        backends: dict[str, int] = {}
        for _stamp, key, path, _size in entries:
            entry = self._load_entry(key, path)
            backend = (entry.components.get("backend", "?")
                       if entry else "corrupt")
            backends[backend] = backends.get(backend, 0) + 1
        registry = obs_metrics.registry().as_dict()
        return {
            "root": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for *_rest, size in entries),
            "max_bytes": self.max_bytes,
            "backends": backends,
            "quarantined": len(_safe_iterdir(self.quarantine_dir)),
            "counters": {name: value
                         for name, value in registry.items()
                         if name.startswith("cache.")},
        }

    def gc(self, max_bytes: int | None = None,
           protect: str | None = None) -> dict:
        """Evict least-recently-used entries until ≤ ``max_bytes``.

        Also clears abandoned publish staging dirs.  ``protect`` names
        one key never evicted (the entry just published).  Returns
        ``{"evicted": n, "bytes": remaining, "entries": remaining}``.
        """
        if max_bytes is None:
            max_bytes = self.max_bytes
        if self.tmp_dir.is_dir():
            for stale in self.tmp_dir.iterdir():
                shutil.rmtree(stale, ignore_errors=True)
        entries = self._entries()
        total = sum(size for *_rest, size in entries)
        evicted = 0
        for _stamp, key, path, size in entries:
            if total <= max_bytes:
                break
            if key == protect:
                continue
            shutil.rmtree(path, ignore_errors=True)
            total -= size
            evicted += 1
            obs_metrics.counter("cache.evict").inc()
            obs_bus.emit_event("cache.evict", key=key, bytes=size)
        return {"evicted": evicted, "bytes": total,
                "entries": len(entries) - evicted}

    def scrub(self) -> dict:
        """Startup integrity pass: quarantine partial publishes.

        Stage directories left under ``tmp/`` are the footprint of a
        process that died mid-publish; entry directories that fail
        validation are torn writes that landed before their fsync.
        Both are moved aside so the store starts clean — the serve
        daemon runs this before accepting its first request.  Returns
        ``{"stale_tmp": n, "quarantined": n}``.
        """
        stale = 0
        for leftover in _safe_iterdir(self.tmp_dir):
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            target = self.quarantine_dir / f"tmp-{leftover.name}"
            try:
                os.rename(leftover, target)
            except OSError:
                shutil.rmtree(leftover, ignore_errors=True)
            stale += 1
        corrupt = 0
        for _stamp, key, path, _size in self._entries():
            if self._load_entry(key, path) is None and path.is_dir():
                self._quarantine(key, path)
                corrupt += 1
        if stale or corrupt:
            obs_bus.emit_event("cache.scrub", stale_tmp=stale,
                               quarantined=corrupt)
        return {"stale_tmp": stale, "quarantined": corrupt}

    def clear(self) -> int:
        """Remove every entry (and staging/quarantine debris)."""
        count = len(self._entries())
        for sub in (self.objects_dir, self.tmp_dir, self.quarantine_dir):
            shutil.rmtree(sub, ignore_errors=True)
        return count


def _safe_iterdir(path: Path) -> list[Path]:
    """Sorted children of ``path``; a vanished directory is just empty."""
    try:
        return sorted(path.iterdir())
    except OSError:
        return []


def _fsync_path(path: Path) -> None:
    """Best-effort fsync of a file or directory (crash durability)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _last_used(path: Path) -> float:
    for name in (LAST_USED_NAME, META_NAME):
        try:
            return (path / name).stat().st_mtime
        except OSError:
            continue
    return 0.0


def _dir_bytes(path: Path) -> int:
    total = 0
    try:
        for entry in path.iterdir():
            try:
                if entry.is_file():
                    total += entry.stat().st_size
            except OSError:
                continue
    except OSError:
        pass
    return total
