"""High-level facade: the API a downstream user of the library sees.

Typical use::

    from repro import compile_source

    stream = compile_source(open("fm_radio.str").read())
    result = stream.run_laminar(iterations=100)
    baseline = stream.run_fifo(iterations=100)
    assert result.outputs == baseline.outputs

``CompiledStream`` bundles the whole pipeline — parse → elaborate →
flatten → schedule — and exposes lowering, optimization, both
interpreters, both C backends and the analytic metrics.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.backend.common import checksum_outputs
from repro.faults import limits as faults_limits
from repro.backend.fifo_c import FifoCodegenOptions, generate_fifo_c
from repro.backend.laminar_c import generate_laminar_c
from repro.frontend import parse_and_check
from repro.frontend.ast_nodes import Program as AstProgram
from repro.frontend.intrinsics import XorShift32
from repro.graph import FlatGraph, StreamNode, elaborate, flatten, \
    graph_stats
from repro.interp import FifoInterpreter, LaminarInterpreter, RunResult
from repro.lir import LoweringOptions, Program, lower, verify
from repro.machine.metrics import CommunicationReport, communication_report
from repro.obs import bus
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.opt import OptOptions, OptStats, optimize
from repro.scheduling import Schedule, build_schedule


def _options_key(options: object) -> object:
    """A hashable cache key from an options object's *field values*.

    ``repr`` is not a safe key: dataclasses may exclude fields from their
    repr (``field(repr=False)``) or override ``__repr__`` entirely, so
    distinct nested ``PromoteOptions`` can collide.  Recursing over
    ``dataclasses.fields`` keys on what actually changes behavior.

    Container field values are normalized recursively — lists/tuples to
    tuples, dicts to sorted item tuples, sets to sorted tuples — so a
    field like ``OptOptions.pipeline`` holding a list is a valid key
    component instead of raising ``TypeError: unhashable type``.
    """
    if dataclasses.is_dataclass(options) and not isinstance(options, type):
        return (type(options).__qualname__,) + tuple(
            (f.name, _options_key(getattr(options, f.name)))
            for f in dataclasses.fields(options))
    if isinstance(options, (list, tuple)):
        return tuple(_options_key(item) for item in options)
    if isinstance(options, dict):
        return tuple(sorted(
            (key, _options_key(value)) for key, value in options.items()))
    if isinstance(options, (set, frozenset)):
        return tuple(sorted((_options_key(item) for item in options),
                            key=repr))
    return options


def options_fingerprint(lowering: "LoweringOptions | None" = None,
                        opt: "OptOptions | None" = None) -> str:
    """Deterministic text form of the normalized options key.

    This is the persistent artifact cache's options component (see
    :mod:`repro.cache`): the same normalization that keys the in-process
    ``CompiledStream.lower`` memo, rendered via ``repr`` of nested plain
    tuples so equal options always produce equal strings.
    """
    return repr((_options_key(lowering if lowering is not None
                              else LoweringOptions()),
                 _options_key(opt if opt is not None else OptOptions())))


@dataclass
class LoweredResult:
    """A lowered + optimized LaminarIR program with its pass statistics."""

    program: Program
    opt_stats: OptStats


@dataclass
class CompiledStream:
    """A fully scheduled stream program, ready to run or lower."""

    source: str
    ast: AstProgram
    root: StreamNode
    graph: FlatGraph
    schedule: Schedule
    _lowered_cache: dict = field(default_factory=dict, repr=False)

    @property
    def name(self) -> str:
        return self.graph.name

    @property
    def source_hash(self) -> str:
        """sha256 of the source text — the ledger's ``spec_hash``."""
        return hashlib.sha256(self.source.encode("utf-8")).hexdigest()

    # -- structure ---------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Structural statistics (Table 1)."""
        out = graph_stats(self.graph)
        out["steady_firings"] = len(self.schedule.steady)
        out["init_firings"] = len(self.schedule.init)
        return out

    def communication(self) -> CommunicationReport:
        """Analytic data-communication volumes (experiment E2)."""
        return communication_report(self.schedule)

    # -- lowering ------------------------------------------------------------------

    def lower(self, lowering: LoweringOptions | None = None,
              opt: OptOptions | None = None) -> LoweredResult:
        """Lower to LaminarIR and optimize.  Results are cached per options.

        ``opt`` configures the pass manager: ``OptOptions.pipeline``
        selects an explicit pass ordering and ``max_rounds`` caps the
        fixpoint (see ``docs/OPTIMIZER.md``); the returned
        :class:`LoweredResult` carries the per-pass ``OptStats``.
        """
        key = (_options_key(lowering if lowering is not None
                            else LoweringOptions()),
               _options_key(opt if opt is not None else OptOptions()))
        cached = self._lowered_cache.get(key)
        if cached is not None:
            return cached
        with faults_limits.compile_budget(), \
                trace.span("lower", stream=self.name):
            with trace.span("lower.lir"):
                program = lower(self.schedule, self.source, lowering)
            stats = optimize(program, opt)
            with trace.span("verify"):
                verify(program)  # cheap invariant check after each pipeline
        result = LoweredResult(program=program, opt_stats=stats)
        self._lowered_cache[key] = result
        return result

    # -- execution -------------------------------------------------------------------

    def run_fifo(self, iterations: int,
                 seed: int = XorShift32.DEFAULT_SEED) -> RunResult:
        """Run the FIFO baseline interpreter (the StreamIt stand-in)."""
        with trace.span("run.fifo", stream=self.name,
                        iterations=iterations) as span:
            result = FifoInterpreter(self.schedule, self.source,
                                     rng_seed=seed).run(iterations)
            span.annotate(outputs=len(result.outputs))
        return result

    def run_laminar(self, iterations: int,
                    lowering: LoweringOptions | None = None,
                    opt: OptOptions | None = None,
                    seed: int = XorShift32.DEFAULT_SEED) -> RunResult:
        """Lower (cached), optimize and execute the LaminarIR program.

        ``iterations`` counts *schedule* iterations so results stay
        comparable with :meth:`run_fifo` even when
        ``lowering.steady_multiplier`` packs several schedule iterations
        into one LaminarIR body.
        """
        multiplier = (lowering or LoweringOptions()).steady_multiplier
        if iterations % multiplier:
            raise ValueError(
                f"iterations ({iterations}) must be a multiple of "
                f"steady_multiplier ({multiplier})")
        lowered = self.lower(lowering, opt)
        with trace.span("run.laminar", stream=self.name,
                        iterations=iterations) as span:
            result = LaminarInterpreter(lowered.program, rng_seed=seed).run(
                iterations // multiplier)
            span.annotate(outputs=len(result.outputs))
        return result

    # -- native code ---------------------------------------------------------------

    def fifo_c(self, options: "FifoCodegenOptions | None" = None) -> str:
        """The baseline C program (run-time FIFO queues)."""
        with trace.span("codegen.fifo_c", stream=self.name):
            return generate_fifo_c(self.schedule, self.source, options)

    def laminar_c(self, lowering: LoweringOptions | None = None,
                  opt: OptOptions | None = None) -> str:
        """The LaminarIR C program (compile-time queues)."""
        lowered = self.lower(lowering, opt)
        with trace.span("codegen.laminar_c", stream=self.name):
            return generate_laminar_c(lowered.program)


def compile_source(source: str,
                   filename: str = "<string>") -> CompiledStream:
    """Run the full frontend pipeline on ``source``.

    The whole invocation runs under one ``compile_seconds`` wall-clock
    budget when the ambient :class:`repro.faults.ResourceLimits` sets
    one (see ``docs/ROBUSTNESS.md``).
    """
    with faults_limits.compile_budget(), \
            trace.span("compile", file=filename):
        with trace.span("parse"):
            ast = parse_and_check(source, filename)
        faults_limits.check_deadline("elaborate")
        with trace.span("elaborate"):
            root = elaborate(ast)
        faults_limits.check_deadline("flatten")
        with trace.span("flatten"):
            graph = flatten(root)
        # build_schedule opens its own "schedule" span with sub-stages.
        schedule = build_schedule(graph)
    obs_metrics.gauge("compile.source_bytes").set(len(source))
    stream = CompiledStream(source=source, ast=ast, root=root, graph=graph,
                            schedule=schedule)
    bus.emit_event("compile.done", stream=stream.name, file=filename,
                   spec_hash=stream.source_hash,
                   filters=len(graph.vertices))
    return stream


def compile_file(path: str | Path) -> CompiledStream:
    path = Path(path)
    return compile_source(path.read_text(), str(path))


@dataclass
class EquivalenceReport:
    """Outcome of running both routes and comparing outputs (E8)."""

    matches: bool
    output_count: int
    fifo: RunResult
    laminar: RunResult
    checksum: int


def check_equivalence(stream: CompiledStream, iterations: int = 10,
                      lowering: LoweringOptions | None = None,
                      opt: OptOptions | None = None) -> EquivalenceReport:
    """Run both interpreters and compare their output streams exactly."""
    with trace.span("equivalence", stream=stream.name,
                    iterations=iterations) as span:
        fifo = stream.run_fifo(iterations)
        laminar = stream.run_laminar(iterations, lowering, opt)
        matches = fifo.outputs == laminar.outputs
        span.annotate(matches=matches)
    return EquivalenceReport(matches=matches,
                             output_count=len(fifo.outputs),
                             fifo=fifo, laminar=laminar,
                             checksum=checksum_outputs(fifo.outputs))
