"""Graceful native→interpreter degradation.

A missing or broken C toolchain must never take down an evaluation, a
profiling run or a fuzz campaign — the laminar interpreter computes the
same outputs, just without native timings.  :func:`native_or_fallback`
attempts the native route and, on a *toolchain* failure
(:class:`~repro.backend.runner.NativeCompileError`), records a
``native.fallback`` counter and span in :mod:`repro.obs` and returns a
degraded :class:`NativeAttempt` instead of raising.

Failures of the generated *binary* (:class:`NativeRunError`, including
protocol violations) propagate: a crashing or lying binary is a finding
about the generated code, not an environment problem to paper over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.backend.runner import (NativeCompileError, NativeRun,
                                  compile_and_run)
from repro.obs import metrics as obs_metrics
from repro.obs import trace

__all__ = ["NativeAttempt", "native_or_fallback", "record_fallback"]


@dataclass
class NativeAttempt:
    """Outcome of one native attempt; ``degraded`` means fallback taken."""

    run: NativeRun | None
    degraded: bool = False
    reason: str | None = None


def record_fallback(where: str, reason: str) -> None:
    """Publish one native→interpreter fallback into the obs registry."""
    obs_metrics.counter("native.fallback").inc()
    with trace.span("native.fallback", where=where,
                    reason=reason.splitlines()[0][:200]):
        pass


def native_or_fallback(code: str, iterations: int, *,
                       print_outputs: bool = False, name: str = "prog",
                       where: str = "native",
                       heartbeat_ms: int | None = None,
                       stall_timeout: float | None = None,
                       log: Callable[[str], None] | None = None
                       ) -> NativeAttempt:
    """Run ``code`` natively, degrading to a no-result on toolchain loss.

    ``heartbeat_ms``/``stall_timeout`` pass through to the runner's
    heartbeat side channel and stall watchdog (profile builds only); a
    stall is a :class:`NativeRunError` and propagates like any other
    binary failure.
    """
    try:
        run = compile_and_run(code, iterations,
                              print_outputs=print_outputs, name=name,
                              heartbeat_ms=heartbeat_ms,
                              stall_timeout=stall_timeout)
    except NativeCompileError as error:
        reason = str(error)
        record_fallback(where, reason)
        if log is not None:
            log(f"notice: native toolchain unavailable "
                f"({reason.splitlines()[0]}); degraded to interpreter "
                "results")
        return NativeAttempt(run=None, degraded=True, reason=reason)
    return NativeAttempt(run=run)
