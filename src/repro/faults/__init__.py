"""Robustness layer: resource guardrails and deterministic fault injection.

LaminarIR trades run-time buffers for compile-time unrolling, which makes
the *compiler* the component that can blow up: a hostile or fuzz-generated
spec can explode the steady-state unroll, and the native harness (``cc``
subprocess → binary subprocess → stderr side-channel) fails in ways that
must degrade gracefully rather than hang, leak or mis-report.

Three cooperating pieces (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.faults.limits` — a :class:`ResourceLimits` config (max
  unrolled ops, max steady tokens per channel, max solver iterations,
  compile wall-clock budget) enforced across scheduling, lowering and the
  optimizer; violations raise the structured :class:`ResourceExhausted`
  diagnostic instead of OOM-ing or hanging.
* :mod:`repro.faults.plan` — a seeded :class:`FaultPlan` that
  deterministically injects failures at every native-harness seam
  (``--inject cc-timeout:0.3,malformed-stdout:1``), so every error path
  is testable without a hostile machine.
* :mod:`repro.faults.degrade` — the native→interpreter fallback used by
  ``run``/``report``/``profile --native`` and the fuzz driver, recording
  a ``native.fallback`` counter/span in :mod:`repro.obs`.

This module deliberately re-exports only :mod:`limits` and :mod:`plan`;
:mod:`repro.faults.degrade` imports the native runner (which itself
consults the fault plan), so it is imported lazily by its consumers.
"""

from repro.faults.limits import (ResourceExhausted, ResourceLimits,
                                 active_limits, check_deadline,
                                 compile_budget, use_limits)
from repro.faults.plan import (FAULT_SITES, FaultPlan, current_plan,
                               inject)

__all__ = [
    "FAULT_SITES", "FaultPlan", "ResourceExhausted", "ResourceLimits",
    "active_limits", "check_deadline", "compile_budget", "current_plan",
    "inject", "use_limits",
]
