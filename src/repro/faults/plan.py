"""Deterministic fault injection for the native-harness seams.

A :class:`FaultPlan` maps *fault sites* to firing probabilities and draws
from one seeded RNG stream per site, so a campaign with the same seed
injects exactly the same failures regardless of how many other sites are
configured or what work runs in between.  The native runner, the
optimizer and (through them) the whole CLI consult the ambient plan via
:func:`current_plan`; with no plan installed every query is a cheap
``False``.

Spec syntax (the CLI's ``--inject`` / the ``REPRO_INJECT`` env var)::

    cc-timeout:0.3,malformed-stdout:1

``site:rate`` entries, comma-separated; a bare ``site`` means rate 1.
See :data:`FAULT_SITES` for the seam list and ``docs/ROBUSTNESS.md`` for
what each one simulates.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["FAULT_SITES", "FaultPlan", "current_plan", "inject"]

# Every injectable seam and what firing it simulates.  The native runner
# fabricates the *observable outcome* of the failure (a timeout, a
# signal-killed compiler, a garbage protocol line) so the real error
# handling — retries, temp-dir policy, strict parsing, degradation —
# executes exactly as it would against a hostile machine.
FAULT_SITES = {
    "cc-missing": "no C compiler is found on PATH",
    "cc-crash": "the compiler subprocess dies on a signal "
                "(transient: retried with backoff)",
    "cc-timeout": "the compiler subprocess wedges past its timeout",
    "bin-nonzero": "the generated binary exits nonzero",
    "bin-timeout": "the generated binary wedges past its timeout",
    "bin-hang": "the generated binary emits one heartbeat then stops "
                "making progress (caught by the heartbeat watchdog)",
    "bin-garbage": "the binary emits unparseable output "
                   "(duplicate/garbled protocol lines)",
    "malformed-stdout": "the binary exits 0 but omits required "
                        "checksum/outputs/seconds protocol lines",
    "opt-nonconverge": "the optimizer reports fixpoint non-convergence",
    "worker-kill": "a serve pool worker process dies mid-job (SIGKILL/"
                   "OOM-kill; detected via pipe EOF + exit status, the "
                   "worker is respawned and the job retried once)",
    "worker-hang": "a serve pool worker stops replying mid-job (caught "
                   "by the pool's job deadline, then killed/respawned)",
}


@dataclass
class FaultPlan:
    """Seeded per-site failure rates; decisions are deterministic."""

    rates: dict[str, float] = field(default_factory=dict)
    seed: int | str = 0
    # How often each site actually fired (diagnostics / test assertions).
    fired: dict[str, int] = field(default_factory=dict)
    _streams: dict[str, random.Random] = field(default_factory=dict,
                                               repr=False)

    @classmethod
    def parse(cls, spec: str, seed: int | str = 0) -> "FaultPlan":
        """Parse an ``--inject`` spec; unknown sites raise ``ValueError``."""
        rates: dict[str, float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            site, sep, raw = item.partition(":")
            site = site.strip()
            if site not in FAULT_SITES:
                known = ", ".join(sorted(FAULT_SITES))
                raise ValueError(
                    f"unknown fault site {site!r}; known sites: {known}")
            try:
                rate = float(raw) if sep else 1.0
            except ValueError:
                raise ValueError(
                    f"bad rate for fault site {site!r}: {raw!r}") from None
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"rate for fault site {site!r} must be in [0, 1], "
                    f"got {raw}")
            rates[site] = rate
        return cls(rates=rates, seed=seed)

    def reseed(self, seed: int | str) -> None:
        """Reset the seed and forget any drawn streams/counts."""
        self.seed = seed
        self._streams.clear()
        self.fired.clear()

    def should_fire(self, site: str) -> bool:
        """One deterministic decision for ``site``; counts the hits.

        Each site draws from its own ``Random(f"{seed}:{site}")`` stream,
        so decisions at one seam never perturb another seam's sequence.
        """
        rate = self.rates.get(site, 0.0)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            hit = True
        else:
            stream = self._streams.get(site)
            if stream is None:
                stream = self._streams[site] = random.Random(
                    f"{self.seed}:{site}")
            hit = stream.random() < rate
        if hit:
            self.fired[site] = self.fired.get(site, 0) + 1
        return hit

    @property
    def active(self) -> bool:
        return any(rate > 0.0 for rate in self.rates.values())


class _NullPlan(FaultPlan):
    """The no-injection default: every query is False, zero allocation."""

    def should_fire(self, site: str) -> bool:  # noqa: ARG002
        return False


_NULL_PLAN = _NullPlan()
_installed: FaultPlan | None = None


def current_plan() -> FaultPlan:
    """The ambient fault plan (a never-firing null plan by default)."""
    return _installed if _installed is not None else _NULL_PLAN


@contextmanager
def inject(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` as the ambient fault plan for a scope."""
    global _installed
    previous = _installed
    _installed = plan
    try:
        yield plan
    finally:
        _installed = previous
