"""Resource guardrails: bounded compilation instead of OOM or hang.

A :class:`ResourceLimits` bundle caps the quantities that a hostile or
fuzz-generated spec can blow up:

* ``max_unrolled_ops`` — LaminarIR ops emitted while unrolling the
  schedule (checked per firing in :mod:`repro.lir.lower`).
* ``max_steady_tokens_per_channel`` — tokens crossing any one channel in
  one steady iteration (checked right after the balance solver, before
  any schedule is unrolled).
* ``max_solver_iterations`` — iterations of the balance solver and the
  init-schedule demand fixpoint in :mod:`repro.scheduling`.
* ``compile_seconds`` — a wall-clock budget for one compile stage
  (frontend+schedule, or lower+optimize), checked at loop boundaries.

Limits are ambient: the CLI installs them via :func:`use_limits` (from
``--limits`` or the ``REPRO_LIMITS`` environment variable) and the
pipeline reads them back through :func:`active_limits`.  A violation
raises :class:`ResourceExhausted` — a :class:`CompileError` subclass with
a dedicated ``kind`` plus structured ``resource``/``limit``/``actual``/
``where`` fields, so the CLI can map it to its own exit code (3) and the
fuzz oracle treats it like any other structured compile diagnostic.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Iterator

from repro.frontend.errors import (CompileError, SourceLocation,
                                   UNKNOWN_LOCATION)

__all__ = ["ResourceExhausted", "ResourceLimits", "active_limits",
           "check_deadline", "compile_budget", "use_limits"]


class ResourceExhausted(CompileError):
    """A resource limit was hit; compilation stopped instead of blowing up.

    ``where`` carries the provenance of the offending construct (the
    filter being lowered, the channel that overflows, the solver stage).
    """

    kind = "resource exhausted"

    def __init__(self, resource: str, limit: float, actual: float,
                 where: str = "", detail: str = "",
                 loc: SourceLocation = UNKNOWN_LOCATION,
                 source: str | None = None):
        self.resource = resource
        self.limit = limit
        self.actual = actual
        self.where = where
        message = f"{resource} limit exceeded ({_fmt(actual)} > " \
                  f"{_fmt(limit)})"
        if where:
            message += f" in {where}"
        if detail:
            message += f"; {detail}"
        super().__init__(message, loc, source)


def _fmt(value: float) -> str:
    return str(int(value)) if float(value).is_integer() else f"{value:g}"


# --limits / REPRO_LIMITS key aliases → dataclass field names.
_ALIASES = {
    "ops": "max_unrolled_ops",
    "max_unrolled_ops": "max_unrolled_ops",
    "tokens": "max_steady_tokens_per_channel",
    "max_steady_tokens_per_channel": "max_steady_tokens_per_channel",
    "solver": "max_solver_iterations",
    "max_solver_iterations": "max_solver_iterations",
    "seconds": "compile_seconds",
    "compile_seconds": "compile_seconds",
}


@dataclass(frozen=True)
class ResourceLimits:
    """Caps on compile-time resource use; ``None`` means unlimited."""

    max_unrolled_ops: int | None = None
    max_steady_tokens_per_channel: int | None = None
    max_solver_iterations: int | None = None
    compile_seconds: float | None = None

    @classmethod
    def parse(cls, spec: str) -> "ResourceLimits":
        """Parse ``"ops=200000,tokens=4096,solver=200,seconds=30"``.

        Raises ``ValueError`` on an unknown key or a non-numeric /
        negative value, so the CLI can reject the spec up front.
        """
        values: dict[str, int | float] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, raw = item.partition("=")
            if not sep:
                raise ValueError(
                    f"bad resource limit {item!r}: expected key=value")
            field_name = _ALIASES.get(key.strip())
            if field_name is None:
                known = ", ".join(sorted(set(_ALIASES)))
                raise ValueError(
                    f"unknown resource limit {key.strip()!r}; "
                    f"known keys: {known}")
            try:
                value = (float(raw) if field_name == "compile_seconds"
                         else int(raw))
            except ValueError:
                raise ValueError(
                    f"bad value for resource limit {key.strip()!r}: "
                    f"{raw!r}") from None
            if value < 0:
                raise ValueError(
                    f"resource limit {key.strip()!r} must be >= 0, "
                    f"got {raw}")
            values[field_name] = value
        return cls(**values)  # type: ignore[arg-type]

    def merged(self, other: "ResourceLimits") -> "ResourceLimits":
        """``other``'s set fields override ``self``'s."""
        overrides = {f.name: getattr(other, f.name) for f in fields(other)
                     if getattr(other, f.name) is not None}
        return replace(self, **overrides)

    def spec(self) -> str:
        """A ``key=value`` spec that round-trips through :meth:`parse`.

        Used to ship effective limits across a process boundary (the
        serve daemon hands each pool worker its request's limits as a
        spec string).  Unset fields are omitted; no limits → ``""``.
        """
        parts = []
        if self.max_unrolled_ops is not None:
            parts.append(f"ops={self.max_unrolled_ops}")
        if self.max_steady_tokens_per_channel is not None:
            parts.append(f"tokens={self.max_steady_tokens_per_channel}")
        if self.max_solver_iterations is not None:
            parts.append(f"solver={self.max_solver_iterations}")
        if self.compile_seconds is not None:
            parts.append(f"seconds={_fmt(self.compile_seconds)}")
        return ",".join(parts)


_UNLIMITED = ResourceLimits()

# Ambient state: the installed limits (``use_limits``) win over the
# REPRO_LIMITS environment variable; the parsed env spec is memoized on
# its string value so hot paths can call ``active_limits`` freely.
# Installed limits and the wall-clock deadline are *thread-local*, so
# the serve daemon can apply per-request admission limits from handler
# threads without requests bleeding budgets into each other.
_tls = threading.local()
_env_cache: tuple[str | None, ResourceLimits] = (None, _UNLIMITED)


def active_limits() -> ResourceLimits:
    """The limits in effect: installed > ``REPRO_LIMITS`` env > unlimited."""
    installed = getattr(_tls, "installed", None)
    if installed is not None:
        return installed
    spec = os.environ.get("REPRO_LIMITS")
    global _env_cache
    if _env_cache[0] != spec:
        parsed = ResourceLimits.parse(spec) if spec else _UNLIMITED
        _env_cache = (spec, parsed)
    return _env_cache[1]


@contextmanager
def use_limits(limits: ResourceLimits) -> Iterator[ResourceLimits]:
    """Install ``limits`` as the ambient configuration for a scope.

    The installation is thread-local: limits installed in one thread are
    invisible to every other (each serve request carries its own)."""
    previous = getattr(_tls, "installed", None)
    _tls.installed = limits
    try:
        yield limits
    finally:
        _tls.installed = previous


# -- wall-clock budget --------------------------------------------------------

# (deadline, budget_seconds) of the innermost active compile budget;
# one slot per thread, like the installed limits.

@contextmanager
def compile_budget() -> Iterator[None]:
    """Start the wall-clock budget for one compile stage, if configured.

    Nested stages share the outermost deadline (one budget covers the
    whole ``compile_source`` or ``CompiledStream.lower`` invocation that
    opened it); without a ``compile_seconds`` limit this is free.
    """
    if getattr(_tls, "deadline", None) is not None:
        yield
        return
    budget = active_limits().compile_seconds
    if budget is None:
        yield
        return
    _tls.deadline = (time.monotonic() + budget, budget)
    try:
        yield
    finally:
        _tls.deadline = None


def check_deadline(where: str) -> None:
    """Raise :class:`ResourceExhausted` when the stage budget is spent.

    Called at loop boundaries of every potentially unbounded stage
    (schedule fixpoints, per-firing lowering, optimizer rounds).
    """
    state = getattr(_tls, "deadline", None)
    if state is None:
        return
    deadline, budget = state
    now = time.monotonic()
    if now > deadline:
        raise ResourceExhausted(
            "compile_seconds", budget, round(budget + now - deadline, 3),
            where=where, detail="compile wall-clock budget exhausted")
