#!/usr/bin/env python3
"""Domain example: the FM radio benchmark end to end.

Loads the FMRadio program from the suite, inspects its stream graph and
schedule, evaluates the paper's metrics for it, and — if a C compiler is
available — generates both C programs, compiles them with -O3, checks
that they agree with the Python interpreters bit-for-bit, and measures
the native speedup.

Run:  python examples/fm_radio_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.backend import (checksum_outputs, compile_and_run,
                           find_compiler)
from repro.evaluation import evaluate_stream
from repro.machine import PLATFORMS
from repro.suite import load_benchmark


def main() -> None:
    stream = load_benchmark("fm_radio")

    print("=== FMRadio stream graph ===")
    for vertex in stream.graph.topological_order():
        kind = vertex.kind.replace("Vertex", "").lower()
        print(f"  [{kind:8s}] {vertex.name}")

    reps = stream.schedule.reps
    print(f"\nsteady state: {len(stream.schedule.steady)} firings "
          f"({len(stream.schedule.init)} init firings)")
    busiest = max(reps.items(), key=lambda item: item[1])
    print(f"busiest actor: {busiest[0].name} fires {busiest[1]}x "
          "per iteration")

    print("\n=== paper metrics (modeled) ===")
    record = evaluate_stream("fm_radio", stream, iterations=4)
    print(f"  outputs match:            {record.outputs_match}")
    print(f"  data communication:       -{record.comm.reduction * 100:.1f}%")
    print(f"  memory accesses:          -{record.memory_reduction * 100:.1f}%"
          " (counted)")
    for key, model in PLATFORMS.items():
        print(f"  speedup on {model.name:20s} {record.speedup(model):.2f}x"
              f"   energy -{record.energy_saving(model) * 100:.1f}%")

    if find_compiler() is None:
        print("\n(no C compiler found; skipping native run)")
        return

    print("\n=== native run (gcc -O3) ===")
    iterations = 50_000
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        fifo = compile_and_run(stream.fifo_c(), iterations,
                               workdir=workdir, name="fm_fifo")
        laminar = compile_and_run(stream.laminar_c(), iterations,
                                  workdir=workdir, name="fm_laminar")
    interp_checksum = checksum_outputs(stream.run_fifo(10).outputs)
    short_fifo = compile_and_run(stream.fifo_c(), 10, print_outputs=False)
    print(f"  checksums agree: {fifo.checksum == laminar.checksum} "
          f"(native) / {short_fifo.checksum == interp_checksum} "
          "(native vs Python)")
    print(f"  FIFO baseline: {fifo.seconds:.3f}s for {iterations} "
          "iterations")
    print(f"  LaminarIR:     {laminar.seconds:.3f}s")
    print(f"  measured host speedup: "
          f"{fifo.seconds / max(laminar.seconds, 1e-9):.2f}x")


if __name__ == "__main__":
    main()
