#!/usr/bin/env python3
"""Inspect the generated C for both compilation routes.

Compiles a small rate-converting pipeline and prints excerpts of:

* the FIFO baseline C — circular buffers, read/write indices, modulo
  wraparound, splitter/joiner copy functions (the code shape the
  StreamIt compiler emits), and
* the LaminarIR C — a straight-line steady state over named scalars with
  loop-carried token rotation.

Pass ``--run`` to also compile both with the host compiler and verify
they produce identical checksums.

Run:  python examples/native_codegen.py [--run]
"""

import sys

from repro import compile_source
from repro.backend import compile_and_run, find_compiler

SOURCE = """
void->float filter Osc() {
  float phase;
  init { phase = 0; }
  work push 1 {
    push(sin(phase) + 0.05 * (randf() - 0.5));
    phase = phase + 0.4;
  }
}

float->float filter Smooth() {
  work push 1 pop 2 peek 4 {
    push((peek(0) + peek(1) + peek(2) + peek(3)) / 4);
    pop();
    pop();
  }
}

float->void filter Out() {
  work pop 1 { println(pop()); }
}

void->void pipeline NativeDemo {
  add Osc();
  add Smooth();
  add Out();
}
"""


def show(title: str, code: str, needles: list[str]) -> None:
    print(f"\n=== {title} ===")
    lines = code.splitlines()
    for needle in needles:
        for index, line in enumerate(lines):
            if needle in line:
                for shown in lines[index:index + 6]:
                    print("  " + shown)
                print("  ...")
                break


def main() -> None:
    stream = compile_source(SOURCE, "native_demo.str")

    fifo_code = stream.fifo_c()
    laminar_code = stream.laminar_c()

    show("FIFO baseline C (StreamIt code shape)", fifo_code,
         ["static f64 ch", "_push(f64 v)", "VSmooth_work"])
    show("LaminarIR C (compile-time queues)", laminar_code,
         ["repro_steady", "rotate loop-carried"])

    print(f"\nsizes: fifo={len(fifo_code)} bytes, "
          f"laminar={len(laminar_code)} bytes")

    if "--run" in sys.argv:
        if find_compiler() is None:
            print("no C compiler available")
            return
        fifo = compile_and_run(fifo_code, 100_000, name="nat_fifo")
        laminar = compile_and_run(laminar_code, 100_000,
                                  name="nat_laminar")
        print(f"checksums equal: {fifo.checksum == laminar.checksum}")
        print(f"fifo {fifo.seconds:.4f}s  laminar {laminar.seconds:.4f}s  "
              f"speedup {fifo.seconds / max(laminar.seconds, 1e-9):.2f}x")


if __name__ == "__main__":
    main()
