#!/usr/bin/env python3
"""Quickstart: compile a small stream program and watch LaminarIR work.

Builds a three-stage pipeline (noise source -> moving-average FIR ->
printer), runs it through both execution routes, and prints:

* the outputs (identical for both routes),
* the lowered LaminarIR program, where every token is a named value and
  the FIFO queue has become two loop-carried registers,
* the per-iteration operation counts showing what the lowering saved.

Run:  python examples/quickstart.py
"""

from repro import check_equivalence, compile_source

SOURCE = """
void->float filter Noise() {
  work push 1 {
    push(randf() * 2.0 - 1.0);
  }
}

float->float filter MovingAverage() {
  work push 1 pop 1 peek 3 {
    push((peek(0) + peek(1) + peek(2)) / 3);
    pop();
  }
}

float->void filter Printer() {
  work pop 1 {
    println(pop());
  }
}

void->void pipeline Quickstart {
  add Noise();
  add MovingAverage();
  add Printer();
}
"""


def main() -> None:
    stream = compile_source(SOURCE, "quickstart.str")

    print("=== stream graph ===")
    for key, value in stream.stats().items():
        print(f"  {key}: {value}")

    print("\n=== the LaminarIR program ===")
    lowered = stream.lower()
    print(lowered.program.dump())

    print("\n=== running both routes for 5 iterations ===")
    report = check_equivalence(stream, iterations=5)
    print(f"  outputs match: {report.matches}")
    for value in report.fifo.outputs:
        print(f"  {value:+.6f}")

    print("\n=== per-iteration cost (steady state) ===")
    fifo = report.fifo.steady_counters
    laminar = report.laminar.steady_counters
    iterations = report.fifo.iterations
    print(f"  FIFO baseline: {fifo.total_ops / iterations:.0f} ops, "
          f"{fifo.memory_accesses / iterations:.0f} memory accesses")
    print(f"  LaminarIR:     {laminar.total_ops / iterations:.0f} ops, "
          f"{laminar.memory_accesses / iterations:.0f} memory accesses")


if __name__ == "__main__":
    main()
