#!/usr/bin/env python3
"""Feedback loops: an audio echo effect.

The `feedbackloop` construct routes part of a stream back to its own
input through a delay-and-attenuate path; `enqueue` seeds the feedback
channel so the loop can fire before its first output arrives.  This
example builds a one-tap echo, shows how the initial tokens appear on
the back edge of the flat graph, and demonstrates that the loop-carried
tokens of the LaminarIR program *are* the echo memory.

Run:  python examples/feedback_echo.py
"""

from repro import check_equivalence, compile_source

SOURCE = """
void->float filter Impulse() {
  int t;
  init { t = 0; }
  work push 1 {
    /* a single unit impulse, then silence */
    push(t == 0 ? 1.0 : 0.0);
    t = t + 1;
  }
}

/* mixes the dry signal with the fed-back echo, and feeds the mixed
   signal back out on the loop path */
float->float filter EchoMixer(float gain) {
  work push 2 pop 2 {
    float dry = pop();
    float fed_back = pop();
    float mixed = dry + gain * fed_back;
    push(mixed);   /* to the output */
    push(mixed);   /* back around the loop */
  }
}

float->float filter LoopDelay() {
  /* one extra sample of delay on the feedback path */
  prework push 1 { push(0); }
  work push 1 pop 1 { push(pop()); }
}

float->void filter Printer() {
  work pop 1 { println(pop()); }
}

void->void pipeline Echo {
  add Impulse();
  add feedbackloop {
    join roundrobin(1, 1);
    body EchoMixer(0.5);
    loop LoopDelay();
    split roundrobin(1, 1);
    enqueue 0.0;
  };
  add Printer();
}
"""


def main() -> None:
    stream = compile_source(SOURCE, "echo.str")

    print("=== flat graph (note the dashed feedback edge) ===")
    for channel in stream.graph.channels:
        marker = "  <-- feedback, seeded by enqueue" if channel.initial \
            else ""
        print(f"  {channel.src.name} -> {channel.dst.name}{marker}")

    print("\n=== impulse response (echo decays by 0.5 each bounce) ===")
    report = check_equivalence(stream, iterations=10)
    assert report.matches
    for step, value in enumerate(report.laminar.outputs):
        bar = "#" * int(value * 40)
        print(f"  t={step:2d}  {value:8.5f}  {bar}")

    program = stream.lower().program
    print(f"\nLaminarIR loop-carried values: {len(program.carry_params)}")
    print("(these registers *are* the echo memory — no FIFO exists "
          "at run time)")


if __name__ == "__main__":
    main()
