#!/usr/bin/env python3
"""What splitter/joiner elimination actually does.

Builds the 8x8 transpose idiom — a round-robin splitjoin over identity
branches, pure data routing — and shows it three ways:

1. the baseline's view: a splitter and joiner that copy all 64 tokens,
2. the LaminarIR view with elimination ON: the routing vanishes — the
   steady section contains *only* the prints,
3. the ablation with elimination OFF: one explicit move per routed token.

Run:  python examples/splitjoin_elimination.py
"""

from repro import LoweringOptions, compile_source
from repro.lir import MoveOp

SOURCE = """
void->float filter Counter() {
  float n;
  init { n = 0; }
  work push 1 {
    push(n);
    n = n + 1;
  }
}

float->float filter Identity() {
  work push 1 pop 1 { push(pop()); }
}

float->float pipeline Transpose(int n) {
  add splitjoin {
    split roundrobin(1);
    for (int i = 0; i < n; i++)
      add Identity();
    join roundrobin(n);
  };
}

float->void filter Printer() {
  work pop 1 { println(pop()); }
}

void->void pipeline Demo {
  add Counter();
  add Transpose(8);
  add Printer();
}
"""


def count_kinds(program) -> dict[str, int]:
    kinds: dict[str, int] = {}
    for op in program.steady:
        kinds[type(op).__name__] = kinds.get(type(op).__name__, 0) + 1
    return kinds


def main() -> None:
    stream = compile_source(SOURCE, "transpose.str")

    print("=== baseline: what the FIFO route executes per iteration ===")
    fifo = stream.run_fifo(1)
    counters = fifo.steady_counters
    print(f"  token transfers: {counters.token_transfers}")
    print(f"  memory accesses: {counters.memory_accesses}")

    print("\n=== LaminarIR with splitter/joiner elimination ===")
    eliminated = stream.lower().program
    print(f"  steady ops: {count_kinds(eliminated)}")
    print("  -> the transpose is *free*: tokens are renamed at compile "
          "time")

    print("\n=== ablation: elimination disabled ===")
    kept = stream.lower(
        LoweringOptions(eliminate_splitjoin=False)).program
    moves = sum(1 for op in kept.steady if isinstance(op, MoveOp))
    print(f"  steady ops: {count_kinds(kept)}")
    print(f"  routing moves that survive optimization: {moves}")

    print("\n=== proof both transpose correctly ===")
    outputs = stream.run_laminar(1).outputs
    print("  first output row:", [int(v) for v in outputs[:8]])
    assert [int(v) for v in outputs[:8]] == [0, 8, 16, 24, 32, 40, 48, 56]
    print("  (row-major input became column-major output)")


if __name__ == "__main__":
    main()
