"""E7 / design-choice ablation.

Separates LaminarIR's win into its ingredients, per DESIGN.md §7:

* ``full``          — the complete lowering + optimizer;
* ``no split/join`` — compile-time queues, but splitters/joiners still
  copy tokens (explicit move per routed token);
* ``no promotion``  — splitter/joiner elimination + scalar opts, but
  filter state stays in memory (no mem2reg/SROA);
* ``no opt``        — the bare lowering with no optimizer at all.

Reported as modeled i7-2600K cycles per steady iteration, normalized to
the FIFO baseline (higher speedup = better).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit, evaluation
from repro.evaluation import format_table
from repro.machine import I7_2600K

ABLATION_NAMES = ("fm_radio", "beamformer", "dct", "filterbank",
                  "bitonic_sort", "lattice")

VARIANTS = (
    ("full", {}),
    ("no split/join elim", {"eliminate_splitjoin": False}),
    ("no state promotion", {"promote": False}),
    ("no optimizer", {"optimize": False}),
)


def build_report() -> tuple[str, dict]:
    rows = []
    speedups: dict[tuple[str, str], float] = {}
    for name in ABLATION_NAMES:
        row = [name]
        for label, options in VARIANTS:
            record = evaluation(name, **options)
            speedup = record.speedup(I7_2600K)
            speedups[(name, label)] = speedup
            row.append(f"{speedup:.2f}x")
        rows.append(row)
    table = format_table(
        ["benchmark"] + [label for label, _ in VARIANTS],
        rows,
        title="Ablation: modeled i7-2600K speedup over the FIFO baseline")
    return table, speedups


def test_ablation(benchmark):
    benchmark(lambda: evaluation("dct").speedup(I7_2600K))
    table, speedups = build_report()
    emit("ablation", table)
    for name in ABLATION_NAMES:
        full = speedups[(name, "full")]
        # every ablation must not beat the full configuration
        for label, _ in VARIANTS[1:]:
            assert speedups[(name, label)] <= full * 1.01, (name, label)
        # the unoptimized lowering is the weakest configuration
        assert speedups[(name, "no optimizer")] <= \
            speedups[(name, "no state promotion")] * 1.01, name
    # splitter/joiner elimination matters most on routing-heavy programs
    assert speedups[("dct", "no split/join elim")] < \
        speedups[("dct", "full")]


if __name__ == "__main__":
    print(build_report()[0])
