"""E6 / static-vs-randomized input table.

The paper converted several StreamIt benchmarks from static to randomized
input because, once LaminarIR exposes the dataflow, LLVM constant-folds
static-input programs into (partial) compile-time results — which would
overstate the speedup.  This driver reproduces that effect with our own
optimizer: for each benchmark we lower both the randomized-input version
and a static-input variant (every RNG call replaced by a constant) and
report how much of the steady-state work folds away.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, compiled, emit, evaluation, \
    percent
from repro.evaluation import format_table
from repro.lir import PrintOp


def build_report() -> tuple[str, int]:
    rows = []
    fully_folded = 0
    for name in all_names():
        random_ops = evaluation(name).laminar.steady_counters.total_ops \
            / evaluation(name).iterations
        static = evaluation(name, static_input=True)
        static_ops = static.laminar.steady_counters.total_ops \
            / static.iterations
        # ops that are *not* prints; if zero, the whole steady state was
        # computed at compile time and only constant prints remain.
        program_ops = [op for op in
                       compiled(name, static_input=True)
                       .lower().program.steady
                       if not isinstance(op, PrintOp)]
        folded_completely = len(program_ops) == 0
        fully_folded += folded_completely
        reduction = 1.0 - (static_ops / random_ops if random_ops else 0.0)
        rows.append([
            name,
            f"{random_ops:.0f}",
            f"{static_ops:.0f}",
            percent(max(reduction, 0.0)),
            "yes" if folded_completely else "no",
        ])
    table = format_table(
        ["benchmark", "steady ops/iter (randomized)",
         "steady ops/iter (static)", "folded away",
         "entire result precomputed"],
        rows,
        title="Table: effect of static vs randomized input on "
              "compile-time evaluation (why the paper randomized inputs)")
    return table, fully_folded


def test_static_input_folds(benchmark):
    static = evaluation("dct", static_input=True)
    benchmark(lambda: static.laminar.steady_counters.total_ops)
    table, fully_folded = build_report()
    emit("table_static_input", table)
    # almost the whole suite collapses to a precomputed output stream;
    # rate_convert legitimately survives (its source's phase accumulator
    # evolves every iteration even with constant "input")
    assert fully_folded >= 10
    for name in all_names():
        random_ops = evaluation(name).laminar.steady_counters.total_ops
        static_ops = evaluation(
            name, static_input=True).laminar.steady_counters.total_ops
        assert static_ops <= random_ops, name


if __name__ == "__main__":
    print(build_report()[0])
