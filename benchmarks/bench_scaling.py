"""E9 (extension) — steady-state execution scaling.

The paper's future-work direction of enlarging the compile-time scope:
``steady_multiplier=k`` unrolls k schedule iterations into one LaminarIR
body.  Because the schedule restores channel occupancy each iteration,
the concatenation is always valid; the larger body amortizes the
loop-carried rotation and lets CSE work across iteration boundaries, at
the cost of code size and register pressure (the spill model pushes back
at high k).

Reported: LaminarIR steady ops per *schedule* iteration and modeled
i7-2600K cycles per schedule iteration, for k in {1, 2, 4, 8}.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import EVAL_ITERATIONS, compiled, emit
from repro.evaluation import evaluate_stream, format_table
from repro.lir import LoweringOptions
from repro.machine import I7_2600K

SCALING_NAMES = ("fm_radio", "dct", "lattice", "rate_convert")
MULTIPLIERS = (1, 2, 4, 8)


def measure(name: str, multiplier: int) -> tuple[float, float]:
    """(steady ops per schedule iteration, modeled cycles per schedule
    iteration) for one configuration."""
    stream = compiled(name)
    lowering = LoweringOptions(steady_multiplier=multiplier)
    iterations = EVAL_ITERATIONS * 2  # divisible by every multiplier
    record = evaluate_stream(name, stream, iterations=iterations,
                             lowering=lowering)
    assert record.outputs_match, (name, multiplier)
    ops = record.laminar.steady_counters.total_ops / iterations
    cycles = record.cycles(I7_2600K, laminar=True) / iterations
    return ops, cycles


def build_report() -> tuple[str, dict]:
    rows = []
    data: dict[tuple[str, int], tuple[float, float]] = {}
    for name in SCALING_NAMES:
        ops_row = [name + " (ops/iter)"]
        cyc_row = [name + " (cycles/iter)"]
        for multiplier in MULTIPLIERS:
            ops, cycles = measure(name, multiplier)
            data[(name, multiplier)] = (ops, cycles)
            ops_row.append(f"{ops:.0f}")
            cyc_row.append(f"{cycles:.0f}")
        rows.append(ops_row)
        rows.append(cyc_row)
    table = format_table(
        ["benchmark"] + [f"k={m}" for m in MULTIPLIERS],
        rows,
        title="Extension: steady-state execution scaling "
              "(per schedule iteration, i7-2600K model)")
    return table, data


def test_execution_scaling(benchmark):
    benchmark(lambda: measure("lattice", 2))
    table, data = build_report()
    emit("scaling", table)
    for name in SCALING_NAMES:
        ops_k1 = data[(name, 1)][0]
        ops_k4 = data[(name, 4)][0]
        # unrolling never increases per-iteration op counts (CSE and
        # amortized carry rotation can only help)
        assert ops_k4 <= ops_k1 * 1.001, name


if __name__ == "__main__":
    print(build_report()[0])
