"""E10 (extension) — queue memory footprint.

The FIFO baseline materializes every channel as a circular buffer sized
by the schedule's occupancy bound (plus a read and a write index); the
LaminarIR program needs only its loop-carried tokens (registers) and the
state slots that survived promotion.  This table quantifies how much
buffer memory the compile-time queues eliminate — the paper's data-
communication story viewed as a footprint.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, compiled, emit, percent
from repro.evaluation import format_table

_TOKEN_BYTES = {"int": 4, "float": 8, "boolean": 4}


def fifo_buffer_bytes(stream) -> int:
    total = 0
    for channel in stream.graph.channels:
        bound = stream.schedule.buffer_bounds[channel.name]
        total += bound * _TOKEN_BYTES[channel.ty.name]
        total += 8  # read + write index (two 32-bit ints)
    return total


def laminar_state_bytes(stream) -> tuple[int, int]:
    program = stream.lower().program
    carries = sum(_TOKEN_BYTES[p.ty.name] for p in program.carry_params)
    state = sum((slot.size or 1) * _TOKEN_BYTES[slot.ty.name]
                for slot in program.state_slots)
    return carries, state


def build_report() -> tuple[str, float]:
    rows = []
    reductions = []
    for name in all_names():
        stream = compiled(name)
        fifo = fifo_buffer_bytes(stream)
        carries, state = laminar_state_bytes(stream)
        reduction = 1.0 - (carries + state) / fifo if fifo else 0.0
        reductions.append(reduction)
        rows.append([
            name,
            str(fifo),
            str(carries),
            str(state),
            percent(max(reduction, 0.0)),
        ])
    average = sum(reductions) / len(reductions)
    rows.append(["average", "", "", "", percent(average)])
    table = format_table(
        ["benchmark", "FIFO buffers (bytes)",
         "LaminarIR carried tokens (bytes)",
         "LaminarIR residual state (bytes)", "footprint reduction"],
        rows,
        title="Extension: queue memory footprint "
              "(buffers -> registers)")
    return table, average


def test_buffer_footprint(benchmark):
    stream = compiled("fm_radio")
    benchmark(lambda: fifo_buffer_bytes(stream))
    table, average = build_report()
    emit("table_buffers", table)
    assert average > 0.4
    for name in all_names():
        stream = compiled(name)
        carries, state = laminar_state_bytes(stream)
        assert carries + state <= fifo_buffer_bytes(stream), name


if __name__ == "__main__":
    print(build_report()[0])
