"""E1 / Table 1 — benchmark suite characteristics.

Regenerates the paper's benchmark-characteristics table: per benchmark,
the number of filters, splitters/joiners, peeking filters, steady-state
firings, and the size of the unrolled LaminarIR steady section.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, compiled, emit, evaluation
from repro.evaluation import format_table
from repro.suite import BENCHMARKS, load_benchmark


def build_report() -> str:
    rows = []
    for name in all_names():
        stream = compiled(name)
        stats = stream.stats()
        program = stream.lower().program
        rows.append([
            name,
            BENCHMARKS[name].domain,
            str(stats["filters"]),
            str(stats["splitters"] + stats["joiners"]),
            str(stats["peeking_filters"]),
            str(stats["steady_firings"]),
            str(len(program.steady)),
        ])
    return format_table(
        ["benchmark", "domain", "filters", "split/join", "peeking",
         "steady firings", "LaminarIR steady ops"],
        rows, title="Table 1: benchmark characteristics")


def test_table1(benchmark):
    benchmark(lambda: load_benchmark("fm_radio"))
    report = build_report()
    emit("table1_characteristics", report)
    assert "fm_radio" in report
    # every benchmark appears
    for name in all_names():
        assert name in report


if __name__ == "__main__":
    print(build_report())
