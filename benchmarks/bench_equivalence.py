"""E8 / correctness: LaminarIR is observationally equivalent to the FIFO
baseline on the whole suite, and (when a C compiler is present) the native
binaries reproduce the interpreter outputs bit-for-bit.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, compiled, emit, evaluation
from repro.backend import (checksum_outputs, compile_and_run,
                           find_compiler)
from repro.evaluation import format_table

NATIVE_NAMES = ("fm_radio", "bitonic_sort", "lattice")
NATIVE_ITERATIONS = 10


def build_report() -> str:
    rows = []
    for name in all_names():
        record = evaluation(name)
        rows.append([
            name,
            str(len(record.fifo.outputs)),
            "yes" if record.outputs_match else "NO",
            f"{checksum_outputs(record.fifo.outputs):016x}",
        ])
    return format_table(
        ["benchmark", "outputs", "FIFO == LaminarIR", "checksum"],
        rows, title="Correctness: output equivalence across the suite")


def test_suite_equivalence(benchmark):
    benchmark(lambda: evaluation("lattice").outputs_match)
    report = build_report()
    emit("equivalence", report)
    for name in all_names():
        assert evaluation(name).outputs_match, name


def test_native_equivalence(benchmark, tmp_path):
    if find_compiler() is None:
        import pytest
        pytest.skip("no C compiler on PATH")

    def run_one(name):
        stream = compiled(name)
        interp = stream.run_fifo(NATIVE_ITERATIONS)
        fifo = compile_and_run(stream.fifo_c(), NATIVE_ITERATIONS,
                               workdir=tmp_path, name=f"{name}_f")
        laminar = compile_and_run(stream.laminar_c(), NATIVE_ITERATIONS,
                                  workdir=tmp_path, name=f"{name}_l")
        expected = checksum_outputs(interp.outputs)
        assert fifo.checksum == expected, name
        assert laminar.checksum == expected, name
        return expected

    benchmark(lambda: run_one("lattice"))
    for name in NATIVE_NAMES:
        run_one(name)


if __name__ == "__main__":
    print(build_report())
