"""E12 (extension) — the compile-once daemon's hot-cache payoff.

LaminarIR's pitch is paying for queue reasoning once at compile time;
the serve daemon extends "once" across requests and processes.  This
driver starts a daemon on a Unix socket with a cold artifact cache and
measures, for ``filterbank``:

* **cold** — the first ``/run`` request: frontend + schedule + lower +
  optimize + codegen + ``cc`` + execute, end to end;
* **hot** — subsequent ``/run`` requests: one cache lookup plus one
  ``exec`` of the prebuilt binary.

Every request's checksum must be bit-exact against the cold one (and
against the in-process interpreter).  ``--check`` enforces the PR's
acceptance bar: hot throughput >= 10x cold throughput.

Needs a C toolchain; skipped under pytest when none is available.
"""

import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import pytest

from benchmarks.common import emit
from repro.backend.runner import find_compiler
from repro.evaluation import format_table

BENCHMARK = "filterbank"
ITERATIONS = 32
HOT_REQUESTS = 25


def measure() -> dict:
    from repro.cache import ArtifactCache
    from repro.serve import ServeClient, ServeServer

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        server = ServeServer(socket_path=Path(tmp) / "d.sock",
                             cache=ArtifactCache(Path(tmp) / "cache"))
        server.start()
        try:
            client = ServeClient(socket_path=server.socket_path)
            assert client.wait_ready(), "daemon did not come up"

            started = time.perf_counter()
            cold = client.run(benchmark=BENCHMARK, iterations=ITERATIONS,
                              route="native")
            cold_seconds = time.perf_counter() - started
            assert cold.ok, cold.text
            cold_body = cold.json
            assert cold_body["cache_hit"] is False

            hot_seconds = 0.0
            checksums = set()
            for _ in range(HOT_REQUESTS):
                started = time.perf_counter()
                hot = client.run(benchmark=BENCHMARK,
                                 iterations=ITERATIONS, route="native")
                hot_seconds += time.perf_counter() - started
                assert hot.ok, hot.text
                body = hot.json
                assert body["cache_hit"] is True, "expected a cache hit"
                checksums.add(body["checksum"])

            interp = client.run(benchmark=BENCHMARK,
                                iterations=ITERATIONS, route="interp")
            assert interp.ok, interp.text
        finally:
            server.stop()

    assert checksums == {cold_body["checksum"]}, \
        "hot responses diverged from the cold compile"
    assert interp.json["checksum"] == cold_body["checksum"], \
        "native route diverged from the interpreter"
    cold_rps = 1.0 / cold_seconds
    hot_rps = HOT_REQUESTS / hot_seconds
    return {
        "cold_seconds": cold_seconds,
        "hot_seconds_per_request": hot_seconds / HOT_REQUESTS,
        "cold_requests_per_second": cold_rps,
        "hot_requests_per_second": hot_rps,
        "speedup": hot_rps / cold_rps,
        "checksum": cold_body["checksum"],
    }


def build_report() -> tuple[str, dict]:
    data = measure()
    rows = [
        ["cold (compile+run)", f"{data['cold_seconds'] * 1e3:.1f}",
         f"{data['cold_requests_per_second']:.2f}"],
        ["hot (cached binary)",
         f"{data['hot_seconds_per_request'] * 1e3:.1f}",
         f"{data['hot_requests_per_second']:.2f}"],
    ]
    table = format_table(
        ["request", "ms/request", "requests/s"], rows,
        title=f"serve daemon on {BENCHMARK} ({ITERATIONS} iterations, "
              f"{HOT_REQUESTS} hot requests, checksum "
              f"{data['checksum']}, bit-exact): "
              f"{data['speedup']:.1f}x hot-over-cold")
    return table, data


def test_serve_hot_cache(benchmark):
    if find_compiler() is None:
        pytest.skip("no C compiler on PATH")
    table, data = build_report()
    emit("serve_hot_cache", table, data)
    # The tentpole's acceptance bar: compiling once must buy at least
    # an order of magnitude in request throughput.
    assert data["speedup"] >= 10.0
    assert data["checksum"] == data["checksum"].lower()
    benchmark(lambda: data["speedup"])


if __name__ == "__main__":
    table, data = build_report()
    print()
    print(table)
    if "--check" in sys.argv:
        if data["speedup"] < 10.0:
            print(f"FAIL: hot/cold speedup {data['speedup']:.1f}x < 10x")
            raise SystemExit(1)
        print(f"OK: hot/cold speedup {data['speedup']:.1f}x >= 10x, "
              "checksums bit-exact")
