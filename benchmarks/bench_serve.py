"""E12 (extension) — the compile-once daemon's hot-cache payoff.

LaminarIR's pitch is paying for queue reasoning once at compile time;
the serve daemon extends "once" across requests and processes.  This
driver starts a daemon on a Unix socket with a cold artifact cache and
measures, for ``filterbank``:

* **cold** — first ``/run`` requests at never-seen cache keys (three
  option variants of the benchmark, so the cold distribution has more
  than one sample): frontend + schedule + lower + optimize + codegen +
  ``cc`` + execute, end to end;
* **hot** — subsequent ``/run`` requests at a cached key: one cache
  lookup plus one ``exec`` of the prebuilt binary.

Both phases record per-request latency and report p50/p90/p99, which
``emit(...)`` persists as the ``BENCH_serve.json`` trajectory (and a
ledger record), so serving latency regressions show up in ``python -m
repro history serve``.

Every request's checksum must be bit-exact against the first cold one
(and against the in-process interpreter).  ``--check`` enforces the
PR's acceptance bar: hot throughput >= 10x cold throughput.

Needs a C toolchain; skipped under pytest when none is available.
"""

import math
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

import pytest

from benchmarks.common import emit
from repro.backend.runner import find_compiler
from repro.evaluation import format_table

BENCHMARK = "filterbank"
ITERATIONS = 32
HOT_REQUESTS = 25
# Distinct ``reroll_min_repeat`` values change the options fingerprint
# (hence the cache key) without changing program semantics: three
# genuinely cold compiles of the same benchmark.
COLD_VARIANTS = (2, 3, 4)


def _percentile(samples: list, q: float) -> float:
    """Nearest-rank percentile of a non-empty sample list, in ms."""
    ordered = sorted(samples)
    rank = math.ceil(q / 100.0 * len(ordered)) - 1
    return ordered[max(0, min(len(ordered) - 1, rank))] * 1e3


def _timed_run(client, **fields) -> tuple[float, dict]:
    started = time.perf_counter()
    response = client.run(benchmark=BENCHMARK, iterations=ITERATIONS,
                          route="native", **fields)
    seconds = time.perf_counter() - started
    assert response.ok, response.text
    return seconds, response.json


def measure() -> dict:
    from repro.cache import ArtifactCache
    from repro.serve import ServeClient, ServeServer

    with tempfile.TemporaryDirectory(prefix="bench_serve_") as tmp:
        server = ServeServer(socket_path=Path(tmp) / "d.sock",
                             cache=ArtifactCache(Path(tmp) / "cache"))
        server.start()
        try:
            client = ServeClient(socket_path=server.socket_path)
            assert client.wait_ready(), "daemon did not come up"

            cold_latencies = []
            checksums = set()
            for min_repeat in COLD_VARIANTS:
                seconds, body = _timed_run(
                    client, reroll_min_repeat=min_repeat)
                assert body["cache_hit"] is False, \
                    "expected a cold compile"
                cold_latencies.append(seconds)
                checksums.add(body["checksum"])

            hot_latencies = []
            for _ in range(HOT_REQUESTS):
                seconds, body = _timed_run(
                    client, reroll_min_repeat=COLD_VARIANTS[0])
                assert body["cache_hit"] is True, "expected a cache hit"
                hot_latencies.append(seconds)
                checksums.add(body["checksum"])

            interp = client.run(benchmark=BENCHMARK,
                                iterations=ITERATIONS, route="interp")
            assert interp.ok, interp.text
        finally:
            server.stop()

    assert len(checksums) == 1, \
        "responses diverged across cold variants / hot requests"
    checksum = checksums.pop()
    assert interp.json["checksum"] == checksum, \
        "native route diverged from the interpreter"
    cold_mean = sum(cold_latencies) / len(cold_latencies)
    hot_mean = sum(hot_latencies) / len(hot_latencies)
    cold_rps = 1.0 / cold_mean
    hot_rps = 1.0 / hot_mean
    return {
        "cold_requests": len(cold_latencies),
        "hot_requests": len(hot_latencies),
        "cold_seconds": cold_mean,
        "hot_seconds_per_request": hot_mean,
        "cold_p50_ms": _percentile(cold_latencies, 50),
        "cold_p90_ms": _percentile(cold_latencies, 90),
        "cold_p99_ms": _percentile(cold_latencies, 99),
        "hot_p50_ms": _percentile(hot_latencies, 50),
        "hot_p90_ms": _percentile(hot_latencies, 90),
        "hot_p99_ms": _percentile(hot_latencies, 99),
        "cold_requests_per_second": cold_rps,
        "hot_requests_per_second": hot_rps,
        "speedup": hot_rps / cold_rps,
        "checksum": checksum,
    }


def build_report() -> tuple[str, dict]:
    data = measure()
    rows = [
        ["cold (compile+run)", str(data["cold_requests"]),
         f"{data['cold_p50_ms']:.1f}", f"{data['cold_p90_ms']:.1f}",
         f"{data['cold_p99_ms']:.1f}",
         f"{data['cold_requests_per_second']:.2f}"],
        ["hot (cached binary)", str(data["hot_requests"]),
         f"{data['hot_p50_ms']:.1f}", f"{data['hot_p90_ms']:.1f}",
         f"{data['hot_p99_ms']:.1f}",
         f"{data['hot_requests_per_second']:.2f}"],
    ]
    table = format_table(
        ["request", "n", "p50 ms", "p90 ms", "p99 ms", "requests/s"],
        rows,
        title=f"serve daemon on {BENCHMARK} ({ITERATIONS} iterations, "
              f"checksum {data['checksum']}, bit-exact): "
              f"{data['speedup']:.1f}x hot-over-cold")
    return table, data


def test_serve_hot_cache(benchmark):
    if find_compiler() is None:
        pytest.skip("no C compiler on PATH")
    table, data = build_report()
    emit("serve", table, data)
    # The tentpole's acceptance bar: compiling once must buy at least
    # an order of magnitude in request throughput.
    assert data["speedup"] >= 10.0
    assert data["checksum"] == data["checksum"].lower()
    benchmark(lambda: data["speedup"])


if __name__ == "__main__":
    table, data = build_report()
    print()
    print(table)
    if "--check" in sys.argv:
        if data["speedup"] < 10.0:
            print(f"FAIL: hot/cold speedup {data['speedup']:.1f}x < 10x")
            raise SystemExit(1)
        print(f"OK: hot/cold speedup {data['speedup']:.1f}x >= 10x, "
              "checksums bit-exact")
