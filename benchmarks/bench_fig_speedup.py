"""E3 / speedup figure.

Regenerates the paper's headline speedup figure: LaminarIR over the FIFO
baseline on the four modeled platforms (Intel i7-2600K, AMD Opteron 6378,
Intel Xeon Phi 3120A, ARM Cortex-A15), plus a measured host column when a
C compiler is available (both generated C programs compiled -O3 and
timed).

Paper headline: platform-specific average speedups between 3.73x and
4.98x over StreamIt.
"""

from pathlib import Path

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, compiled, emit, evaluation
from repro.backend import compile_and_run, find_compiler
from repro.evaluation import format_table, geometric_mean
from repro.machine import PLATFORMS

# Native timing is the expensive part; use a subset at high iteration
# counts so per-run noise stays small.
NATIVE_NAMES = ("fm_radio", "dct", "filterbank", "lattice")
NATIVE_ITERATIONS = 200_000


def native_speedup(name: str, workdir: Path) -> float:
    stream = compiled(name)
    fifo = compile_and_run(stream.fifo_c(), NATIVE_ITERATIONS,
                           workdir=workdir, name=f"{name}_fifo")
    laminar = compile_and_run(stream.laminar_c(), NATIVE_ITERATIONS,
                              workdir=workdir, name=f"{name}_laminar")
    assert fifo.checksum == laminar.checksum, f"{name}: native outputs differ"
    return fifo.seconds / max(laminar.seconds, 1e-9)


def build_report(native: dict[str, float] | None = None
                 ) -> tuple[str, dict[str, float]]:
    native = native or {}
    platform_keys = list(PLATFORMS)
    rows = []
    per_platform: dict[str, list[float]] = {key: [] for key in platform_keys}
    for name in all_names():
        record = evaluation(name)
        row = [name]
        for key in platform_keys:
            speedup = record.speedup(PLATFORMS[key])
            per_platform[key].append(speedup)
            row.append(f"{speedup:.2f}x")
        row.append(f"{native[name]:.2f}x" if name in native else "-")
        rows.append(row)
    geo_row = ["geomean"]
    data: dict[str, float] = {}
    for key in platform_keys:
        geo = geometric_mean(per_platform[key])
        data[f"speedup_geomean.{key}"] = geo
        geo_row.append(f"{geo:.2f}x")
    native_values = [v for v in native.values()]
    if native_values:
        data["speedup_geomean.host"] = geometric_mean(native_values)
        for name, value in native.items():
            data[f"speedup_host.{name}"] = value
    geo_row.append(f"{geometric_mean(native_values):.2f}x"
                   if native_values else "-")
    rows.append(geo_row)
    table = format_table(
        ["benchmark"] + [PLATFORMS[k].name for k in platform_keys]
        + ["host (measured)"],
        rows,
        title="Figure: LaminarIR speedup over the FIFO baseline "
              "(paper: 3.73x-4.98x platform averages)")
    return table, data


def test_modeled_speedups(benchmark):
    record = evaluation("fm_radio")
    program = compiled("fm_radio").lower().program
    from repro.interp import LaminarInterpreter
    benchmark(lambda: LaminarInterpreter(program).run(1))
    geo = {key: geometric_mean([evaluation(n).speedup(model)
                                for n in all_names()])
           for key, model in PLATFORMS.items()}
    # the paper's band is 3.73x-4.98x; accept a generous neighbourhood
    for key, value in geo.items():
        assert 2.0 <= value <= 10.0, (key, value)
    assert record.speedup(PLATFORMS["i7-2600k"]) > 1.5


def test_native_speedups(benchmark, tmp_path):
    if find_compiler() is None:
        import pytest
        pytest.skip("no C compiler on PATH")
    native = {name: native_speedup(name, tmp_path)
              for name in NATIVE_NAMES}
    benchmark(lambda: native_speedup("lattice", tmp_path))
    table, data = build_report(native)
    emit("fig_speedup", table, data=data)
    # every native benchmark must at least not regress
    for name, value in native.items():
        assert value > 0.9, (name, value)


if __name__ == "__main__":
    import tempfile
    native = {}
    if find_compiler() is not None:
        with tempfile.TemporaryDirectory() as tmp:
            native = {name: native_speedup(name, Path(tmp))
                      for name in NATIVE_NAMES}
    print(build_report(native)[0])
