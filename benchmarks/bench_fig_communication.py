"""E2 / data-communication figure.

Regenerates the paper's data-communication comparison: tokens moved
between actors per steady iteration under run-time FIFOs vs LaminarIR.
Paper headline: LaminarIR reduces data communication by 35.9% on average
(the reduction is the splitter/joiner traffic that compile-time routing
eliminates).
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, compiled, emit, percent
from repro.evaluation import format_table
from repro.machine.metrics import communication_report


def build_report() -> tuple[str, float]:
    rows = []
    reductions = []
    for name in all_names():
        report = compiled(name).communication()
        reductions.append(report.reduction)
        rows.append([
            name,
            str(report.fifo_tokens),
            str(report.laminar_tokens),
            str(report.fifo_bytes),
            str(report.laminar_bytes),
            percent(report.reduction),
        ])
    average = sum(reductions) / len(reductions)
    rows.append(["average", "", "", "", "", percent(average)])
    table = format_table(
        ["benchmark", "FIFO tokens/iter", "LaminarIR tokens/iter",
         "FIFO bytes", "LaminarIR bytes", "reduction"],
        rows,
        title="Figure: data communication per steady iteration "
              "(paper: 35.9% average reduction)")
    return table, average


def test_communication_reduction(benchmark):
    stream = compiled("fm_radio")
    benchmark(lambda: communication_report(stream.schedule))
    table, average = build_report()
    emit("fig_communication", table,
         data={"reduction_avg": average,
               **{f"reduction.{name}":
                  compiled(name).communication().reduction
                  for name in all_names()}})
    # Shape check: splitter/joiner-free benchmarks reduce 0%, the suite
    # average lands in the paper's neighbourhood.
    assert 0.15 <= average <= 0.60
    assert compiled("lattice").communication().reduction == 0.0
    assert compiled("beamformer").communication().reduction > 0.4


if __name__ == "__main__":
    print(build_report()[0])
