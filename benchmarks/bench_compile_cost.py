"""E11 (extension) — the cost of compile-time queues.

LaminarIR trades run-time bookkeeping for compile time and code size:
the whole steady state is unrolled, so both grow with the schedule.
This driver sweeps benchmark problem sizes (scale 1x/2x/4x) and reports
lowering wall time, *optimize* wall time (timed separately by the pass
manager), LaminarIR steady-section size, generated C size for both
backends, and the modeled speedup — showing that the win persists while
the compile-side costs grow roughly linearly with the steady state.

The optimize column is compared against two committed baselines under
``results/``:

* ``compile_cost_seed.json`` — the pre-pass-manager pipeline, for the
  "vs seed" speedup column (the analysis-driven rewrite's headline);
* ``compile_cost_baseline.json`` — the current pipeline, for CI's
  regression gate: ``--check NAME [NAME...]`` re-measures just those
  benchmarks and fails if any optimize time exceeds 2x its baseline.

Every full run also writes ``results/compile_cost.json`` with the raw
measurements.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import RESULTS_DIR, emit
from repro.evaluation import evaluate_stream, format_table
from repro.machine import I7_2600K
from repro.suite import load_benchmark

SWEEP_NAMES = ("fft", "bitonic_sort", "matrixmult", "autocor", "filterbank")
SCALES = (1, 2, 4)

# CI regression gate: fail --check when optimize time exceeds this
# multiple of the committed baseline (generous — CI machines are noisy,
# a real regression from losing the sparse worklists is 5-10x).
CHECK_TOLERANCE = 2.0

# Codegen-size gate: re-rolling must shrink the emitted laminar C for
# filterbank x4 (the largest unrolled steady state in the sweep) by at
# least this factor versus the fully-unrolled build.
CODEGEN_SIZE_RATIO = 3.0
_CODEGEN_SIZE_BENCH = ("filterbank", 4)

_SEED_BASELINE = RESULTS_DIR / "compile_cost_seed.json"
_CURRENT_BASELINE = RESULTS_DIR / "compile_cost_baseline.json"


def _load_baseline(path) -> dict[str, float]:
    data = json.loads(path.read_text())
    return {key: value for key, value in data.items()
            if not key.startswith("_")}


def _static_len(ops) -> int:
    """Structural op count: a loop region is 1 + its body, once."""
    from repro.lir.ops import LoopRegion
    return sum(1 + len(op.body) if isinstance(op, LoopRegion) else 1
               for op in ops)


def measure(name: str, scale: int, full: bool = True) -> dict:
    """Compile one benchmark at one scale and time each stage.

    ``full=False`` (the CI check path) stops after lowering: code
    generation and interpretation are not part of the optimize-time gate.
    """
    start = time.perf_counter()
    stream = load_benchmark(name, scale=scale)
    frontend_seconds = time.perf_counter() - start

    start = time.perf_counter()
    lowered = stream.lower()
    lowering_seconds = time.perf_counter() - start
    opt_stats = lowered.opt_stats

    program = lowered.program
    result = {
        "frontend_s": frontend_seconds,
        "lowering_s": lowering_seconds,
        "optimize_s": opt_stats.optimize_seconds,
        "fixpoint_rounds": opt_stats.fixpoint_rounds,
        "converged": opt_stats.converged,
        # Executed steady ops per iteration (loop regions expanded):
        # comparable across re-rolled and unrolled builds.
        "steady_ops": program.steady_op_count_expanded,
        # Structural size — what the backends actually emit code for
        # (a region's body counts once, not per trip).
        "steady_ops_static": _static_len(program.steady),
        "regions": opt_stats.regions_rerolled,
    }
    if not full:
        return result
    fifo_c = stream.fifo_c()
    laminar_c = stream.laminar_c()
    record = evaluate_stream(name, stream, iterations=2)
    assert record.outputs_match, (name, scale)
    result.update({
        "fifo_c_kb": len(fifo_c) / 1024,
        "laminar_c_kb": len(laminar_c) / 1024,
        "speedup": record.speedup(I7_2600K),
    })
    return result


def codegen_size_ratio(name: str, scale: int) -> float:
    """Emitted laminar C bytes, fully unrolled over re-rolled."""
    from repro.opt import OptOptions
    stream = load_benchmark(name, scale=scale)
    rerolled = len(stream.laminar_c())
    unrolled = len(stream.laminar_c(opt=OptOptions(reroll=False)))
    return unrolled / rerolled


def build_report() -> tuple[str, dict]:
    seed = _load_baseline(_SEED_BASELINE)
    rows = []
    data: dict[tuple[str, int], dict] = {}
    for name in SWEEP_NAMES:
        for scale in SCALES:
            result = measure(name, scale)
            data[(name, scale)] = result
            seed_s = seed.get(f"{name}@{scale}")
            vs_seed = f"{seed_s / result['optimize_s']:.1f}x" \
                if seed_s and result["optimize_s"] > 0 else "n/a"
            rows.append([
                f"{name} x{scale}",
                str(result["steady_ops"]),
                str(result["steady_ops_static"]),
                f"{result['optimize_s'] * 1000:.0f} ms",
                vs_seed,
                f"{result['fifo_c_kb']:.1f} KB",
                f"{result['laminar_c_kb']:.1f} KB",
                f"{result['speedup']:.2f}x",
            ])
    table = format_table(
        ["benchmark/scale", "steady ops (exec)", "steady ops (emitted)",
         "optimize time", "vs seed", "FIFO C size", "LaminarIR C size",
         "modeled speedup (i7)"],
        rows,
        title="Extension: compile-time and code-size cost of the "
              "steady state (re-rolled loop regions)")
    return table, data


def _write_json(data: dict) -> None:
    payload = {f"{name}@{scale}": result
               for (name, scale), result in data.items()}
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "compile_cost.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")


def check(names: list[str]) -> int:
    """CI smoke: re-measure ``names`` and gate on the committed baseline.

    Measures every swept scale of each benchmark (lower+optimize only)
    and fails when any optimize time exceeds ``CHECK_TOLERANCE`` times
    the committed value — i.e. when the analysis-driven pass manager
    stops paying for itself.
    """
    baseline = _load_baseline(_CURRENT_BASELINE)
    failures = []
    for name in names:
        for scale in SCALES:
            key = f"{name}@{scale}"
            expected = baseline.get(key)
            if expected is None:
                print(f"compile-cost check: no baseline for {key}; "
                      f"regenerate {_CURRENT_BASELINE.name}",
                      file=sys.stderr)
                return 2
            result = measure(name, scale, full=False)
            actual = result["optimize_s"]
            status = "ok"
            if actual > expected * CHECK_TOLERANCE:
                status = "FAIL"
                failures.append(key)
            print(f"{key}: optimize {actual * 1000:.0f} ms "
                  f"(baseline {expected * 1000:.0f} ms, "
                  f"tolerance {CHECK_TOLERANCE:.0f}x) {status}")
            assert result["converged"], key
    bench, scale = _CODEGEN_SIZE_BENCH
    if bench in names:
        ratio = codegen_size_ratio(bench, scale)
        status = "ok" if ratio >= CODEGEN_SIZE_RATIO else "FAIL"
        print(f"{bench}@{scale}: laminar C unrolled/re-rolled "
              f"{ratio:.2f}x (gate {CODEGEN_SIZE_RATIO:.0f}x) {status}")
        if status == "FAIL":
            failures.append(f"{bench}@{scale} codegen size")
    if failures:
        print(f"compile-cost check failed for: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    return 0


def update_baseline() -> int:
    """Re-measure the whole sweep and rewrite the committed baseline."""
    data = _load_baseline(_CURRENT_BASELINE)
    comment = json.loads(_CURRENT_BASELINE.read_text()).get("_comment")
    for name in SWEEP_NAMES:
        for scale in SCALES:
            result = measure(name, scale, full=False)
            data[f"{name}@{scale}"] = round(result["optimize_s"], 4)
            print(f"{name}@{scale}: {result['optimize_s']:.4f}s")
    payload = {"_comment": comment, **data} if comment else data
    _CURRENT_BASELINE.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {_CURRENT_BASELINE}")
    return 0


def test_compile_cost(benchmark):
    benchmark(lambda: load_benchmark("fft", scale=2).lower())
    table, data = build_report()
    bench, size_scale = _CODEGEN_SIZE_BENCH
    size_ratio = codegen_size_ratio(bench, size_scale)
    headline = data[(bench, size_scale)]
    emit("compile_cost", table, data={
        "filterbank4_optimize_s": headline["optimize_s"],
        "filterbank4_steady_ops": headline["steady_ops"],
        "filterbank4_steady_ops_static": headline["steady_ops_static"],
        "filterbank4_laminar_c_kb": headline["laminar_c_kb"],
        "filterbank4_regions": headline["regions"],
        "filterbank4_codegen_size_ratio": round(size_ratio, 2),
    })
    _write_json(data)
    seed = _load_baseline(_SEED_BASELINE)
    for name in SWEEP_NAMES:
        # executed work grows with the problem...
        assert data[(name, 4)]["steady_ops"] >= \
            data[(name, 1)]["steady_ops"]
        # ...but the speedup does not collapse
        assert data[(name, 4)]["speedup"] > 1.0
    # The acceptance headline: the pass manager optimizes the largest
    # steady state (filterbank) at least 2x faster than the seed.
    assert data[("filterbank", 4)]["optimize_s"] * 2.0 <= \
        seed["filterbank@4"]
    # Re-rolling shrinks what the C backend emits for that same state.
    assert size_ratio >= CODEGEN_SIZE_RATIO, size_ratio


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check", nargs="+", metavar="NAME",
        help="CI smoke mode: measure just these benchmarks and fail on "
             f"a >{CHECK_TOLERANCE:.0f}x optimize-time regression")
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="re-measure the sweep and rewrite "
             "results/compile_cost_baseline.json")
    args = parser.parse_args(argv)
    if args.check:
        return check(args.check)
    if args.update_baseline:
        return update_baseline()
    table, data = build_report()
    _write_json(data)
    print(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
