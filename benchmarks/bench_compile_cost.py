"""E11 (extension) — the cost of compile-time queues.

LaminarIR trades run-time bookkeeping for compile time and code size:
the whole steady state is unrolled, so both grow with the schedule.
This driver sweeps benchmark problem sizes (scale 1x/2x/4x) and reports
lowering+optimization wall time, LaminarIR steady-section size, generated
C size for both backends, and the modeled speedup — showing that the win
persists while the compile-side costs grow roughly linearly with the
steady state.
"""

import os
import sys
import time

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import emit
from repro.evaluation import evaluate_stream, format_table
from repro.machine import I7_2600K
from repro.suite import load_benchmark

SWEEP_NAMES = ("fft", "bitonic_sort", "matrixmult", "autocor")
SCALES = (1, 2, 4)


def measure(name: str, scale: int) -> dict:
    start = time.perf_counter()
    stream = load_benchmark(name, scale=scale)
    frontend_seconds = time.perf_counter() - start

    start = time.perf_counter()
    lowered = stream.lower()
    lowering_seconds = time.perf_counter() - start

    fifo_c = stream.fifo_c()
    laminar_c = stream.laminar_c()
    record = evaluate_stream(name, stream, iterations=2)
    assert record.outputs_match, (name, scale)
    return {
        "frontend_s": frontend_seconds,
        "lowering_s": lowering_seconds,
        "steady_ops": len(lowered.program.steady),
        "fifo_c_kb": len(fifo_c) / 1024,
        "laminar_c_kb": len(laminar_c) / 1024,
        "speedup": record.speedup(I7_2600K),
    }


def build_report() -> tuple[str, dict]:
    rows = []
    data: dict[tuple[str, int], dict] = {}
    for name in SWEEP_NAMES:
        for scale in SCALES:
            result = measure(name, scale)
            data[(name, scale)] = result
            rows.append([
                f"{name} x{scale}",
                str(result["steady_ops"]),
                f"{result['lowering_s'] * 1000:.0f} ms",
                f"{result['fifo_c_kb']:.1f} KB",
                f"{result['laminar_c_kb']:.1f} KB",
                f"{result['speedup']:.2f}x",
            ])
    table = format_table(
        ["benchmark/scale", "LaminarIR steady ops", "lower+opt time",
         "FIFO C size", "LaminarIR C size", "modeled speedup (i7)"],
        rows,
        title="Extension: compile-time and code-size cost of the "
              "unrolled steady state")
    return table, data


def test_compile_cost(benchmark):
    benchmark(lambda: load_benchmark("fft", scale=2).lower())
    table, data = build_report()
    emit("compile_cost", table)
    for name in SWEEP_NAMES:
        # code size grows with the problem...
        assert data[(name, 4)]["steady_ops"] >= \
            data[(name, 1)]["steady_ops"]
        # ...but the speedup does not collapse
        assert data[(name, 4)]["speedup"] > 1.0


if __name__ == "__main__":
    print(build_report()[0])
