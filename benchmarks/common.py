"""Shared infrastructure for the experiment drivers.

Each ``bench_*.py`` regenerates one of the paper's tables/figures.  They
can run two ways:

* ``python benchmarks/bench_fig_speedup.py`` — print the table directly;
* ``pytest benchmarks/ --benchmark-only`` — time the underlying
  computation with pytest-benchmark and write the table to
  ``benchmarks/results/<name>.txt``.

Evaluations are cached per (benchmark, options) so the whole suite is
interpreted once per pytest session.

All drivers share the observability tracer (:mod:`repro.obs`): run any
of them with ``REPRO_TRACE=1`` to get a consistent per-stage breakdown
(compile / schedule / lower / optimize / interpret) printed at exit.
"""

from __future__ import annotations

import atexit
import json
from functools import lru_cache
from pathlib import Path

from repro.evaluation import BenchmarkEvaluation, evaluate_benchmark
from repro.lir import LoweringOptions
from repro.obs import export as obs_export
from repro.obs import ledger as obs_ledger
from repro.obs import metrics as obs_metrics
from repro.obs import trace
from repro.opt import OptOptions
from repro.suite import benchmark_names, load_benchmark

RESULTS_DIR = Path(__file__).parent / "results"

# Interpreted steady iterations per benchmark; small but enough to expose
# per-iteration counters exactly (they are iteration-linear).
EVAL_ITERATIONS = 4


@lru_cache(maxsize=None)
def evaluation(name: str, static_input: bool = False,
               eliminate_splitjoin: bool = True,
               optimize: bool = True,
               promote: bool = True) -> BenchmarkEvaluation:
    lowering = LoweringOptions(eliminate_splitjoin=eliminate_splitjoin)
    if not optimize:
        opt = OptOptions.none()
    elif not promote:
        opt = OptOptions(promote_state=False)
    else:
        opt = OptOptions()
    with trace.span("bench.evaluation", benchmark=name,
                    static_input=static_input,
                    eliminate_splitjoin=eliminate_splitjoin,
                    optimize=optimize, promote=promote):
        return evaluate_benchmark(name, iterations=EVAL_ITERATIONS,
                                  lowering=lowering, opt=opt,
                                  static_input=static_input)


@lru_cache(maxsize=None)
def compiled(name: str, static_input: bool = False):
    with trace.span("bench.compile", benchmark=name,
                    static_input=static_input):
        return load_benchmark(name, static_input=static_input)


def all_names() -> list[str]:
    return benchmark_names()


def emit(name: str, text: str, data: dict | None = None) -> None:
    """Print a report and persist it under benchmarks/results/.

    When ``data`` (a flat dict of headline numbers) is given, a
    machine-readable ``BENCH_<name>.json`` trajectory file is written
    next to the text report and the same numbers are appended to the
    persistent run ledger (kind ``bench``), so ``python -m repro
    history <name>`` and ``compare`` work on benchmark runs too.
    """
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is None:
        return
    body = obs_ledger.make_body("bench", name, metrics=data)
    (RESULTS_DIR / f"BENCH_{name}.json").write_text(
        json.dumps({"record_id": obs_ledger.record_id(body), "body": body},
                   indent=2, sort_keys=True) + "\n")
    try:
        obs_ledger.append(body)
    except OSError as error:  # pragma: no cover - disk-full etc.
        print(f"warning: ledger append failed: {error}")


def percent(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"


def _dump_trace_at_exit() -> None:  # pragma: no cover - exit hook
    roots = trace.get_trace()
    if not roots:
        return
    print()
    print(obs_export.format_tree(
        roots, obs_metrics.registry().as_dict(),
        title="observability trace (REPRO_TRACE)"))


if trace.is_enabled():
    atexit.register(_dump_trace_at_exit)
