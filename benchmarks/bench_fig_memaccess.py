"""E4 / memory-access figure.

Regenerates the paper's memory-access comparison: loads+stores per steady
iteration in the FIFO baseline (buffer + pointer + state traffic) vs
LaminarIR (remaining state traffic plus modeled register-spill traffic on
the i7-2600K register file).

Paper headline: memory accesses reduced by more than 60%.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, emit, evaluation, percent
from repro.evaluation import format_table
from repro.machine import I7_2600K


def build_report() -> tuple[str, float]:
    rows = []
    reductions = []
    for name in all_names():
        record = evaluation(name)
        iters = record.iterations
        fifo_mem = record.fifo_counters.memory_accesses / iters
        laminar_raw = record.laminar_counters.memory_accesses / iters
        laminar_model = record.memory_accesses_modeled(
            I7_2600K, laminar=True) / iters
        reduction = record.memory_reduction_modeled(I7_2600K)
        reductions.append(reduction)
        rows.append([
            name,
            f"{fifo_mem:.0f}",
            f"{laminar_raw:.0f}",
            f"{laminar_model:.0f}",
            percent(reduction),
        ])
    average = sum(reductions) / len(reductions)
    rows.append(["average", "", "", "", percent(average)])
    table = format_table(
        ["benchmark", "FIFO mem/iter", "LaminarIR mem/iter (counted)",
         "LaminarIR mem/iter (+spills, i7 model)", "reduction"],
        rows,
        title="Figure: memory accesses per steady iteration "
              "(paper: >60% reduction)")
    return table, average


def test_memory_reduction(benchmark):
    record = evaluation("filterbank")
    benchmark(lambda: record.memory_accesses_modeled(I7_2600K, True))
    table, average = build_report()
    emit("fig_memaccess", table,
         data={"reduction_avg": average,
               **{f"reduction.{name}":
                  evaluation(name).memory_reduction_modeled(I7_2600K)
                  for name in all_names()}})
    assert average > 0.60  # the paper's claim
    for name in all_names():
        assert evaluation(name).memory_reduction_modeled(I7_2600K) > 0.0


if __name__ == "__main__":
    print(build_report()[0])
