"""E5 / energy table.

Regenerates the paper's energy-savings result on the Intel i7-2600K
model: per-iteration dynamic+static energy of the FIFO baseline vs
LaminarIR.  Paper headline: energy savings of up to 93.6% on the
i7-2600K.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.common import all_names, emit, evaluation, percent
from repro.evaluation import format_table
from repro.machine import I7_2600K, PLATFORMS


def build_report() -> tuple[str, float]:
    rows = []
    best = 0.0
    for name in all_names():
        record = evaluation(name)
        iters = record.iterations
        fifo_energy = record.energy(I7_2600K, laminar=False) / iters
        laminar_energy = record.energy(I7_2600K, laminar=True) / iters
        saving = record.energy_saving(I7_2600K)
        best = max(best, saving)
        rows.append([
            name,
            f"{fifo_energy / 1e3:.2f}",
            f"{laminar_energy / 1e3:.2f}",
            percent(saving),
        ])
    rows.append(["maximum", "", "", percent(best)])
    table = format_table(
        ["benchmark", "FIFO nJ/iter (i7 model)",
         "LaminarIR nJ/iter (i7 model)", "saving"],
        rows,
        title="Table: modeled energy on Intel i7-2600K "
              "(paper: up to 93.6% savings)")
    return table, best


def test_energy_savings(benchmark):
    record = evaluation("filterbank")
    benchmark(lambda: record.energy(I7_2600K, laminar=True))
    table, best = build_report()
    emit("table_energy", table,
         data={"energy_saving_max": best,
               **{f"energy_saving.{name}":
                  evaluation(name).energy_saving(I7_2600K)
                  for name in all_names()}})
    # shape: the best benchmark saves most of its energy, every benchmark
    # saves something, and savings hold on the other platforms too
    assert best > 0.7
    for name in all_names():
        rec = evaluation(name)
        for model in PLATFORMS.values():
            assert rec.energy_saving(model) > 0.0, (name, model.name)


if __name__ == "__main__":
    print(build_report()[0])
