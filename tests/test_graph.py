"""Tests for elaboration (builder) and flattening."""

import pytest

from repro.frontend import parse_and_check
from repro.frontend.errors import ElaborationError
from repro.frontend.types import ArrayType, FLOAT
from repro.graph import (FeedbackLoopNode, FilterNode, PipelineNode,
                         SplitJoinNode, elaborate, flatten, graph_stats)
from repro.graph.nodes import FilterVertex, JoinerVertex, SplitterVertex

PREAMBLE = """
float->float filter Id() { work push 1 pop 1 { push(pop()); } }
float->float filter Scale(float k) { work push 1 pop 1 { push(pop() * k); } }
float->float filter Win(int n) {
  work push 1 pop 1 peek n {
    float s = 0;
    for (int i = 0; i < n; i++) s += peek(i);
    push(s); pop();
  }
}
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


def build(top):
    return elaborate(parse_and_check(PREAMBLE + top))


def build_flat(top):
    return flatten(build(top))


class TestElaboration:
    def test_pipeline_children(self):
        root = build("void->void pipeline P { add Src(); add Id(); "
                     "add Snk(); }")
        assert isinstance(root, PipelineNode)
        assert [type(c).__name__ for c in root.children] == \
            ["FilterNode", "FilterNode", "FilterNode"]

    def test_parameter_binding(self):
        root = build("void->void pipeline P { add Src(); add Scale(2.5); "
                     "add Snk(); }")
        scale = root.children[1]
        assert isinstance(scale, FilterNode)
        assert scale.env["k"] == 2.5

    def test_int_arg_coerced_to_float_param(self):
        root = build("void->void pipeline P { add Src(); add Scale(3); "
                     "add Snk(); }")
        assert root.children[1].env["k"] == 3.0
        assert isinstance(root.children[1].env["k"], float)

    def test_rates_resolved(self):
        root = build("void->void pipeline P { add Src(); add Win(5); "
                     "add Snk(); }")
        win = root.children[1]
        assert (win.work.push, win.work.pop, win.work.peek) == (1, 1, 5)

    def test_peek_defaults_to_pop(self):
        root = build("void->void pipeline P { add Src(); add Id(); "
                     "add Snk(); }")
        assert root.children[1].work.peek == 1

    def test_composite_for_loop(self):
        root = build("void->void pipeline P { add Src(); "
                     "for (int i = 0; i < 3; i++) add Scale(i); "
                     "add Snk(); }")
        scales = root.children[1:4]
        assert [s.env["k"] for s in scales] == [0.0, 1.0, 2.0]

    def test_composite_if(self):
        root = build("void->void pipeline P { int n = 2; add Src(); "
                     "if (n > 1) add Id(); else add Scale(9); add Snk(); }")
        assert root.children[1].decl.name == "Id"

    def test_instance_names_unique(self):
        root = build("void->void pipeline P { add Src(); add Id(); "
                     "add Id(); add Snk(); }")
        names = [c.name for c in root.children]
        assert len(set(names)) == len(names)

    def test_field_array_sizes_resolved(self):
        source = PREAMBLE + """
        float->float filter Tab(int n) {
          float[n] t;
          work push 1 pop 1 { push(pop() + t[0]); }
        }
        void->void pipeline P { add Src(); add Tab(7); add Snk(); }
        """
        root = elaborate(parse_and_check(source))
        tab = root.children[1]
        ty = tab.field_types["t"]
        assert isinstance(ty, ArrayType)
        assert ty.size == 7

    def test_splitjoin_weights(self):
        root = build("void->void pipeline P { add Src(); add splitjoin { "
                     "split duplicate; add Id(); add Id(); "
                     "join roundrobin(2, 3); }; add Snk(); }")
        sj = root.children[1]
        assert isinstance(sj, SplitJoinNode)
        assert sj.join_weights == [2, 3]

    def test_single_weight_shorthand(self):
        root = build("void->void pipeline P { add Src(); add splitjoin { "
                     "split roundrobin(2); add Id(); add Id(); add Id(); "
                     "join roundrobin; }; add Snk(); }")
        sj = root.children[1]
        assert sj.split_weights == [2, 2, 2]
        assert sj.join_weights == [1, 1, 1]

    def test_weight_count_mismatch(self):
        with pytest.raises(ElaborationError, match="weight"):
            build("void->void pipeline P { add Src(); add splitjoin { "
                  "split roundrobin(1, 2, 3); add Id(); add Id(); "
                  "join roundrobin; }; add Snk(); }")

    def test_type_mismatch_in_pipeline(self):
        source = """
        void->int filter ISrc() { work push 1 { push(1); } }
        float->void filter FSnk() { work pop 1 { println(pop()); } }
        void->void pipeline P { add ISrc(); add FSnk(); }
        """
        with pytest.raises(ElaborationError, match="produces int"):
            elaborate(parse_and_check(source))

    def test_negative_rate_rejected(self):
        source = PREAMBLE + """
        float->float filter Bad(int n) {
          work push n pop 1 { push(pop()); }
        }
        void->void pipeline P { add Src(); add Bad(0 - 1); add Snk(); }
        """
        with pytest.raises(ElaborationError, match="non-negative"):
            elaborate(parse_and_check(source))

    def test_peek_less_than_pop_rejected(self):
        source = PREAMBLE + """
        float->float filter Bad() {
          work push 1 pop 3 peek 2 { push(pop()); pop(); pop(); }
        }
        void->void pipeline P { add Src(); add Bad(); add Snk(); }
        """
        with pytest.raises(ElaborationError, match="peek rate 2 < pop"):
            elaborate(parse_and_check(source))

    def test_anonymous_capture(self):
        root = build("void->void pipeline P { int k = 4; add Src(); "
                     "add pipeline { add Scale(k); }; add Snk(); }")
        inner = root.children[1]
        assert isinstance(inner, PipelineNode)
        assert inner.children[0].env["k"] == 4.0

    def test_feedbackloop_elaborates(self):
        source = PREAMBLE + """
        float->float filter Mix() {
          work push 1 pop 2 { push((peek(0) + peek(1)) / 2); pop(); pop(); }
        }
        void->void pipeline P {
          add Src();
          add feedbackloop {
            join roundrobin(1, 1);
            body Mix();
            loop Scale(0.5);
            split roundrobin(1, 1);
            enqueue 0.0;
          };
          add Snk();
        }
        """
        root = elaborate(parse_and_check(source))
        loop = root.children[1]
        assert isinstance(loop, FeedbackLoopNode)
        assert loop.enqueued == [0.0]


class TestFlattening:
    def test_linear_pipeline_shape(self, ):
        graph = build_flat("void->void pipeline P { add Src(); add Id(); "
                           "add Snk(); }")
        assert len(graph.vertices) == 3
        assert len(graph.channels) == 2

    def test_splitjoin_shape(self):
        graph = build_flat(
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add Id(); add Id(); join roundrobin; }; "
            "add Snk(); }")
        stats = graph_stats(graph)
        assert stats == {"filters": 4, "splitters": 1, "joiners": 1,
                         "channels": 6, "peeking_filters": 0}

    def test_duplicate_splitter_weights_filled(self):
        graph = build_flat(
            "void->void pipeline P { add Src(); add splitjoin { "
            "split duplicate; add Id(); add Id(); add Id(); "
            "join roundrobin; }; add Snk(); }")
        splitter = graph.splitters[0]
        assert splitter.weights == [1, 1, 1]

    def test_ports_fully_connected(self, demo_stream):
        for vertex in demo_stream.graph.vertices:
            assert all(ch is not None for ch in vertex.inputs)
            assert all(ch is not None for ch in vertex.outputs)

    def test_topological_order_respects_edges(self):
        graph = build_flat("void->void pipeline P { add Src(); add Id(); "
                           "add Snk(); }")
        order = graph.topological_order()
        position = {v: i for i, v in enumerate(order)}
        for channel in graph.channels:
            if not channel.initial:
                assert position[channel.src] < position[channel.dst]

    def test_feedbackloop_flat_shape(self):
        source = PREAMBLE + """
        float->float filter Mix() {
          work push 1 pop 2 { push((peek(0) + peek(1)) / 2); pop(); pop(); }
        }
        void->void pipeline P {
          add Src();
          add feedbackloop {
            join roundrobin(1, 1);
            body Mix();
            loop Scale(0.5);
            split roundrobin(1, 1);
            enqueue 0.0;
          };
          add Snk();
        }
        """
        graph = flatten(elaborate(parse_and_check(source)))
        joiners = graph.joiners
        assert len(joiners) == 1
        back = [ch for ch in graph.channels if ch.initial]
        assert len(back) == 1
        assert back[0].dst is joiners[0]

    def test_feedbackloop_without_enqueue_rejected(self):
        source = PREAMBLE + """
        float->float filter Mix() {
          work push 1 pop 2 { push(peek(0)); pop(); pop(); }
        }
        void->void pipeline P {
          add Src();
          add feedbackloop {
            join roundrobin(1, 1);
            body Mix();
            loop Scale(0.5);
            split roundrobin(1, 1);
          };
          add Snk();
        }
        """
        with pytest.raises(ElaborationError, match="no enqueued"):
            flatten(elaborate(parse_and_check(source)))

    def test_filter_vertex_rates(self):
        graph = build_flat("void->void pipeline P { add Src(); add Win(4); "
                           "add Snk(); }")
        win = [v for v in graph.filters if "Win" in v.name][0]
        assert win.pop_rate(0) == 1
        assert win.peek_rate(0) == 4
        assert win.push_rate(0) == 1

    def test_splitter_vertex_rates(self):
        graph = build_flat(
            "void->void pipeline P { add Src(); add splitjoin { "
            "split roundrobin(2, 3); add Id(); add Id(); "
            "join roundrobin(1, 1); }; add Snk(); }")
        splitter = graph.splitters[0]
        assert splitter.pop_rate(0) == 5
        assert splitter.push_rate(0) == 2
        assert splitter.push_rate(1) == 3
        joiner = graph.joiners[0]
        assert joiner.pop_rate(1) == 1
        assert joiner.push_rate(0) == 2
