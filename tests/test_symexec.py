"""Focused tests for the symbolic executor: constant folding during
unrolling, control-flow resolution, helpers, arrays, and limits."""

import pytest

from repro import compile_source
from repro.frontend.errors import LoweringError
from repro.lir import (BinOp, CallOp, LoweringOptions, PrintOp, SelectOp,
                       lower)
from repro.lir.ops import CastOp, LoadOp, StoreOp

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
void->int filter ISrc() { work push 1 { push(randi(100)); } }
int->void filter ISnk() { work pop 1 { println(pop()); } }
"""


def steady_of(body, lowering=None):
    stream = compile_source(PREAMBLE + body)
    return lower(stream.schedule, stream.source, lowering).steady


def op_kinds(ops):
    return [type(op).__name__ for op in ops]


class TestEagerFolding:
    def test_const_arith_produces_no_ops(self):
        steady = steady_of(
            "float->float filter F() { work push 1 pop 1 { "
            "float k = 2 * 3 + 4; push(pop() + k); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        binops = [op for op in steady if isinstance(op, BinOp)]
        assert len(binops) == 1  # only the dynamic add

    def test_const_intrinsics_fold(self):
        steady = steady_of(
            "float->float filter F() { work push 1 pop 1 { "
            "push(pop() * sqrt(16.0)); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert not any(isinstance(op, CallOp) and op.name == "sqrt"
                       for op in steady)

    def test_parameter_substitution(self):
        steady = steady_of(
            "float->float filter F(float k) { work push 1 pop 1 { "
            "push(pop() * (k + 1)); } }"
            "void->void pipeline P { add Src(); add F(2.0); add Snk(); }")
        muls = [op for op in steady
                if isinstance(op, BinOp) and op.op == "*"]
        assert len(muls) == 1
        assert getattr(muls[0].rhs, "value", None) == 3.0

    def test_static_branch_taken(self):
        steady = steady_of(
            "float->float filter F(int mode) { work push 1 pop 1 { "
            "if (mode == 1) push(pop() * 10); else push(pop() * 20); } }"
            "void->void pipeline P { add Src(); add F(1); add Snk(); }")
        muls = [op for op in steady
                if isinstance(op, BinOp) and op.op == "*"]
        assert getattr(muls[0].rhs, "value", None) == 10.0


class TestLoops:
    def test_nested_loops_unroll(self):
        steady = steady_of(
            "float->float filter F() { work push 1 pop 1 { float s = 0; "
            "for (int i = 0; i < 3; i++) "
            "for (int j = 0; j < 2; j++) s += peek(0) * (i + j + 1); "
            "push(s); pop(); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        muls = [op for op in steady
                if isinstance(op, BinOp) and op.op == "*"]
        assert len(muls) == 6

    def test_break_stops_unrolling(self):
        steady = steady_of(
            "float->float filter F() { work push 1 pop 1 { float s = 0; "
            "for (int i = 0; i < 100; i++) { if (i == 2) break; "
            "s += peek(0); } push(s); pop(); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        adds = [op for op in steady
                if isinstance(op, BinOp) and op.op == "+"]
        assert len(adds) == 2

    def test_continue_skips(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { work push 1 pop 1 { float s = 0; "
            "for (int i = 0; i < 4; i++) { if (i % 2 == 0) continue; "
            "s += peek(0) * i; } push(s); pop(); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        fifo = stream.run_fifo(3)
        laminar = stream.run_laminar(3)
        assert fifo.outputs == laminar.outputs

    def test_runaway_loop_detected(self):
        from repro.faults.limits import ResourceExhausted
        with pytest.raises(ResourceExhausted) as info:
            steady_of(
                "float->float filter F() { work push 1 pop 1 { "
                "int i = 0; while (i >= 0) { i = i + 1; } "
                "push(pop()); } }"
                "void->void pipeline P { add Src(); add F(); add Snk(); }",
                LoweringOptions(unroll_limit=1000))
        error = info.value
        assert error.resource == "unroll_limit"
        assert error.limit == 1000
        assert "filter 'F'" in error.where
        assert "--reroll" in str(error)
        # Still a CompileError subclass, so existing except clauses and
        # the CLI's exit-code mapping keep working.
        from repro.frontend.errors import CompileError
        assert isinstance(error, CompileError)


class TestIfConversion:
    def test_select_emitted(self):
        steady = steady_of(
            "int->int filter F() { work push 1 pop 1 { int v = pop(); "
            "int r = 0; if (v > 50) r = 1; push(r); } }"
            "void->void pipeline P { add ISrc(); add F(); add ISnk(); }")
        assert any(isinstance(op, SelectOp) for op in steady)

    def test_nested_dynamic_ifs(self):
        stream = compile_source(
            PREAMBLE +
            "int->int filter F() { work push 1 pop 1 { int v = pop(); "
            "int r = 0; if (v > 50) { if (v > 75) r = 2; else r = 1; } "
            "push(r); } }"
            "void->void pipeline P { add ISrc(); add F(); add ISnk(); }")
        assert stream.run_fifo(8).outputs == stream.run_laminar(8).outputs

    def test_mixed_static_dynamic(self):
        stream = compile_source(
            PREAMBLE +
            "int->int filter F(int mode) { work push 1 pop 1 { "
            "int v = pop(); int r = 0; "
            "if (mode == 1) { if (v > 50) r = v; } else r = 7; "
            "push(r); } }"
            "void->void pipeline P { add ISrc(); add F(1); add ISnk(); }")
        assert stream.run_fifo(6).outputs == stream.run_laminar(6).outputs

    def test_conditional_field_store_if_converts(self):
        # scalar field writes under dynamic conditions are legal: the
        # cached field merges through a select like a local
        source = (
            "int->int filter Peak() { int s; work push 1 pop 1 { "
            "int v = pop(); if (v > s) s = v; push(s); } }"
            "void->void pipeline P { add ISrc(); add Peak(); "
            "add ISnk(); }")
        stream = compile_source(PREAMBLE + source)
        fifo = stream.run_fifo(10)
        laminar = stream.run_laminar(10)
        assert fifo.outputs == laminar.outputs
        # the peak tracker really tracks: outputs are non-decreasing
        assert fifo.outputs == sorted(fifo.outputs)

    def test_conditional_store_in_both_branches(self):
        source = (
            "float->float filter AGC() { float gain; "
            "init { gain = 1; } work push 1 pop 1 { "
            "float v = pop() * gain; "
            "if (v > 0.8) gain = gain * 0.9; "
            "else gain = gain * 1.01; push(v); } }"
            "void->void pipeline P { add Src(); add AGC(); add Snk(); }")
        stream = compile_source(PREAMBLE + source)
        assert stream.run_fifo(12).outputs == \
            stream.run_laminar(12).outputs

    def test_conditional_store_one_flush_per_firing(self):
        steady = steady_of(
            "int->int filter Peak() { int s; work push 1 pop 1 { "
            "int v = pop(); if (v > s) s = v; push(s); } }"
            "void->void pipeline P { add ISrc(); add Peak(); "
            "add ISnk(); }",
            LoweringOptions())
        from repro.lir.ops import StoreOp
        stores = [op for op in steady if isinstance(op, StoreOp)]
        assert len(stores) <= 1  # one flush, not one per branch

    def test_conditional_array_field_store_still_rejected(self):
        # array fields stay in memory; conditional element stores would
        # need predicated memory writes, which SDF lowering rejects
        with pytest.raises(LoweringError, match="field store under"):
            steady_of(
                "int->int filter F() { int[4] s; work push 1 pop 1 { "
                "int v = pop(); if (v > 50) s[0] = v; push(s[0]); } }"
                "void->void pipeline P { add ISrc(); add F(); "
                "add ISnk(); }")

    def test_rng_under_dynamic_cond_rejected(self):
        with pytest.raises(LoweringError, match="randi under"):
            steady_of(
                "int->int filter F() { work push 1 pop 1 { "
                "int v = pop(); int r = 0; if (v > 50) r = randi(3); "
                "push(r); } }"
                "void->void pipeline P { add ISrc(); add F(); "
                "add ISnk(); }")

    def test_print_under_dynamic_cond_rejected(self):
        with pytest.raises(LoweringError, match="print under"):
            steady_of(
                "int->void filter F() { work pop 1 { int v = pop(); "
                "if (v > 50) println(v); } }"
                "void->void pipeline P { add ISrc(); add F(); }")


class TestHelpers:
    def test_nested_helper_calls(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { "
            "float sq(float x) { return x * x; } "
            "float quad(float x) { return sq(sq(x)); } "
            "work push 1 pop 1 { push(quad(pop())); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert stream.run_fifo(4).outputs == stream.run_laminar(4).outputs

    def test_recursion_rejected(self):
        with pytest.raises(LoweringError, match="call depth"):
            steady_of(
                "float->float filter F() { "
                "float f(float x) { return f(x) + 1; } "
                "work push 1 pop 1 { push(f(pop())); } }"
                "void->void pipeline P { add Src(); add F(); add Snk(); }")

    def test_helper_with_early_returns(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { "
            "float clamp(float x) { "
            "  if (x > 0.75) return 0.75; "
            "  if (x < 0.25) return 0.25; "
            "  return x; } "
            "work push 1 pop 1 { push(clamp(pop())); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        fifo = stream.run_fifo(10)
        assert fifo.outputs == stream.run_laminar(10).outputs
        assert all(0.25 <= v <= 0.75 for v in fifo.outputs)

    def test_helper_missing_return_detected(self):
        # A non-void helper that can fall off the end: caught when the
        # falling-off path actually executes at lowering time.
        with pytest.raises(LoweringError, match="fell off the end"):
            steady_of(
                "float->float filter F() { "
                "float bad(float x) { int i = 0; i = i + 1; } "
                "work push 1 pop 1 { push(bad(pop())); } }"
                "void->void pipeline P { add Src(); add F(); add Snk(); }")


class TestArrays:
    def test_local_array_scalarized(self):
        steady = steady_of(
            "float->float filter F() { work push 1 pop 1 { "
            "float[4] t; t[0] = pop(); t[1] = t[0] * 2; "
            "t[2] = t[1] * 2; t[3] = t[2] * 2; push(t[3]); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert not any(isinstance(op, (LoadOp, StoreOp)) for op in steady)

    def test_local_array_const_out_of_bounds(self):
        with pytest.raises(LoweringError, match="out of bounds"):
            steady_of(
                "float->float filter F() { work push 1 pop 1 { "
                "float[2] t; t[5] = pop(); push(t[0]); } }"
                "void->void pipeline P { add Src(); add F(); add Snk(); }")

    def test_dynamic_local_index_rejected(self):
        with pytest.raises(LoweringError, match="dynamic index into a "
                                                "local array"):
            steady_of(
                "int->int filter F() { work push 1 pop 1 { "
                "int[4] t; t[0] = 1; push(t[pop() & 3]); } }"
                "void->void pipeline P { add ISrc(); add F(); "
                "add ISnk(); }")

    def test_dynamic_field_index_allowed(self):
        stream = compile_source(
            PREAMBLE +
            "int->int filter F() { int[4] t; "
            "init { for (int i = 0; i < 4; i++) t[i] = i * 10; } "
            "work push 1 pop 1 { push(t[pop() & 3]); } }"
            "void->void pipeline P { add ISrc(); add F(); add ISnk(); }")
        assert stream.run_fifo(8).outputs == stream.run_laminar(8).outputs

    def test_multidim_local_array(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { work push 1 pop 1 { "
            "float[2][2] m; m[0][0] = pop(); m[1][1] = m[0][0] * 3; "
            "push(m[1][1]); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert stream.run_fifo(4).outputs == stream.run_laminar(4).outputs

    def test_casts_emitted_for_mixed_types(self):
        steady = steady_of(
            "int->int filter F() { work push 1 pop 1 { "
            "float f = pop() * 0.5; push((int)f); } }"
            "void->void pipeline P { add ISrc(); add F(); add ISnk(); }")
        assert any(isinstance(op, CastOp) for op in steady)


class TestPredicatedReturns:
    def test_both_branches_return(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { "
            "float pick(float x) { "
            "  if (x > 0.5) return x * 2; else return x * 3; } "
            "work push 1 pop 1 { push(pick(pop())); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert stream.run_fifo(10).outputs == stream.run_laminar(10).outputs

    def test_chain_of_early_returns(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { "
            "float bucket(float x) { "
            "  if (x < 0.25) return 1; "
            "  if (x < 0.5) return 2; "
            "  if (x < 0.75) return 3; "
            "  return 4; } "
            "work push 1 pop 1 { push(bucket(pop())); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        fifo = stream.run_fifo(12)
        assert fifo.outputs == stream.run_laminar(12).outputs
        assert set(fifo.outputs) <= {1.0, 2.0, 3.0, 4.0}

    def test_computation_after_dynamic_return(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { "
            "float f(float x) { "
            "  if (x > 0.5) return 0.0; "
            "  float y = x * 10; "
            "  return y + 1; } "
            "work push 1 pop 1 { push(f(pop())); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert stream.run_fifo(10).outputs == stream.run_laminar(10).outputs

    def test_dynamic_break_rejected(self):
        with pytest.raises(LoweringError, match="break under"):
            steady_of(
                "int->int filter F() { work push 1 pop 1 { int v = pop();"
                " int s = 0; for (int i = 0; i < 4; i++) { "
                "if (v > 50) break; s = s + i; } push(s); } }"
                "void->void pipeline P { add ISrc(); add F(); "
                "add ISnk(); }")

    def test_dynamic_continue_rejected(self):
        with pytest.raises(LoweringError, match="continue under"):
            steady_of(
                "int->int filter F() { work push 1 pop 1 { int v = pop();"
                " int s = 0; for (int i = 0; i < 4; i++) { "
                "if (v > 50) continue; s = s + i; } push(s); } }"
                "void->void pipeline P { add ISrc(); add F(); "
                "add ISnk(); }")

    def test_push_after_dynamic_return_rejected(self):
        # a void helper that may have returned cannot guard later pushes
        with pytest.raises(LoweringError, match="data-dependent"):
            steady_of(
                "float->float filter F() { "
                "float f(float x) { if (x > 0.5) return 1.0; "
                "return randf(); } "
                "work push 1 pop 1 { push(f(pop())); } }"
                "void->void pipeline P { add Src(); add F(); add Snk(); }")


class TestFieldCaching:
    def test_field_write_after_dynamic_return_predicated(self):
        # the early-exit path must not bump the counter field
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { float count; "
            "float tally(float x) { "
            "  if (x > 0.5) return 0.0; "
            "  count = count + 1; "
            "  return count; } "
            "work push 1 pop 1 { push(tally(pop())); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        fifo = stream.run_fifo(12)
        assert fifo.outputs == stream.run_laminar(12).outputs

    def test_cache_invalidated_across_steady_boundary(self):
        # the accumulator must be re-loaded at the top of the steady body
        # (its value is loop-carried), not reuse the init-section value
        stream = compile_source(
            PREAMBLE +
            "float->float filter Acc() { float s; "
            "work push 1 pop 1 { s = s + pop(); push(s); } }"
            "void->void pipeline P { add Src(); add Acc(); add Snk(); }")
        from repro import OptOptions
        unopt = stream.run_laminar(6, opt=OptOptions.none())
        fifo = stream.run_fifo(6)
        assert unopt.outputs == fifo.outputs

    def test_repeated_reads_load_once(self):
        steady = steady_of(
            "float->float filter F() { float g = 2.0; "
            "work push 1 pop 1 { push(pop() * g + g + g); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }",
            LoweringOptions())
        loads = [op for op in steady if isinstance(op, LoadOp)]
        assert len(loads) <= 1

    def test_read_then_conditional_write_then_read(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { float m; "
            "work push 1 pop 1 { float v = pop(); "
            "float before = m; "
            "if (v > before) m = v; "
            "push(m - before); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        assert stream.run_fifo(10).outputs == \
            stream.run_laminar(10).outputs
