"""Tests for the extension features: do-while loops, steady-state
execution scaling, and constant-carry specialization."""

import pytest

from repro import (LoweringOptions, OptOptions, check_equivalence,
                   compile_source)
from repro.frontend import ast_nodes as ast
from repro.frontend.errors import LoweringError
from repro.frontend.parser import parse
from repro.lir import verify
from repro.opt.carries import specialize_constant_carries

PREAMBLE = """
void->float filter Src() { work push 1 { push(randf()); } }
float->void filter Snk() { work pop 1 { println(pop()); } }
"""


class TestDoWhile:
    def test_parses(self):
        program = parse(
            "int->int filter F { work push 1 pop 1 { int i = 0; "
            "do { i++; } while (i < 3); push(pop() + i); } }")
        body = program.stream("F").work.body
        loop = body.stmts[1]
        assert isinstance(loop, ast.DoWhileStmt)

    def test_executes_at_least_once(self):
        stream = compile_source(
            "void->int filter S() { work push 1 { push(0); } }"
            "int->int filter F() { work push 1 pop 1 { int n = pop(); "
            "int count = 0; do { count++; } while (count < n); "
            "push(count); } }"
            .replace("while (count < n)", "while (false)")
            + "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add F(); add P(); }")
        assert stream.run_fifo(2).outputs == [1, 1]

    def test_static_do_while_lowers(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { work push 1 pop 1 { "
            "float v = pop(); int i = 0; "
            "do { v = v * 0.5; i++; } while (i < 3); push(v); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        report = check_equivalence(stream, iterations=5)
        assert report.matches

    def test_dynamic_do_while_rejected_by_lowering(self):
        stream = compile_source(
            "void->int filter S() { work push 1 { push(randi(9) + 1); } }"
            "int->int filter F() { work push 1 pop 1 { int n = pop(); "
            "int c = 0; do { c++; n = n - 1; } while (n > 0); "
            "push(c); } }"
            "int->void filter P() { work pop 1 { println(pop()); } }"
            "void->void pipeline Top { add S(); add F(); add P(); }")
        # the baseline interpreter handles it
        assert len(stream.run_fifo(3).outputs) == 3
        # the lowering rejects the data-dependent trip count
        with pytest.raises(LoweringError, match="not compile-time"):
            stream.lower()

    def test_break_inside_do_while(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { work push 1 pop 1 { "
            "float v = pop(); int i = 0; "
            "do { if (i == 2) break; v = v + 1; i++; } while (true); "
            "push(v); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        report = check_equivalence(stream, iterations=4)
        assert report.matches

    def test_emitted_c_contains_do_while(self, tmp_path):
        stream = compile_source(
            PREAMBLE +
            "float->float filter F() { work push 1 pop 1 { "
            "float v = pop(); int i = 0; "
            "do { v = v * 0.5; i++; } while (i < 3); push(v); } }"
            "void->void pipeline P { add Src(); add F(); add Snk(); }")
        code = stream.fifo_c()
        assert "do" in code and "while (" in code


class TestExecutionScaling:
    @pytest.fixture(scope="class")
    def stream(self):
        return compile_source(
            PREAMBLE +
            "float->float filter W() { work push 1 pop 1 peek 4 { "
            "push(peek(0) + peek(3)); pop(); } }"
            "void->void pipeline P { add Src(); add W(); add Snk(); }")

    @pytest.mark.parametrize("multiplier", [1, 2, 3, 4])
    def test_outputs_invariant_under_scaling(self, stream, multiplier):
        base = stream.run_fifo(12)
        scaled = stream.run_laminar(
            12, lowering=LoweringOptions(steady_multiplier=multiplier))
        assert scaled.outputs == base.outputs

    def test_body_contains_k_iterations(self, stream):
        one = stream.lower(LoweringOptions(steady_multiplier=1)).program
        four = stream.lower(LoweringOptions(steady_multiplier=4)).program
        assert four.prints_per_iteration == 4 * one.prints_per_iteration

    def test_carries_unchanged_by_scaling(self, stream):
        one = stream.lower(LoweringOptions(steady_multiplier=1)).program
        four = stream.lower(LoweringOptions(steady_multiplier=4)).program
        assert len(one.carry_params) == len(four.carry_params)

    def test_scaled_program_verifies(self, stream):
        verify(stream.lower(LoweringOptions(steady_multiplier=8)).program)

    def test_iterations_must_divide(self, stream):
        with pytest.raises(ValueError, match="multiple of"):
            stream.run_laminar(
                5, lowering=LoweringOptions(steady_multiplier=2))

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            LoweringOptions(steady_multiplier=0)


class TestCarrySpecialization:
    def test_invariant_constant_carry_removed(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter Mix() { work push 1 pop 2 { "
            "push(peek(0) + peek(1)); pop(); pop(); } }"
            "float->float filter ZeroPad() { work push 2 pop 1 { "
            "push(pop()); push(0); } }"
            "void->void pipeline P { add Src(); add ZeroPad(); "
            "add Mix(); add Snk(); }")
        program = stream.lower().program
        # the padded zeros are consumed in-iteration; any constant carry
        # that is invariant must have been specialized away
        for init, nxt in zip(program.carry_inits, program.carry_nexts):
            assert not (init == nxt and not hasattr(init, "id"))

    def test_specialization_preserves_outputs(self):
        stream = compile_source(
            PREAMBLE +
            "float->float filter D() { "
            "prework push 2 { push(0); push(0); } "
            "work push 1 pop 1 { push(pop()); } }"
            "void->void pipeline P { add Src(); add D(); add Snk(); }")
        with_spec = stream.run_laminar(8, opt=OptOptions())
        without = stream.run_laminar(
            8, opt=OptOptions(carry_specialization=False))
        assert with_spec.outputs == without.outputs

    def test_zero_safe(self):
        # -0.0 vs 0.0 must not be conflated
        from repro.lir import Program, Temp, const_float
        from repro.frontend.types import FLOAT
        program = Program(name="t")
        param = Temp(FLOAT)
        program.carry_params = [param]
        program.carry_inits = [const_float(0.0)]
        program.carry_nexts = [const_float(-0.0)]
        assert specialize_constant_carries(program) == 0

    def test_bool_vs_int_not_conflated(self):
        from repro.lir import Program, Temp, Const
        from repro.frontend.types import INT
        program = Program(name="t")
        param = Temp(INT)
        program.carry_params = [param]
        program.carry_inits = [Const(INT, True)]
        program.carry_nexts = [Const(INT, 1)]
        assert specialize_constant_carries(program) == 0

    def test_param_identity_next(self):
        from repro.lir import Program, Temp, const_int
        from repro.frontend.types import INT
        program = Program(name="t")
        param = Temp(INT)
        program.carry_params = [param]
        program.carry_inits = [const_int(7)]
        program.carry_nexts = [param]  # untouched across iterations
        assert specialize_constant_carries(program) == 1
        assert program.carry_params == []
